//! Versioned, length-prefixed wire codec for legalization requests.
//!
//! Every frame on the stream is self-describing:
//!
//! ```text
//! +-------+---------+------+-----------+----------------+
//! | MAGIC | VERSION | KIND | LEN (u32) | LEN payload    |
//! | 4 B   | u16 LE  | u8   | LE        | bytes          |
//! +-------+---------+------+-----------+----------------+
//! ```
//!
//! Ten frame kinds exist. The six job/observability kinds: a
//! [`JobRequest`] (client → server), a [`JobResponse`] (server →
//! client, success), an [`ErrorReply`] (server → client, rejection or
//! partial failure), a [`ProgressUpdate`] (server → client, streamed
//! mid-job when the request asked for a progress stride), a stats
//! request (client → server, empty payload) and a [`StatsSnapshot`]
//! (server → client). Version 3 adds the four control-plane kinds: a
//! [`PutDesign`] upload (client → server) answered by a [`DesignAck`],
//! and a [`DeltaJobRequest`](crate::delta::DeltaJobRequest) naming a
//! cached baseline by content hash, answered either by the usual
//! terminal reply or by a typed [`NeedDesign`] cache miss.
//! All integers are little-endian; `f64` values travel as their
//! IEEE-754 bit patterns, so a decoded placement is *bit-identical* to
//! the encoded one — the server-side diffusion result is exactly the
//! result of a local call.
//!
//! Progress frames are strictly informational: a client that only reads
//! until the terminal Response/Error frame can skip them (that is what
//! [`ServeClient`](crate::ServeClient) does by default), so enabling
//! progress on the server never breaks a consumer.
//!
//! The design payload inside a request supports two encodings:
//!
//! - [`PayloadEncoding::Binary`] — the native codec (compact, exact);
//! - [`PayloadEncoding::Bookshelf`] — the four Bookshelf text files
//!   (`.nodes`/`.nets`/`.pl`/`.scl`) as produced by `dpm-bookshelf`,
//!   so any tool that speaks the ISPD format can talk to the server.

use std::error::Error;
use std::fmt;
use std::io::{self, Read, Write};

use dpm_bookshelf::BookshelfDesign;
use dpm_diffusion::{
    DiffusionConfig, FieldPrecision, KernelTimers, KernelTiming, LaneMode, SolverKind,
};
use dpm_geom::Point;
use dpm_netlist::{CellKind, Netlist, NetlistBuilder, PinDir};
use dpm_obs::{HistogramSnapshot, SpanRecord, TraceContext};
use dpm_place::{Die, Placement};

/// Frame preamble identifying the protocol ("Diffusion Placement
/// Migration Serve").
pub const MAGIC: [u8; 4] = *b"DPMS";

/// Current codec version. Decoders accept any version in
/// [`MIN_VERSION`]`..=`[`VERSION`].
/// Version 2 added the Progress/StatsRequest/Stats frame kinds and the
/// request's `design` name and `progress_stride` fields. Version 3 adds
/// the control-plane frame kinds (PutDesign / DesignAck / DeltaRequest
/// / NeedDesign) without touching any v2 payload layout — a v2 frame
/// decodes byte-for-byte on a v3 server, and servers echo the version a
/// request arrived with on its replies so v2 clients never see a v3
/// header.
pub const VERSION: u16 = 3;

/// Oldest codec version decoders still accept. Version 2 payloads are
/// a strict subset of version 3, so both decode with the same code.
pub const MIN_VERSION: u16 = 2;

/// Default cap on a single frame's payload length (64 MiB) — a guard
/// against unbounded allocation from a hostile or corrupt peer.
pub const DEFAULT_MAX_FRAME_LEN: usize = 64 << 20;

/// Errors produced while encoding, framing, or decoding.
#[derive(Debug)]
pub enum WireError {
    /// The underlying stream failed.
    Io(io::Error),
    /// The frame preamble was not [`MAGIC`].
    BadMagic([u8; 4]),
    /// The frame's codec version is not [`VERSION`].
    UnsupportedVersion(u16),
    /// The frame kind byte names no known frame.
    UnknownFrameKind(u8),
    /// The declared payload length exceeds the reader's cap.
    FrameTooLarge {
        /// Declared payload length.
        len: usize,
        /// The reader's configured cap.
        max: usize,
    },
    /// The payload ended before a field was complete.
    Truncated {
        /// Which field was being read.
        context: &'static str,
    },
    /// The payload decoded but describes an invalid object.
    Malformed {
        /// Which object was being decoded.
        context: &'static str,
        /// What was wrong with it.
        message: String,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Io(e) => write!(f, "stream error: {e}"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:02x?}"),
            WireError::UnsupportedVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::UnknownFrameKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::FrameTooLarge { len, max } => {
                write!(f, "frame payload of {len} bytes exceeds cap of {max}")
            }
            WireError::Truncated { context } => {
                write!(f, "payload truncated while reading {context}")
            }
            WireError::Malformed { context, message } => {
                write!(f, "malformed {context}: {message}")
            }
        }
    }
}

impl Error for WireError {}

impl From<io::Error> for WireError {
    fn from(e: io::Error) -> Self {
        WireError::Io(e)
    }
}

pub(crate) fn malformed(context: &'static str, message: impl Into<String>) -> WireError {
    WireError::Malformed {
        context,
        message: message.into(),
    }
}

/// What kind of payload a frame carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// A [`JobRequest`].
    Request,
    /// A [`JobResponse`].
    Response,
    /// An [`ErrorReply`].
    Error,
    /// A [`ProgressUpdate`] streamed mid-job before the terminal reply.
    Progress,
    /// A client's request for a [`StatsSnapshot`]; empty payload.
    StatsRequest,
    /// A [`StatsSnapshot`] answering a stats request.
    Stats,
    /// (v3) A [`PutDesign`]: a full design upload keyed by its FNV
    /// content hash, populating the server's design cache.
    PutDesign,
    /// (v3) A [`DesignAck`] answering a design upload.
    DesignAck,
    /// (v3) A [`DeltaJobRequest`](crate::delta::DeltaJobRequest): a job
    /// naming a cached baseline by hash plus an ECO delta against it.
    DeltaRequest,
    /// (v3) A [`NeedDesign`]: the named baseline is not cached; the
    /// client must upload it with a [`PutDesign`] and retry.
    NeedDesign,
}

impl FrameKind {
    fn to_u8(self) -> u8 {
        match self {
            FrameKind::Request => 1,
            FrameKind::Response => 2,
            FrameKind::Error => 3,
            FrameKind::Progress => 4,
            FrameKind::StatsRequest => 5,
            FrameKind::Stats => 6,
            FrameKind::PutDesign => 7,
            FrameKind::DesignAck => 8,
            FrameKind::DeltaRequest => 9,
            FrameKind::NeedDesign => 10,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(FrameKind::Request),
            2 => Ok(FrameKind::Response),
            3 => Ok(FrameKind::Error),
            4 => Ok(FrameKind::Progress),
            5 => Ok(FrameKind::StatsRequest),
            6 => Ok(FrameKind::Stats),
            7 => Ok(FrameKind::PutDesign),
            8 => Ok(FrameKind::DesignAck),
            9 => Ok(FrameKind::DeltaRequest),
            10 => Ok(FrameKind::NeedDesign),
            k => Err(WireError::UnknownFrameKind(k)),
        }
    }
}

/// One frame pulled off a stream: its kind plus the raw payload.
#[derive(Debug, Clone)]
pub struct Frame {
    /// Frame kind byte, already validated.
    pub kind: FrameKind,
    /// Codec version the frame arrived with (in
    /// [`MIN_VERSION`]`..=`[`VERSION`]). Servers echo it on replies so
    /// old clients never see a header newer than what they speak.
    pub version: u16,
    /// Undecoded payload bytes.
    pub payload: Vec<u8>,
}

/// Writes one frame (header + payload) to `w`.
///
/// # Errors
///
/// Returns [`WireError::Io`] if the stream fails, and
/// [`WireError::FrameTooLarge`] if the payload cannot be described by a
/// `u32` length.
pub fn write_frame(w: &mut impl Write, kind: FrameKind, payload: &[u8]) -> Result<(), WireError> {
    write_frame_versioned(w, VERSION, kind, payload)
}

/// Writes one frame stamped with an explicit codec `version`. Servers
/// use this to echo the version a request arrived with, so a v2 client
/// only ever reads v2 headers.
///
/// # Errors
///
/// Same as [`write_frame`].
pub fn write_frame_versioned(
    w: &mut impl Write,
    version: u16,
    kind: FrameKind,
    payload: &[u8],
) -> Result<(), WireError> {
    if payload.len() > u32::MAX as usize {
        return Err(WireError::FrameTooLarge {
            len: payload.len(),
            max: u32::MAX as usize,
        });
    }
    let mut header = [0u8; 11];
    header[..4].copy_from_slice(&MAGIC);
    header[4..6].copy_from_slice(&version.to_le_bytes());
    header[6] = kind.to_u8();
    header[7..11].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    w.flush()?;
    Ok(())
}

/// How many consecutive mid-frame read timeouts [`read_frame`] tolerates
/// before declaring the peer stalled. Each timeout blocks for the
/// socket's own read deadline, so on a 25ms poll this is ~10s of total
/// silence in the middle of a frame.
const MID_FRAME_STALL_LIMIT: u32 = 400;

/// `read_exact` that survives read-timeout sockets: a timeout after the
/// frame has started is the peer pausing between TCP segments (Nagle,
/// scheduling, a slow writer), not an idle connection, so already-read
/// bytes must not be discarded. Resumes across `WouldBlock`/`TimedOut`
/// up to [`MID_FRAME_STALL_LIMIT`] consecutive timeouts, then gives up
/// with [`WireError::Truncated`] so callers drop the desynced stream
/// instead of treating it as idle.
fn read_full(r: &mut impl Read, buf: &mut [u8], context: &'static str) -> Result<(), WireError> {
    let mut off = 0;
    let mut stalls = 0u32;
    while off < buf.len() {
        match r.read(&mut buf[off..]) {
            Ok(0) => {
                return Err(WireError::Io(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    format!("stream closed mid-frame while reading {context}"),
                )))
            }
            Ok(n) => {
                off += n;
                stalls = 0;
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                stalls += 1;
                if stalls >= MID_FRAME_STALL_LIMIT {
                    return Err(WireError::Truncated { context });
                }
            }
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}

/// Reads one frame from `r`, or `None` on clean end-of-stream (the peer
/// closed the connection exactly at a frame boundary).
///
/// Sockets with a read deadline only surface the timeout *before* the
/// first byte of a frame — that is the idle-poll point servers use to
/// check for shutdown. Once a frame has started, timeouts between TCP
/// segments are absorbed and the read resumes where it left off;
/// returning mid-frame would desync the stream, because the bytes
/// already consumed cannot be pushed back.
///
/// # Errors
///
/// Returns [`WireError::Io`] on stream failure (including pre-frame
/// timeouts on sockets with a read deadline), [`WireError::BadMagic`] /
/// [`WireError::UnsupportedVersion`] / [`WireError::UnknownFrameKind`] on
/// header corruption, [`WireError::FrameTooLarge`] when the declared
/// length exceeds `max_len`, and [`WireError::Truncated`] when the peer
/// goes silent in the middle of a frame for longer than the stall limit.
pub fn read_frame(r: &mut impl Read, max_len: usize) -> Result<Option<Frame>, WireError> {
    // First byte separately: zero bytes here is a clean EOF, and a
    // timeout here is an idle connection the caller may poll on.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let mut rest = [0u8; 10];
    read_full(r, &mut rest, "frame header")?;
    let magic = [first[0], rest[0], rest[1], rest[2]];
    if magic != MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    let version = u16::from_le_bytes([rest[3], rest[4]]);
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(WireError::UnsupportedVersion(version));
    }
    let kind = FrameKind::from_u8(rest[5])?;
    let len = u32::from_le_bytes([rest[6], rest[7], rest[8], rest[9]]) as usize;
    if len > max_len {
        return Err(WireError::FrameTooLarge { len, max: max_len });
    }
    let mut payload = vec![0u8; len];
    read_full(r, &mut payload, "frame payload")?;
    Ok(Some(Frame {
        kind,
        version,
        payload,
    }))
}

/// Incremental frame parser for non-blocking streams: feed bytes as
/// they arrive with [`push`](Self::push), pull complete frames with
/// [`next_frame`](Self::next_frame). The async control-plane front-end
/// uses one assembler per connection; blocking readers keep using
/// [`read_frame`].
#[derive(Debug, Default)]
pub struct FrameAssembler {
    buf: Vec<u8>,
    pos: usize,
}

impl FrameAssembler {
    /// Creates an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends newly received bytes.
    pub fn push(&mut self, bytes: &[u8]) {
        // Compact lazily so the buffer never grows without bound on a
        // long-lived connection.
        if self.pos > 0 && self.pos == self.buf.len() {
            self.buf.clear();
            self.pos = 0;
        } else if self.pos > 4096 {
            self.buf.drain(..self.pos);
            self.pos = 0;
        }
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes buffered but not yet consumed as frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Extracts the next complete frame, `Ok(None)` if more bytes are
    /// needed.
    ///
    /// # Errors
    ///
    /// Returns the same header errors as [`read_frame`]. After an error
    /// the stream position is unknown; drop the connection.
    pub fn next_frame(&mut self, max_len: usize) -> Result<Option<Frame>, WireError> {
        let avail = &self.buf[self.pos..];
        if avail.len() < 11 {
            return Ok(None);
        }
        let magic = [avail[0], avail[1], avail[2], avail[3]];
        if magic != MAGIC {
            return Err(WireError::BadMagic(magic));
        }
        let version = u16::from_le_bytes([avail[4], avail[5]]);
        if !(MIN_VERSION..=VERSION).contains(&version) {
            return Err(WireError::UnsupportedVersion(version));
        }
        let kind = FrameKind::from_u8(avail[6])?;
        let len = u32::from_le_bytes([avail[7], avail[8], avail[9], avail[10]]) as usize;
        if len > max_len {
            return Err(WireError::FrameTooLarge { len, max: max_len });
        }
        if avail.len() < 11 + len {
            return Ok(None);
        }
        let payload = avail[11..11 + len].to_vec();
        self.pos += 11 + len;
        Ok(Some(Frame {
            kind,
            version,
            payload,
        }))
    }
}

// ---------------------------------------------------------------------------
// Primitive put/take helpers.
// ---------------------------------------------------------------------------

pub(crate) fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}
pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}
pub(crate) fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}
pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// A fallible little-endian reader over a payload slice.
pub(crate) struct Cur<'a> {
    pub(crate) buf: &'a [u8],
    pub(crate) pos: usize,
}

impl<'a> Cur<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    pub(crate) fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    pub(crate) fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, context)?[0])
    }

    pub(crate) fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, context)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    pub(crate) fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, context)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    pub(crate) fn f64(&mut self, context: &'static str) -> Result<f64, WireError> {
        Ok(f64::from_bits(self.u64(context)?))
    }

    pub(crate) fn str_(&mut self, context: &'static str) -> Result<String, WireError> {
        let len = self.u32(context)? as usize;
        // A string cannot be longer than the bytes that remain; this also
        // rejects absurd lengths before allocating.
        if len > self.buf.len() - self.pos {
            return Err(WireError::Truncated { context });
        }
        let bytes = self.take(len, context)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| malformed(context, "string is not valid UTF-8"))
    }

    pub(crate) fn finish(&self, context: &'static str) -> Result<(), WireError> {
        if self.pos != self.buf.len() {
            return Err(malformed(context, "trailing bytes after payload"));
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Request.
// ---------------------------------------------------------------------------

/// Which diffusion algorithm a request asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// Global diffusion (paper Algorithm 1).
    Global,
    /// Robust local diffusion (paper Algorithm 3).
    Local,
}

/// How the design (netlist + die + placement) travels inside a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PayloadEncoding {
    /// The native binary codec: exact `f64` bit patterns, compact.
    Binary,
    /// Four Bookshelf text files (`.nodes`/`.nets`/`.pl`/`.scl`).
    Bookshelf,
}

/// One legalization request: a design plus the diffusion parameters.
#[derive(Debug, Clone)]
pub struct JobRequest {
    /// Client-chosen correlation id, echoed in every reply.
    pub id: u64,
    /// Deadline in milliseconds, measured from the moment the server
    /// admits the request to its queue (so queue wait counts against it).
    /// `0` means "use the server's default"; the server's default of `0`
    /// means no deadline.
    pub deadline_ms: u32,
    /// Progress-frame stride: every `progress_stride` diffusion steps
    /// the server streams a [`ProgressUpdate`] frame on the connection
    /// before the terminal reply. `0` (the default) disables progress
    /// frames.
    pub progress_stride: u32,
    /// Which algorithm to run.
    pub kind: JobKind,
    /// Free-form design name, echoed into the server's request log.
    /// Logged names are JSON-escaped server-side, so any string is safe.
    pub design: String,
    /// Diffusion parameters. Validated server-side with
    /// [`DiffusionConfig::validate`]; invalid configs are rejected with
    /// an [`ErrorCode::InvalidConfig`] reply, never a crash.
    pub config: DiffusionConfig,
    /// The circuit.
    pub netlist: Netlist,
    /// The placement region.
    pub die: Die,
    /// Cell positions to legalize.
    pub placement: Placement,
    /// Optional volumetric (3D) dimension extension. `None` is a plain
    /// planar job and encodes byte-for-byte like a pre-volumetric frame.
    pub vol: Option<VolRequestExt>,
    /// Optional distributed-trace context. Rides the shared trailing
    /// extension-flags byte (see [`encode_request`]); `None` encodes
    /// byte-for-byte like a pre-tracing frame.
    pub trace: Option<TraceContext>,
}

/// The volumetric dimension extension of a [`JobRequest`].
///
/// Rides as an optional trailing block *after* the trailing solver byte,
/// so planar requests stay byte-identical to pre-volumetric frames and
/// legacy dimension-less frames decode as 2D jobs.
#[derive(Debug, Clone, PartialEq)]
pub struct VolRequestExt {
    /// Tiers in the shipped region (the whole stack for direct runs).
    pub nz: u32,
    /// First global tier of the region (`0` for direct runs).
    pub z0: u32,
    /// Total tiers of the global stack.
    pub global_nz: u32,
    /// Run exactly this many FTCS steps instead of to convergence —
    /// the z-slab router's halo-exchange sub-jobs use `Some(1)`.
    pub exact_steps: Option<u64>,
    /// Per-cell depth in region-local tier units, netlist cell order.
    pub z: Vec<f64>,
    /// Pre-splatted plane-major density field for the region; `None`
    /// makes the server splat (and manipulate) from the placement.
    pub field: Option<Vec<f64>>,
}

pub(crate) fn put_config(buf: &mut Vec<u8>, c: &DiffusionConfig) {
    put_f64(buf, c.bin_size);
    put_f64(buf, c.d_max);
    put_f64(buf, c.delta);
    put_f64(buf, c.dt);
    put_f64(buf, c.diffusivity);
    put_u64(buf, c.max_steps as u64);
    put_u8(buf, c.manipulate as u8);
    put_u8(buf, c.interpolate as u8);
    put_u64(buf, c.w1 as u64);
    put_u64(buf, c.w2 as u64);
    put_u64(buf, c.n_u as u64);
    put_u64(buf, c.max_rounds as u64);
    put_f64(buf, c.max_step_displacement);
    put_u8(buf, c.paper_boundaries as u8);
    put_u64(buf, c.threads as u64);
}

pub(crate) fn take_config(cur: &mut Cur<'_>) -> Result<DiffusionConfig, WireError> {
    Ok(DiffusionConfig {
        bin_size: cur.f64("config.bin_size")?,
        d_max: cur.f64("config.d_max")?,
        delta: cur.f64("config.delta")?,
        dt: cur.f64("config.dt")?,
        diffusivity: cur.f64("config.diffusivity")?,
        max_steps: cur.u64("config.max_steps")? as usize,
        manipulate: cur.u8("config.manipulate")? != 0,
        interpolate: cur.u8("config.interpolate")? != 0,
        w1: cur.u64("config.w1")? as usize,
        w2: cur.u64("config.w2")? as usize,
        n_u: cur.u64("config.n_u")? as usize,
        max_rounds: cur.u64("config.max_rounds")? as usize,
        max_step_displacement: cur.f64("config.max_step_displacement")?,
        paper_boundaries: cur.u8("config.paper_boundaries")? != 0,
        threads: cur.u64("config.threads")? as usize,
        // The solver kind travels as an *optional trailing byte* of the
        // request payload (see `encode_request`), not inside the config
        // block, so that v2 frames from pre-spectral clients still decode.
        // Explicitly Ftcs here — never `Default`, which consults the
        // server process's `DPM_SOLVER` environment.
        solver: SolverKind::Ftcs,
        // Lane width is a per-host microarchitectural choice, not part of
        // the job (results are bit-identical either way), so it does not
        // travel on the wire. Explicitly Wide — never `Default`, which
        // consults `DPM_LANES`.
        lanes: LaneMode::Wide,
        // Field precision rides the trailing extension-flags byte (see
        // `encode_request`); absent ⇒ f64, keeping every legacy frame's
        // meaning.
        precision: FieldPrecision::F64,
    })
}

pub(crate) fn precision_from_u8(b: u8) -> Result<FieldPrecision, WireError> {
    match b {
        0 => Ok(FieldPrecision::F64),
        1 => Ok(FieldPrecision::F32),
        k => Err(malformed(
            "request.ext.precision",
            format!("unknown field precision {k}"),
        )),
    }
}

pub(crate) fn solver_kind_from_u8(b: u8) -> Result<SolverKind, WireError> {
    match b {
        0 => Ok(SolverKind::Ftcs),
        1 => Ok(SolverKind::Spectral),
        k => Err(malformed(
            "request.solver",
            format!("unknown solver kind {k}"),
        )),
    }
}

pub(crate) fn cell_kind_to_u8(k: CellKind) -> u8 {
    match k {
        CellKind::Movable => 0,
        CellKind::FixedMacro => 1,
        CellKind::Pad => 2,
    }
}

pub(crate) fn cell_kind_from_u8(b: u8) -> Result<CellKind, WireError> {
    match b {
        0 => Ok(CellKind::Movable),
        1 => Ok(CellKind::FixedMacro),
        2 => Ok(CellKind::Pad),
        k => Err(malformed("cell.kind", format!("unknown cell kind {k}"))),
    }
}

fn put_binary_design(buf: &mut Vec<u8>, nl: &Netlist, die: &Die, p: &Placement) {
    let o = die.outline();
    put_f64(buf, o.llx);
    put_f64(buf, o.lly);
    put_f64(buf, o.urx - o.llx);
    put_f64(buf, o.ury - o.lly);
    put_f64(buf, die.row_height());

    put_u32(buf, nl.num_cells() as u32);
    for c in nl.cell_ids() {
        let cell = nl.cell(c);
        put_str(buf, &cell.name);
        put_f64(buf, cell.width);
        put_f64(buf, cell.height);
        put_u8(buf, cell_kind_to_u8(cell.kind));
        put_f64(buf, cell.delay);
        let pos = p.get(c);
        put_f64(buf, pos.x);
        put_f64(buf, pos.y);
    }

    put_u32(buf, nl.num_nets() as u32);
    for n in nl.net_ids() {
        let net = nl.net(n);
        put_str(buf, &net.name);
        put_u32(buf, net.pins.len() as u32);
        for &pid in &net.pins {
            let pin = nl.pin(pid);
            put_u32(buf, pin.cell.index() as u32);
            put_u8(buf, matches!(pin.dir, PinDir::Output) as u8);
            put_f64(buf, pin.offset.x);
            put_f64(buf, pin.offset.y);
        }
    }
}

fn take_binary_design(cur: &mut Cur<'_>) -> Result<(Netlist, Die, Placement), WireError> {
    let llx = cur.f64("die.llx")?;
    let lly = cur.f64("die.lly")?;
    let width = cur.f64("die.width")?;
    let height = cur.f64("die.height")?;
    let row_height = cur.f64("die.row_height")?;
    let die = checked_die(llx, lly, width, height, row_height)?;

    let num_cells = cur.u32("cells.count")? as usize;
    let mut b = NetlistBuilder::with_capacity(num_cells.min(1 << 20), 0, 0);
    let mut positions = Vec::with_capacity(num_cells.min(1 << 20));
    for _ in 0..num_cells {
        let name = cur.str_("cell.name")?;
        let w = cur.f64("cell.width")?;
        let h = cur.f64("cell.height")?;
        let kind = cell_kind_from_u8(cur.u8("cell.kind")?)?;
        let delay = cur.f64("cell.delay")?;
        let x = cur.f64("cell.x")?;
        let y = cur.f64("cell.y")?;
        b.add_cell_with_delay(name, w, h, kind, delay);
        positions.push(Point::new(x, y));
    }

    let num_nets = cur.u32("nets.count")? as usize;
    for _ in 0..num_nets {
        let name = cur.str_("net.name")?;
        let nid = b.add_net(name);
        let num_pins = cur.u32("net.pins.count")? as usize;
        for _ in 0..num_pins {
            let cell = cur.u32("pin.cell")? as usize;
            if cell >= num_cells {
                return Err(malformed(
                    "pin.cell",
                    format!("pin references cell {cell} of {num_cells}"),
                ));
            }
            let dir = if cur.u8("pin.dir")? != 0 {
                PinDir::Output
            } else {
                PinDir::Input
            };
            let ox = cur.f64("pin.ox")?;
            let oy = cur.f64("pin.oy")?;
            b.connect(dpm_netlist::CellId::new(cell as u32), nid, dir, ox, oy);
        }
    }

    let netlist = b.build().map_err(|e| malformed("netlist", e.to_string()))?;
    let mut placement = Placement::new(netlist.num_cells());
    for (c, pos) in netlist.cell_ids().zip(positions) {
        placement.set(c, pos);
    }
    Ok((netlist, die, placement))
}

/// Builds a [`Die`] from wire values without panicking on garbage.
fn checked_die(
    llx: f64,
    lly: f64,
    width: f64,
    height: f64,
    row_height: f64,
) -> Result<Die, WireError> {
    let all_finite = llx.is_finite()
        && lly.is_finite()
        && width.is_finite()
        && height.is_finite()
        && row_height.is_finite();
    // The row-count cap stops a finite-but-absurd height from driving a
    // giant row allocation inside `Die::with_origin`.
    if !all_finite
        || width <= 0.0
        || height <= 0.0
        || row_height <= 0.0
        || height < row_height
        || height / row_height > 16_000_000.0
    {
        return Err(malformed(
            "die",
            format!("degenerate die {width}x{height} at ({llx}, {lly}), row height {row_height}"),
        ));
    }
    Ok(Die::with_origin(llx, lly, width, height, row_height))
}

/// Encodes a request into a frame payload (not yet framed).
///
/// `encoding` selects how the design travels; the rest of the request is
/// identical either way.
pub fn encode_request(req: &JobRequest, encoding: PayloadEncoding) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, req.id);
    put_u32(&mut buf, req.deadline_ms);
    put_u32(&mut buf, req.progress_stride);
    put_u8(&mut buf, matches!(req.kind, JobKind::Local) as u8);
    put_str(&mut buf, &req.design);
    put_config(&mut buf, &req.config);
    match encoding {
        PayloadEncoding::Binary => {
            put_u8(&mut buf, 0);
            put_binary_design(&mut buf, &req.netlist, &req.die, &req.placement);
        }
        PayloadEncoding::Bookshelf => {
            put_u8(&mut buf, 1);
            let design = BookshelfDesign::from_parts(&req.netlist, &req.die, &req.placement);
            put_str(&mut buf, &design.write_nodes());
            put_str(&mut buf, &design.write_nets());
            put_str(&mut buf, &design.write_pl());
            put_str(&mut buf, &design.write_scl());
        }
    }
    // The solver kind rides as a trailing byte *after* the design payload.
    // Decoders that predate it stop at the design and would reject the
    // extra byte, but decoders that know it (this version) accept both
    // forms: absent ⇒ `SolverKind::Ftcs`. Appending at the tail keeps
    // every earlier field at its v2 offset.
    put_u8(&mut buf, req.config.solver as u8);
    // The volumetric dimension extension stacks on the same trick: it
    // follows the solver byte, so planar requests (`vol: None`) remain
    // byte-identical to pre-volumetric frames. Its former flags byte now
    // doubles as the shared *extension-flags* byte: bits 0/1 keep their
    // volumetric meanings, bit 2 announces a trailing trace-context
    // block (after the vol body), and bit 3 says the vol body itself is
    // absent — a planar traced request. Untraced frames never set bits
    // 2/3, so every pre-tracing frame is byte-identical.
    // A non-default field precision stacks one more trailing byte after
    // the trace block, announced by `EXT_PRECISION` in the same flags
    // byte; f64 requests never emit it, so every pre-precision frame is
    // byte-identical.
    let f32_field = req.config.precision == FieldPrecision::F32;
    match (&req.vol, &req.trace) {
        (None, None) if !f32_field => {}
        (Some(v), trace) => {
            let mut flags = 0u8;
            if v.exact_steps.is_some() {
                flags |= REQ_EXT_EXACT_STEPS;
            }
            if v.field.is_some() {
                flags |= REQ_EXT_FIELD;
            }
            if trace.is_some() {
                flags |= EXT_TRACE;
            }
            if f32_field {
                flags |= EXT_PRECISION;
            }
            put_u8(&mut buf, flags);
            put_u32(&mut buf, v.nz);
            put_u32(&mut buf, v.z0);
            put_u32(&mut buf, v.global_nz);
            if let Some(steps) = v.exact_steps {
                put_u64(&mut buf, steps);
            }
            put_u32(&mut buf, v.z.len() as u32);
            for &z in &v.z {
                put_f64(&mut buf, z);
            }
            if let Some(field) = &v.field {
                put_u64(&mut buf, field.len() as u64);
                for &d in field {
                    put_f64(&mut buf, d);
                }
            }
            if let Some(t) = trace {
                put_trace(&mut buf, t);
            }
            if f32_field {
                put_u8(&mut buf, req.config.precision as u8);
            }
        }
        (None, trace) => {
            let mut flags = EXT_NO_VOL;
            if trace.is_some() {
                flags |= EXT_TRACE;
            }
            if f32_field {
                flags |= EXT_PRECISION;
            }
            put_u8(&mut buf, flags);
            if let Some(t) = trace {
                put_trace(&mut buf, t);
            }
            if f32_field {
                put_u8(&mut buf, req.config.precision as u8);
            }
        }
    }
    buf
}

/// Extension-flags bit: the volumetric body carries `exact_steps`
/// (request only).
const REQ_EXT_EXACT_STEPS: u8 = 1 << 0;
/// Extension-flags bit: the volumetric body carries a density field.
const REQ_EXT_FIELD: u8 = 1 << 1;
/// Extension-flags bit: a trace block follows the (possibly absent)
/// volumetric body. Shared by requests and responses; on a response the
/// block is a span export rather than a context.
const EXT_TRACE: u8 = 1 << 2;
/// Extension-flags bit: the volumetric body is absent (planar traced
/// frame). Only canonical together with [`EXT_TRACE`] or
/// [`EXT_PRECISION`] — a frame with no vol body and no other extension
/// encodes as no extension at all.
const EXT_NO_VOL: u8 = 1 << 3;
/// Extension-flags bit: one trailing field-precision byte follows every
/// other extension block (request only). Absent ⇒ f64, so f64 frames
/// stay byte-identical to pre-precision frames.
const EXT_PRECISION: u8 = 1 << 4;

/// Writes a 24-byte trace-context block.
pub(crate) fn put_trace(buf: &mut Vec<u8>, t: &TraceContext) {
    put_u64(buf, t.trace_id);
    put_u64(buf, t.span_id);
    put_u64(buf, t.parent_id);
}

/// Reads a 24-byte trace-context block.
pub(crate) fn take_trace(cur: &mut Cur<'_>) -> Result<TraceContext, WireError> {
    let trace_id = cur.u64("trace.trace_id")?;
    let span_id = cur.u64("trace.span_id")?;
    let parent_id = cur.u64("trace.parent_id")?;
    if trace_id == 0 || span_id == 0 {
        return Err(malformed("trace", "zero trace or span id"));
    }
    Ok(TraceContext {
        trace_id,
        span_id,
        parent_id,
    })
}

/// Validates a request/response extension-flags byte against `allowed`.
fn check_ext_flags(flags: u8, allowed: u8, context: &'static str) -> Result<(), WireError> {
    if flags & !allowed != 0 {
        return Err(malformed(context, format!("unknown flag bits {flags:#x}")));
    }
    if flags & EXT_NO_VOL != 0 {
        if flags & (REQ_EXT_EXACT_STEPS | REQ_EXT_FIELD) != 0 {
            return Err(malformed(
                context,
                format!("vol-absent flag with vol body bits {flags:#x}"),
            ));
        }
        if flags & (EXT_TRACE | EXT_PRECISION) == 0 {
            return Err(malformed(
                context,
                "vol-absent flag without another extension is non-canonical",
            ));
        }
    }
    Ok(())
}

/// Decodes the volumetric extension body, cursor already past the
/// extension-flags byte (validated by the caller).
fn take_vol_request(cur: &mut Cur<'_>, flags: u8) -> Result<VolRequestExt, WireError> {
    let nz = cur.u32("vol.nz")?;
    let z0 = cur.u32("vol.z0")?;
    let global_nz = cur.u32("vol.global_nz")?;
    if nz == 0 || global_nz == 0 || z0.checked_add(nz).is_none_or(|end| end > global_nz) {
        return Err(malformed(
            "vol",
            format!("degenerate tier region [{z0}, {z0}+{nz}) of {global_nz}"),
        ));
    }
    let exact_steps = if flags & 1 != 0 {
        Some(cur.u64("vol.exact_steps")?)
    } else {
        None
    };
    let n = cur.u32("vol.z.count")? as usize;
    let mut z = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        z.push(cur.f64("vol.z")?);
    }
    let field = if flags & 2 != 0 {
        let len = cur.u64("vol.field.len")? as usize;
        let mut field = Vec::with_capacity(len.min(1 << 20));
        for _ in 0..len {
            field.push(cur.f64("vol.field")?);
        }
        Some(field)
    } else {
        None
    };
    Ok(VolRequestExt {
        nz,
        z0,
        global_nz,
        exact_steps,
        z,
        field,
    })
}

/// Decodes a request frame payload.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] when the payload ends early and
/// [`WireError::Malformed`] when it decodes to an invalid design
/// (degenerate die, pin referencing a missing cell, Bookshelf text that
/// does not parse, …). Never panics on adversarial input.
pub fn decode_request(payload: &[u8]) -> Result<JobRequest, WireError> {
    let mut cur = Cur::new(payload);
    let id = cur.u64("request.id")?;
    let deadline_ms = cur.u32("request.deadline_ms")?;
    let progress_stride = cur.u32("request.progress_stride")?;
    let kind = if cur.u8("request.kind")? != 0 {
        JobKind::Local
    } else {
        JobKind::Global
    };
    let design = cur.str_("request.design")?;
    let config = take_config(&mut cur)?;
    let encoding = cur.u8("request.encoding")?;
    let (netlist, die, placement) = match encoding {
        0 => take_binary_design(&mut cur)?,
        1 => {
            let nodes = cur.str_("bookshelf.nodes")?;
            let nets = cur.str_("bookshelf.nets")?;
            let pl = cur.str_("bookshelf.pl")?;
            let scl = cur.str_("bookshelf.scl")?;
            let loaded = dpm_bookshelf::load_design(&nodes, &nets, &pl, &scl)
                .map_err(|e| malformed("bookshelf design", e.to_string()))?;
            (loaded.netlist, loaded.die, loaded.placement)
        }
        e => {
            return Err(malformed(
                "request.encoding",
                format!("unknown payload encoding {e}"),
            ))
        }
    };
    // Optional trailing solver byte: v2 frames from pre-spectral clients
    // end exactly at the design payload and decode as FTCS.
    let mut config = config;
    if cur.pos < cur.buf.len() {
        config.solver = solver_kind_from_u8(cur.u8("request.solver")?)?;
    }
    // Optional extensions after the solver byte: dimension-less frames
    // end here and decode as planar (2D), untraced jobs. Otherwise one
    // extension-flags byte announces the volumetric body and/or a
    // trailing trace-context block.
    let mut vol = None;
    let mut trace = None;
    if cur.pos < cur.buf.len() {
        let flags = cur.u8("request.ext.flags")?;
        check_ext_flags(
            flags,
            REQ_EXT_EXACT_STEPS | REQ_EXT_FIELD | EXT_TRACE | EXT_NO_VOL | EXT_PRECISION,
            "request.ext.flags",
        )?;
        if flags & EXT_NO_VOL == 0 {
            vol = Some(take_vol_request(&mut cur, flags)?);
        }
        if flags & EXT_TRACE != 0 {
            trace = Some(take_trace(&mut cur)?);
        }
        if flags & EXT_PRECISION != 0 {
            config.precision = precision_from_u8(cur.u8("request.ext.precision")?)?;
        }
    }
    cur.finish("request")?;
    Ok(JobRequest {
        id,
        deadline_ms,
        progress_stride,
        kind,
        design,
        config,
        netlist,
        die,
        placement,
        vol,
        trace,
    })
}

// ---------------------------------------------------------------------------
// Response.
// ---------------------------------------------------------------------------

/// A successful legalization reply.
#[derive(Debug, Clone, PartialEq)]
pub struct JobResponse {
    /// Echo of the request id.
    pub id: u64,
    /// Whether the diffusion stopping criterion was met.
    pub converged: bool,
    /// Diffusion steps executed.
    pub steps: u64,
    /// Local-diffusion rounds executed (1 for global).
    pub rounds: u64,
    /// Sum of cell displacements.
    pub total_movement: f64,
    /// Largest single-cell displacement.
    pub max_movement: f64,
    /// Time the request waited in the server queue, nanoseconds.
    pub queue_ns: u64,
    /// Time the diffusion run took, nanoseconds.
    pub service_ns: u64,
    /// Final position of every cell, in netlist cell-id order.
    pub positions: Vec<Point>,
    /// Optional volumetric (3D) extension. `None` is a planar reply and
    /// encodes byte-for-byte like a pre-volumetric frame.
    pub vol: Option<VolResponseExt>,
    /// Spans this backend recorded for the job, exported when the
    /// request carried a trace context. Timestamps are normalized so
    /// the earliest start is zero (see [`dpm_obs::normalize_spans`]);
    /// the receiver re-bases them under its own dispatch span. All
    /// records share one trace id. Empty encodes byte-for-byte like a
    /// pre-tracing frame.
    pub spans: Vec<SpanRecord>,
}

/// The volumetric dimension extension of a [`JobResponse`].
#[derive(Debug, Clone, PartialEq)]
pub struct VolResponseExt {
    /// Final per-cell depth in region-local tier units, cell order.
    pub z: Vec<f64>,
    /// The evolved plane-major density field of the region — returned
    /// for halo-exchange sub-jobs so the router can stitch tiers.
    pub field: Option<Vec<f64>>,
}

/// Encodes a response into a frame payload.
pub fn encode_response(resp: &JobResponse) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, resp.id);
    put_u8(&mut buf, resp.converged as u8);
    put_u64(&mut buf, resp.steps);
    put_u64(&mut buf, resp.rounds);
    put_f64(&mut buf, resp.total_movement);
    put_f64(&mut buf, resp.max_movement);
    put_u64(&mut buf, resp.queue_ns);
    put_u64(&mut buf, resp.service_ns);
    put_u32(&mut buf, resp.positions.len() as u32);
    for p in &resp.positions {
        put_f64(&mut buf, p.x);
        put_f64(&mut buf, p.y);
    }
    // Extensions, mirroring the request: one shared flags byte, the
    // volumetric body, then the span export. Planar untraced replies
    // stay byte-identical to pre-volumetric frames.
    match (&resp.vol, resp.spans.is_empty()) {
        (None, true) => {}
        (Some(v), spans_empty) => {
            let mut flags = if v.field.is_some() { REQ_EXT_FIELD } else { 0 };
            if !spans_empty {
                flags |= EXT_TRACE;
            }
            put_u8(&mut buf, flags);
            put_u32(&mut buf, v.z.len() as u32);
            for &z in &v.z {
                put_f64(&mut buf, z);
            }
            if let Some(field) = &v.field {
                put_u64(&mut buf, field.len() as u64);
                for &d in field {
                    put_f64(&mut buf, d);
                }
            }
            if !spans_empty {
                put_spans(&mut buf, &resp.spans);
            }
        }
        (None, false) => {
            put_u8(&mut buf, EXT_TRACE | EXT_NO_VOL);
            put_spans(&mut buf, &resp.spans);
        }
    }
    buf
}

/// Writes a span-export block: the shared trace id, a count, then each
/// record's name/ids/interval. The per-record trace id is *not* encoded
/// — every exported span belongs to the one trace the request named.
fn put_spans(buf: &mut Vec<u8>, spans: &[SpanRecord]) {
    put_u64(buf, spans.first().map_or(0, |s| s.trace_id));
    put_u32(buf, spans.len() as u32);
    for s in spans {
        put_str(buf, &s.name);
        put_u64(buf, s.span_id);
        put_u64(buf, s.parent_id);
        put_u64(buf, s.start_ns);
        put_u64(buf, s.end_ns);
    }
}

/// Minimum encoded size of one span record (empty name), used to bound
/// the count-driven allocation against hostile payloads.
const SPAN_RECORD_MIN_LEN: usize = 4 + 8 * 4;

/// Reads a span-export block.
fn take_spans(cur: &mut Cur<'_>) -> Result<Vec<SpanRecord>, WireError> {
    let trace_id = cur.u64("spans.trace_id")?;
    let n = cur.u32("spans.count")? as usize;
    let remaining = cur.buf.len() - cur.pos;
    let mut spans = Vec::with_capacity(n.min(remaining / SPAN_RECORD_MIN_LEN));
    for _ in 0..n {
        let name = cur.str_("span.name")?;
        let span_id = cur.u64("span.span_id")?;
        let parent_id = cur.u64("span.parent_id")?;
        let start_ns = cur.u64("span.start_ns")?;
        let end_ns = cur.u64("span.end_ns")?;
        if end_ns < start_ns {
            return Err(malformed("span", "inverted span interval"));
        }
        spans.push(SpanRecord {
            name,
            start_ns,
            end_ns,
            trace_id,
            span_id,
            parent_id,
        });
    }
    Ok(spans)
}

/// Decodes a response frame payload.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] or [`WireError::Malformed`] on
/// corrupt payloads.
pub fn decode_response(payload: &[u8]) -> Result<JobResponse, WireError> {
    let mut cur = Cur::new(payload);
    let id = cur.u64("response.id")?;
    let converged = cur.u8("response.converged")? != 0;
    let steps = cur.u64("response.steps")?;
    let rounds = cur.u64("response.rounds")?;
    let total_movement = cur.f64("response.total_movement")?;
    let max_movement = cur.f64("response.max_movement")?;
    let queue_ns = cur.u64("response.queue_ns")?;
    let service_ns = cur.u64("response.service_ns")?;
    let n = cur.u32("response.positions.count")? as usize;
    let mut positions = Vec::with_capacity(n.min(1 << 20));
    for _ in 0..n {
        let x = cur.f64("response.position.x")?;
        let y = cur.f64("response.position.y")?;
        positions.push(Point::new(x, y));
    }
    let mut vol = None;
    let mut spans = Vec::new();
    if cur.pos < cur.buf.len() {
        let flags = cur.u8("response.ext.flags")?;
        check_ext_flags(
            flags,
            REQ_EXT_FIELD | EXT_TRACE | EXT_NO_VOL,
            "response.ext.flags",
        )?;
        if flags & EXT_NO_VOL == 0 {
            let nz = cur.u32("response.vol.z.count")? as usize;
            let mut z = Vec::with_capacity(nz.min(1 << 20));
            for _ in 0..nz {
                z.push(cur.f64("response.vol.z")?);
            }
            let field = if flags & REQ_EXT_FIELD != 0 {
                let len = cur.u64("response.vol.field.len")? as usize;
                let mut field = Vec::with_capacity(len.min(1 << 20));
                for _ in 0..len {
                    field.push(cur.f64("response.vol.field")?);
                }
                Some(field)
            } else {
                None
            };
            vol = Some(VolResponseExt { z, field });
        }
        if flags & EXT_TRACE != 0 {
            spans = take_spans(&mut cur)?;
        }
    }
    cur.finish("response")?;
    Ok(JobResponse {
        id,
        converged,
        steps,
        rounds,
        total_movement,
        max_movement,
        queue_ns,
        service_ns,
        positions,
        vol,
        spans,
    })
}

// ---------------------------------------------------------------------------
// Progress.
// ---------------------------------------------------------------------------

/// A mid-job convergence snapshot, streamed as a [`FrameKind::Progress`]
/// frame every `progress_stride` steps when the request opted in.
///
/// With the paper's stable FTCS discretization (`λ = D·dt ≤ 0.25`) the
/// discrete maximum principle holds, so consecutive `max_density`
/// values are non-increasing — a client can watch convergence live.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressUpdate {
    /// Echo of the request id.
    pub id: u64,
    /// Diffusion steps completed so far.
    pub step: u64,
    /// Local-diffusion round the step belongs to (1 for global).
    pub round: u64,
    /// Computed total overflow over the target density after the step.
    pub overflow: f64,
    /// Cumulative cell movement since the job started.
    pub movement: f64,
    /// Maximum computed bin density after the step.
    pub max_density: f64,
}

/// Encodes a progress update into a frame payload.
pub fn encode_progress(p: &ProgressUpdate) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, p.id);
    put_u64(&mut buf, p.step);
    put_u64(&mut buf, p.round);
    put_f64(&mut buf, p.overflow);
    put_f64(&mut buf, p.movement);
    put_f64(&mut buf, p.max_density);
    buf
}

/// Decodes a progress-update frame payload.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] or [`WireError::Malformed`] on
/// corrupt payloads.
pub fn decode_progress(payload: &[u8]) -> Result<ProgressUpdate, WireError> {
    let mut cur = Cur::new(payload);
    let p = ProgressUpdate {
        id: cur.u64("progress.id")?,
        step: cur.u64("progress.step")?,
        round: cur.u64("progress.round")?,
        overflow: cur.f64("progress.overflow")?,
        movement: cur.f64("progress.movement")?,
        max_density: cur.f64("progress.max_density")?,
    };
    cur.finish("progress")?;
    Ok(p)
}

// ---------------------------------------------------------------------------
// Stats.
// ---------------------------------------------------------------------------

/// An on-demand snapshot of server metrics, answering a
/// [`FrameKind::StatsRequest`] with a [`FrameKind::Stats`] frame.
///
/// Counters cover the server's whole lifetime; the histograms are the
/// queue-wait, service and end-to-end latency distributions of finished
/// requests, and `kernels` merges the kernel timings of every completed
/// diffusion run.
#[derive(Debug, Clone, PartialEq)]
pub struct StatsSnapshot {
    /// Requests currently waiting in the bounded queue.
    pub queue_depth: u64,
    /// Request frames read off connections.
    pub received: u64,
    /// Requests admitted to the queue.
    pub admitted: u64,
    /// Requests served to completion.
    pub served: u64,
    /// Requests rejected because the queue was full.
    pub overloaded: u64,
    /// Requests rejected for invalid diffusion parameters.
    pub invalid_config: u64,
    /// Frames that failed to decode.
    pub malformed: u64,
    /// Requests whose deadline expired (queued or mid-run).
    pub deadline_expired: u64,
    /// Requests rejected during shutdown.
    pub rejected_shutdown: u64,
    /// Worker panics converted to internal-error replies.
    pub internal_errors: u64,
    /// Progress frames streamed to clients.
    pub progress_frames: u64,
    /// Queue-wait latency distribution, nanoseconds.
    pub queue_hist: HistogramSnapshot,
    /// Service (diffusion run) latency distribution, nanoseconds.
    pub service_hist: HistogramSnapshot,
    /// End-to-end (admission → reply written) latency distribution,
    /// nanoseconds.
    pub e2e_hist: HistogramSnapshot,
    /// Kernel timings merged across every completed run.
    pub kernels: KernelTimers,
}

fn put_histogram(buf: &mut Vec<u8>, h: &HistogramSnapshot) {
    put_u32(buf, h.bounds.len() as u32);
    for &b in &h.bounds {
        put_u64(buf, b);
    }
    for &c in &h.counts {
        put_u64(buf, c);
    }
    put_u64(buf, h.count);
    put_u64(buf, h.sum);
    put_u64(buf, h.max);
}

fn take_histogram(cur: &mut Cur<'_>) -> Result<HistogramSnapshot, WireError> {
    let n = cur.u32("histogram.bounds.count")? as usize;
    // Each bound is 8 bytes; reject before allocating on absurd counts.
    if n > 4096 {
        return Err(malformed(
            "histogram",
            format!("{n} buckets exceeds the cap of 4096"),
        ));
    }
    let mut bounds = Vec::with_capacity(n);
    for _ in 0..n {
        bounds.push(cur.u64("histogram.bound")?);
    }
    if !bounds.windows(2).all(|w| w[0] < w[1]) {
        return Err(malformed("histogram", "bounds not strictly increasing"));
    }
    let mut counts = Vec::with_capacity(n + 1);
    for _ in 0..n + 1 {
        counts.push(cur.u64("histogram.count")?);
    }
    Ok(HistogramSnapshot {
        bounds,
        counts,
        count: cur.u64("histogram.total")?,
        sum: cur.u64("histogram.sum")?,
        max: cur.u64("histogram.max")?,
    })
}

fn put_kernel_timing(buf: &mut Vec<u8>, t: &KernelTiming) {
    put_u64(buf, t.calls);
    put_u64(buf, t.serial_ns);
    put_u64(buf, t.parallel_ns);
    put_u64(buf, t.max_threads as u64);
}

fn take_kernel_timing(cur: &mut Cur<'_>) -> Result<KernelTiming, WireError> {
    Ok(KernelTiming {
        calls: cur.u64("kernel.calls")?,
        serial_ns: cur.u64("kernel.serial_ns")?,
        parallel_ns: cur.u64("kernel.parallel_ns")?,
        max_threads: cur.u64("kernel.max_threads")? as usize,
    })
}

/// Encodes a stats snapshot into a frame payload.
pub fn encode_stats(s: &StatsSnapshot) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, s.queue_depth);
    put_u64(&mut buf, s.received);
    put_u64(&mut buf, s.admitted);
    put_u64(&mut buf, s.served);
    put_u64(&mut buf, s.overloaded);
    put_u64(&mut buf, s.invalid_config);
    put_u64(&mut buf, s.malformed);
    put_u64(&mut buf, s.deadline_expired);
    put_u64(&mut buf, s.rejected_shutdown);
    put_u64(&mut buf, s.internal_errors);
    put_u64(&mut buf, s.progress_frames);
    put_histogram(&mut buf, &s.queue_hist);
    put_histogram(&mut buf, &s.service_hist);
    put_histogram(&mut buf, &s.e2e_hist);
    put_kernel_timing(&mut buf, &s.kernels.ftcs);
    put_kernel_timing(&mut buf, &s.kernels.velocity);
    put_kernel_timing(&mut buf, &s.kernels.advect);
    put_kernel_timing(&mut buf, &s.kernels.splat);
    buf
}

/// Decodes a stats-snapshot frame payload.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] or [`WireError::Malformed`] on
/// corrupt payloads.
pub fn decode_stats(payload: &[u8]) -> Result<StatsSnapshot, WireError> {
    let mut cur = Cur::new(payload);
    let s = StatsSnapshot {
        queue_depth: cur.u64("stats.queue_depth")?,
        received: cur.u64("stats.received")?,
        admitted: cur.u64("stats.admitted")?,
        served: cur.u64("stats.served")?,
        overloaded: cur.u64("stats.overloaded")?,
        invalid_config: cur.u64("stats.invalid_config")?,
        malformed: cur.u64("stats.malformed")?,
        deadline_expired: cur.u64("stats.deadline_expired")?,
        rejected_shutdown: cur.u64("stats.rejected_shutdown")?,
        internal_errors: cur.u64("stats.internal_errors")?,
        progress_frames: cur.u64("stats.progress_frames")?,
        queue_hist: take_histogram(&mut cur)?,
        service_hist: take_histogram(&mut cur)?,
        e2e_hist: take_histogram(&mut cur)?,
        kernels: KernelTimers {
            ftcs: take_kernel_timing(&mut cur)?,
            velocity: take_kernel_timing(&mut cur)?,
            advect: take_kernel_timing(&mut cur)?,
            splat: take_kernel_timing(&mut cur)?,
        },
    };
    cur.finish("stats")?;
    Ok(s)
}

// ---------------------------------------------------------------------------
// Error reply.
// ---------------------------------------------------------------------------

/// Why the server could not produce a [`JobResponse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The bounded request queue was full — explicit backpressure; retry
    /// later or slow down.
    Overloaded,
    /// [`DiffusionConfig::validate`] rejected the request's parameters.
    InvalidConfig,
    /// The request payload did not decode.
    Malformed,
    /// The deadline expired before the run finished. `steps`/`rounds` in
    /// the reply report the partial progress made before cancellation.
    DeadlineExpired,
    /// The server is shutting down and no longer admits requests.
    ShuttingDown,
    /// The worker failed unexpectedly.
    Internal,
}

impl ErrorCode {
    fn to_u8(self) -> u8 {
        match self {
            ErrorCode::Overloaded => 1,
            ErrorCode::InvalidConfig => 2,
            ErrorCode::Malformed => 3,
            ErrorCode::DeadlineExpired => 4,
            ErrorCode::ShuttingDown => 5,
            ErrorCode::Internal => 6,
        }
    }

    fn from_u8(b: u8) -> Result<Self, WireError> {
        match b {
            1 => Ok(ErrorCode::Overloaded),
            2 => Ok(ErrorCode::InvalidConfig),
            3 => Ok(ErrorCode::Malformed),
            4 => Ok(ErrorCode::DeadlineExpired),
            5 => Ok(ErrorCode::ShuttingDown),
            6 => Ok(ErrorCode::Internal),
            k => Err(malformed("error.code", format!("unknown error code {k}"))),
        }
    }

    /// Stable lower-snake name used in the JSONL request log.
    pub fn as_str(self) -> &'static str {
        match self {
            ErrorCode::Overloaded => "overloaded",
            ErrorCode::InvalidConfig => "invalid_config",
            ErrorCode::Malformed => "malformed",
            ErrorCode::DeadlineExpired => "deadline_expired",
            ErrorCode::ShuttingDown => "shutting_down",
            ErrorCode::Internal => "internal",
        }
    }
}

/// A rejection or failure reply.
#[derive(Debug, Clone, PartialEq)]
pub struct ErrorReply {
    /// Echo of the request id (`0` when the request never decoded).
    pub id: u64,
    /// What went wrong.
    pub code: ErrorCode,
    /// Diffusion steps completed before failure (partial progress for
    /// [`ErrorCode::DeadlineExpired`], otherwise 0).
    pub steps: u64,
    /// Rounds completed before failure.
    pub rounds: u64,
    /// Human-readable detail.
    pub message: String,
}

/// Encodes an error reply into a frame payload.
pub fn encode_error(err: &ErrorReply) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, err.id);
    put_u8(&mut buf, err.code.to_u8());
    put_u64(&mut buf, err.steps);
    put_u64(&mut buf, err.rounds);
    put_str(&mut buf, &err.message);
    buf
}

/// Decodes an error-reply frame payload.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] or [`WireError::Malformed`] on
/// corrupt payloads.
pub fn decode_error(payload: &[u8]) -> Result<ErrorReply, WireError> {
    let mut cur = Cur::new(payload);
    let id = cur.u64("error.id")?;
    let code = ErrorCode::from_u8(cur.u8("error.code")?)?;
    let steps = cur.u64("error.steps")?;
    let rounds = cur.u64("error.rounds")?;
    let message = cur.str_("error.message")?;
    cur.finish("error")?;
    Ok(ErrorReply {
        id,
        code,
        steps,
        rounds,
        message,
    })
}

// ---------------------------------------------------------------------------
// Content-hashed designs (wire v3).
// ---------------------------------------------------------------------------

/// FNV-1a over `bytes` — the content hash that names cached designs.
///
/// Deliberately the same hash family as the CI golden placement
/// checksum: dependency-free, deterministic, and stable across runs and
/// platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// Encodes a design (netlist + die + placement) into the canonical
/// binary byte string both sides hash. This is exactly the binary
/// design payload of a [`JobRequest`], so `f64` values are bit
/// patterns and the encoding round-trips exactly.
pub fn encode_design_bytes(netlist: &Netlist, die: &Die, placement: &Placement) -> Vec<u8> {
    let mut buf = Vec::new();
    put_binary_design(&mut buf, netlist, die, placement);
    buf
}

/// Decodes the canonical design byte string produced by
/// [`encode_design_bytes`].
///
/// # Errors
///
/// Returns [`WireError::Truncated`] / [`WireError::Malformed`] on
/// corrupt bytes; never panics.
pub fn decode_design_bytes(bytes: &[u8]) -> Result<(Netlist, Die, Placement), WireError> {
    let mut cur = Cur::new(bytes);
    let design = take_binary_design(&mut cur)?;
    cur.finish("design")?;
    Ok(design)
}

/// The FNV-1a content hash of a design's canonical byte encoding — the
/// key a [`DeltaJobRequest`](crate::delta::DeltaJobRequest) names its
/// baseline by.
pub fn design_hash(netlist: &Netlist, die: &Die, placement: &Placement) -> u64 {
    fnv1a64(&encode_design_bytes(netlist, die, placement))
}

/// A full design upload (client → server, wire v3): populates the
/// server's content-hash design cache so later requests can ship only
/// ECO deltas against it.
#[derive(Debug, Clone)]
pub struct PutDesign {
    /// Client-chosen correlation id, echoed in the [`DesignAck`].
    pub id: u64,
    /// Tenant this upload (and its cache residency) is accounted to.
    pub tenant: String,
    /// The canonical design byte string ([`encode_design_bytes`]); the
    /// server stores the parsed design under `fnv1a64(bytes)`.
    pub bytes: Vec<u8>,
}

/// Encodes a design upload into a frame payload.
pub fn encode_put_design(put: &PutDesign) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, put.id);
    put_str(&mut buf, &put.tenant);
    buf.extend_from_slice(&put.bytes);
    buf
}

/// Decodes a design-upload frame payload.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] / [`WireError::Malformed`] on
/// corrupt payloads.
pub fn decode_put_design(payload: &[u8]) -> Result<PutDesign, WireError> {
    let mut cur = Cur::new(payload);
    let id = cur.u64("put_design.id")?;
    let tenant = cur.str_("put_design.tenant")?;
    let bytes = payload[cur.pos..].to_vec();
    Ok(PutDesign { id, tenant, bytes })
}

/// The server's answer to a [`PutDesign`] (wire v3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DesignAck {
    /// Echo of the upload id.
    pub id: u64,
    /// Content hash the design is now cached under.
    pub hash: u64,
    /// Whether the design is resident after this upload (`false` only
    /// when it alone exceeds the cache's byte budget).
    pub cached: bool,
    /// Bytes resident in the cache after this upload.
    pub resident_bytes: u64,
    /// Designs evicted to make room for this upload.
    pub evicted: u32,
}

/// Encodes a design ack into a frame payload.
pub fn encode_design_ack(ack: &DesignAck) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, ack.id);
    put_u64(&mut buf, ack.hash);
    put_u8(&mut buf, ack.cached as u8);
    put_u64(&mut buf, ack.resident_bytes);
    put_u32(&mut buf, ack.evicted);
    buf
}

/// Decodes a design-ack frame payload.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] / [`WireError::Malformed`] on
/// corrupt payloads.
pub fn decode_design_ack(payload: &[u8]) -> Result<DesignAck, WireError> {
    let mut cur = Cur::new(payload);
    let ack = DesignAck {
        id: cur.u64("design_ack.id")?,
        hash: cur.u64("design_ack.hash")?,
        cached: cur.u8("design_ack.cached")? != 0,
        resident_bytes: cur.u64("design_ack.resident_bytes")?,
        evicted: cur.u32("design_ack.evicted")?,
    };
    cur.finish("design_ack")?;
    Ok(ack)
}

/// A typed cache-miss reply (server → client, wire v3): the baseline a
/// delta request named is not resident. The client uploads it with a
/// [`PutDesign`] and resends the delta request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeedDesign {
    /// Echo of the delta request id.
    pub id: u64,
    /// The baseline hash the server does not have.
    pub hash: u64,
}

/// Encodes a cache-miss reply into a frame payload.
pub fn encode_need_design(nd: &NeedDesign) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, nd.id);
    put_u64(&mut buf, nd.hash);
    buf
}

/// Decodes a cache-miss frame payload.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] / [`WireError::Malformed`] on
/// corrupt payloads.
pub fn decode_need_design(payload: &[u8]) -> Result<NeedDesign, WireError> {
    let mut cur = Cur::new(payload);
    let nd = NeedDesign {
        id: cur.u64("need_design.id")?,
        hash: cur.u64("need_design.hash")?,
    };
    cur.finish("need_design")?;
    Ok(nd)
}

/// Either reply a server can send for a request.
#[derive(Debug, Clone, PartialEq)]
pub enum Reply {
    /// The run finished; here is the legalized placement.
    Ok(JobResponse),
    /// The request was rejected or failed.
    Rejected(ErrorReply),
}

impl Reply {
    /// Frames this reply for the stream.
    pub fn to_frame_bytes(&self) -> (FrameKind, Vec<u8>) {
        match self {
            Reply::Ok(r) => (FrameKind::Response, encode_response(r)),
            Reply::Rejected(e) => (FrameKind::Error, encode_error(e)),
        }
    }

    /// Decodes a reply from a received frame.
    ///
    /// # Errors
    ///
    /// Returns [`WireError::Malformed`] if the frame is not a terminal
    /// reply (a request, a mid-job progress frame, or a stats frame),
    /// or any decode error from the payload.
    pub fn from_frame(frame: &Frame) -> Result<Self, WireError> {
        match frame.kind {
            FrameKind::Response => Ok(Reply::Ok(decode_response(&frame.payload)?)),
            FrameKind::Error => Ok(Reply::Rejected(decode_error(&frame.payload)?)),
            FrameKind::Request => Err(malformed("reply", "unexpected request frame")),
            FrameKind::Progress => Err(malformed("reply", "progress frame is not terminal")),
            FrameKind::StatsRequest | FrameKind::Stats => {
                Err(malformed("reply", "stats frame is not a job reply"))
            }
            FrameKind::PutDesign | FrameKind::DeltaRequest => Err(malformed(
                "reply",
                "control-plane request frame is not a reply",
            )),
            FrameKind::DesignAck => Err(malformed("reply", "design ack is not a job reply")),
            FrameKind::NeedDesign => Err(malformed(
                "reply",
                "NeedDesign is not terminal: upload the baseline and resend",
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_request(kind: JobKind) -> JobRequest {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 4.0, 12.0, CellKind::Movable);
        let c = b.add_cell("c", 6.0, 12.0, CellKind::Movable);
        let m = b.add_cell("m", 24.0, 24.0, CellKind::FixedMacro);
        let n = b.add_net("n1");
        b.connect(a, n, PinDir::Output, 2.0, 6.0);
        b.connect(c, n, PinDir::Input, 0.0, 6.0);
        let netlist = b.build().expect("valid");
        let die = Die::new(96.0, 96.0, 12.0);
        let mut placement = Placement::new(netlist.num_cells());
        placement.set(a, Point::new(10.5, 12.0));
        placement.set(c, Point::new(11.25, 12.0));
        placement.set(m, Point::new(48.0, 48.0));
        JobRequest {
            id: 77,
            deadline_ms: 250,
            progress_stride: 0,
            kind,
            design: "tiny".into(),
            // Lane mode does not travel on the wire (decode pins Wide), so
            // pin it here too or round-trip equality would depend on the
            // test process's DPM_LANES environment.
            config: DiffusionConfig::default()
                .with_bin_size(24.0)
                .with_lanes(LaneMode::Wide),
            netlist,
            die,
            placement,
            vol: None,
            trace: None,
        }
    }

    #[test]
    fn binary_request_round_trip_is_exact() {
        let req = tiny_request(JobKind::Local);
        let payload = encode_request(&req, PayloadEncoding::Binary);
        let back = decode_request(&payload).expect("decodes");
        assert_eq!(back.id, 77);
        assert_eq!(back.deadline_ms, 250);
        assert_eq!(back.progress_stride, 0);
        assert_eq!(back.design, "tiny");
        assert_eq!(back.kind, JobKind::Local);
        assert_eq!(back.config, req.config);
        assert_eq!(back.netlist.num_cells(), 3);
        assert_eq!(back.netlist.num_nets(), 1);
        assert_eq!(back.netlist.num_pins(), 2);
        assert_eq!(back.netlist.macro_ids().count(), 1);
        for c in req.netlist.cell_ids() {
            let (p0, p1) = (req.placement.get(c), back.placement.get(c));
            assert_eq!(p0.x.to_bits(), p1.x.to_bits());
            assert_eq!(p0.y.to_bits(), p1.y.to_bits());
            assert_eq!(req.netlist.cell(c).name, back.netlist.cell(c).name);
        }
        assert_eq!(req.die.outline(), back.die.outline());
    }

    #[test]
    fn f32_precision_rides_a_trailing_extension_byte() {
        let mut req = tiny_request(JobKind::Global);
        let baseline = encode_request(&req, PayloadEncoding::Binary);
        req.config = req.config.with_precision(FieldPrecision::F32);
        let payload = encode_request(&req, PayloadEncoding::Binary);
        // Exactly two extra trailing bytes: the extension-flags byte and
        // the precision byte — every earlier byte (through the solver
        // byte) is identical, so f64 frames stay byte-identical to
        // pre-precision frames.
        assert_eq!(payload.len(), baseline.len() + 2);
        assert_eq!(&payload[..baseline.len()], &baseline[..]);
        assert_eq!(payload[baseline.len()], EXT_NO_VOL | EXT_PRECISION);
        assert_eq!(payload[baseline.len() + 1], FieldPrecision::F32 as u8);
        let back = decode_request(&payload).expect("decodes");
        assert_eq!(back.config.precision, FieldPrecision::F32);
        assert_eq!(back.config, req.config);
        // And the f64 frame still decodes as f64.
        let legacy = decode_request(&baseline).expect("decodes");
        assert_eq!(legacy.config.precision, FieldPrecision::F64);
    }

    #[test]
    fn f32_precision_stacks_with_vol_and_trace_extensions() {
        let mut req = tiny_request(JobKind::Global);
        req.config = req.config.with_precision(FieldPrecision::F32);
        req.vol = Some(VolRequestExt {
            nz: 3,
            z0: 0,
            global_nz: 3,
            exact_steps: Some(4),
            z: vec![0.5, 1.5, 2.5],
            field: None,
        });
        req.trace = Some(TraceContext {
            trace_id: 9,
            span_id: 8,
            parent_id: 7,
        });
        let payload = encode_request(&req, PayloadEncoding::Binary);
        let back = decode_request(&payload).expect("decodes");
        assert_eq!(back.config.precision, FieldPrecision::F32);
        assert_eq!(back.vol, req.vol);
        assert_eq!(back.trace, req.trace);
        // The precision byte is the very last payload byte.
        assert_eq!(
            *payload.last().expect("non-empty"),
            FieldPrecision::F32 as u8
        );
        assert!(
            decode_request(&payload[..payload.len() - 1]).is_err(),
            "announced precision byte must be present"
        );
    }

    #[test]
    fn unknown_precision_byte_is_malformed() {
        let mut req = tiny_request(JobKind::Global);
        req.config = req.config.with_precision(FieldPrecision::F32);
        let mut payload = encode_request(&req, PayloadEncoding::Binary);
        *payload.last_mut().expect("non-empty") = 7;
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Malformed { context, .. }) if context == "request.ext.precision"
        ));
    }

    #[test]
    fn bookshelf_request_round_trip_preserves_positions() {
        let req = tiny_request(JobKind::Global);
        let payload = encode_request(&req, PayloadEncoding::Bookshelf);
        let back = decode_request(&payload).expect("decodes");
        assert_eq!(back.kind, JobKind::Global);
        assert_eq!(back.netlist.num_cells(), req.netlist.num_cells());
        // Display-formatted f64 round-trips exactly in Rust.
        for c in req.netlist.cell_ids() {
            let (p0, p1) = (req.placement.get(c), back.placement.get(c));
            assert_eq!(p0.x.to_bits(), p1.x.to_bits());
            assert_eq!(p0.y.to_bits(), p1.y.to_bits());
        }
    }

    #[test]
    fn response_round_trip() {
        let resp = JobResponse {
            id: 9,
            converged: true,
            steps: 42,
            rounds: 3,
            total_movement: 123.456,
            max_movement: 7.25,
            queue_ns: 1000,
            service_ns: 2000,
            positions: vec![Point::new(1.5, -2.5), Point::new(0.0, f64::MAX)],
            vol: None,
            spans: Vec::new(),
        };
        let back = decode_response(&encode_response(&resp)).expect("decodes");
        assert_eq!(back, resp);
    }

    #[test]
    fn error_round_trip() {
        let err = ErrorReply {
            id: 3,
            code: ErrorCode::DeadlineExpired,
            steps: 17,
            rounds: 2,
            message: "deadline of 50ms expired".into(),
        };
        let back = decode_error(&encode_error(&err)).expect("decodes");
        assert_eq!(back, err);
    }

    #[test]
    fn progress_round_trip() {
        let p = ProgressUpdate {
            id: 12,
            step: 340,
            round: 3,
            overflow: 0.75,
            movement: 1234.5,
            max_density: 1.03125,
        };
        let back = decode_progress(&encode_progress(&p)).expect("decodes");
        assert_eq!(back, p);
        // Bit-identical f64 travel.
        assert_eq!(back.max_density.to_bits(), p.max_density.to_bits());
    }

    #[test]
    fn stats_round_trip() {
        let mut queue_hist = dpm_obs::Histogram::latency_default().snapshot();
        queue_hist.counts[0] = 3;
        queue_hist.count = 3;
        queue_hist.sum = 2_500;
        queue_hist.max = 900;
        let mut kernels = KernelTimers::default();
        kernels.ftcs.record(std::time::Duration::from_micros(7), 4);
        let s = StatsSnapshot {
            queue_depth: 2,
            received: 100,
            admitted: 90,
            served: 80,
            overloaded: 5,
            invalid_config: 2,
            malformed: 3,
            deadline_expired: 6,
            rejected_shutdown: 1,
            internal_errors: 0,
            progress_frames: 42,
            queue_hist: queue_hist.clone(),
            service_hist: dpm_obs::Histogram::latency_default().snapshot(),
            e2e_hist: queue_hist,
            kernels,
        };
        let back = decode_stats(&encode_stats(&s)).expect("decodes");
        assert_eq!(back, s);
    }

    #[test]
    fn truncated_stats_errors_not_panics() {
        let s = StatsSnapshot {
            queue_depth: 0,
            received: 0,
            admitted: 0,
            served: 0,
            overloaded: 0,
            invalid_config: 0,
            malformed: 0,
            deadline_expired: 0,
            rejected_shutdown: 0,
            internal_errors: 0,
            progress_frames: 0,
            queue_hist: dpm_obs::Histogram::latency_default().snapshot(),
            service_hist: dpm_obs::Histogram::latency_default().snapshot(),
            e2e_hist: dpm_obs::Histogram::latency_default().snapshot(),
            kernels: KernelTimers::default(),
        };
        let payload = encode_stats(&s);
        for cut in 0..payload.len() {
            assert!(decode_stats(&payload[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn frames_round_trip_over_a_buffer() {
        let req = tiny_request(JobKind::Local);
        let payload = encode_request(&req, PayloadEncoding::Binary);
        let mut stream = Vec::new();
        write_frame(&mut stream, FrameKind::Request, &payload).expect("writes");
        write_frame(
            &mut stream,
            FrameKind::Error,
            &encode_error(&ErrorReply {
                id: 1,
                code: ErrorCode::Overloaded,
                steps: 0,
                rounds: 0,
                message: String::new(),
            }),
        )
        .expect("writes");

        let mut r = &stream[..];
        let f1 = read_frame(&mut r, DEFAULT_MAX_FRAME_LEN)
            .expect("reads")
            .expect("present");
        assert_eq!(f1.kind, FrameKind::Request);
        assert_eq!(f1.payload, payload);
        let f2 = read_frame(&mut r, DEFAULT_MAX_FRAME_LEN)
            .expect("reads")
            .expect("present");
        assert_eq!(f2.kind, FrameKind::Error);
        assert!(read_frame(&mut r, DEFAULT_MAX_FRAME_LEN)
            .expect("clean EOF")
            .is_none());
    }

    #[test]
    fn corrupt_headers_are_rejected() {
        // Bad magic.
        let mut bad = Vec::new();
        write_frame(&mut bad, FrameKind::Error, &[]).expect("writes");
        bad[0] = b'X';
        assert!(matches!(
            read_frame(&mut &bad[..], DEFAULT_MAX_FRAME_LEN),
            Err(WireError::BadMagic(_))
        ));

        // Future version.
        let mut bad = Vec::new();
        write_frame(&mut bad, FrameKind::Error, &[]).expect("writes");
        bad[4] = 99;
        assert!(matches!(
            read_frame(&mut &bad[..], DEFAULT_MAX_FRAME_LEN),
            Err(WireError::UnsupportedVersion(99))
        ));

        // Unknown kind.
        let mut bad = Vec::new();
        write_frame(&mut bad, FrameKind::Error, &[]).expect("writes");
        bad[6] = 42;
        assert!(matches!(
            read_frame(&mut &bad[..], DEFAULT_MAX_FRAME_LEN),
            Err(WireError::UnknownFrameKind(42))
        ));

        // Over-long payload vs cap.
        let mut big = Vec::new();
        write_frame(&mut big, FrameKind::Error, &[0u8; 128]).expect("writes");
        assert!(matches!(
            read_frame(&mut &big[..], 64),
            Err(WireError::FrameTooLarge { len: 128, max: 64 })
        ));
    }

    #[test]
    fn truncated_payloads_error_not_panic() {
        let req = tiny_request(JobKind::Global);
        let payload = encode_request(&req, PayloadEncoding::Binary);
        // Chop the payload at every length; each prefix must produce an
        // error — never panic. The single exception is stripping exactly
        // the trailing solver byte, which is by design a complete legacy
        // (pre-spectral) frame.
        for cut in 0..payload.len() {
            match decode_request(&payload[..cut]) {
                Err(_) => {}
                Ok(_) if cut == payload.len() - 1 => {}
                Ok(_) => panic!("truncated payload of {cut} bytes decoded"),
            }
        }
        assert!(decode_request(&payload).is_ok());
    }

    #[test]
    fn legacy_frame_without_solver_byte_decodes_as_ftcs() {
        // Back-compat pin: a v2 request frame that predates the solver
        // byte is exactly today's frame with the last byte stripped. It
        // must decode with `SolverKind::Ftcs` and every other field
        // bit-identical — so PR 2–4 era clients keep working unchanged.
        let mut req = tiny_request(JobKind::Local);
        req.config = req.config.with_solver(SolverKind::Spectral);
        let payload = encode_request(&req, PayloadEncoding::Binary);
        assert_eq!(
            *payload.last().expect("non-empty"),
            SolverKind::Spectral as u8,
            "solver byte must be the final payload byte"
        );

        let legacy = &payload[..payload.len() - 1];
        let back = decode_request(legacy).expect("legacy frame decodes");
        assert_eq!(back.config.solver, SolverKind::Ftcs);
        assert_eq!(
            back.config,
            req.config.with_solver(SolverKind::Ftcs),
            "all non-solver config fields survive the legacy path"
        );
        assert_eq!(back.id, req.id);
        assert_eq!(back.design, req.design);
        assert_eq!(back.kind, req.kind);

        // And the modern frame round-trips the spectral choice.
        let modern = decode_request(&payload).expect("decodes");
        assert_eq!(modern.config.solver, SolverKind::Spectral);

        // Unknown solver discriminants are malformed, not a panic.
        let mut bad = payload.clone();
        *bad.last_mut().expect("non-empty") = 7;
        assert!(matches!(
            decode_request(&bad),
            Err(WireError::Malformed {
                context: "request.solver",
                ..
            })
        ));
    }

    #[test]
    fn dimension_less_frame_decodes_byte_for_byte_as_a_2d_job() {
        // Back-compat pin for the volumetric era: the dimension block is
        // a pure suffix of the frame, so a planar request is the exact
        // byte prefix of its volumetric sibling, and a dimension-less
        // (pre-volumetric v3) frame decodes as a plain 2D job whose
        // re-encoding reproduces the original bytes.
        let mut req = tiny_request(JobKind::Global);
        let planar = encode_request(&req, PayloadEncoding::Binary);
        req.vol = Some(VolRequestExt {
            nz: 3,
            z0: 0,
            global_nz: 3,
            exact_steps: None,
            z: vec![0.5, 1.5, 2.5],
            field: None,
        });
        let volumetric = encode_request(&req, PayloadEncoding::Binary);
        assert!(volumetric.len() > planar.len());
        assert_eq!(
            &volumetric[..planar.len()],
            &planar[..],
            "the vol block must be a pure suffix of the planar frame"
        );

        let back = decode_request(&planar).expect("dimension-less frame decodes");
        assert!(back.vol.is_none(), "no trailing bytes means a 2D job");
        assert_eq!(
            encode_request(&back, PayloadEncoding::Binary),
            planar,
            "the 2D decode re-encodes byte-for-byte"
        );
    }

    #[test]
    fn volumetric_request_round_trip_is_exact() {
        let mut req = tiny_request(JobKind::Global);
        let field: Vec<f64> = (0..32).map(|i| f64::from(i) * 0.125 + 0.001).collect();
        req.vol = Some(VolRequestExt {
            nz: 2,
            z0: 1,
            global_nz: 4,
            exact_steps: Some(1),
            z: vec![1.5, 2.25, 3.0 + f64::EPSILON],
            field: Some(field),
        });
        let payload = encode_request(&req, PayloadEncoding::Binary);
        let back = decode_request(&payload).expect("decodes");
        let v0 = req.vol.as_ref().expect("sent");
        let v1 = back.vol.as_ref().expect("the vol extension survives");
        assert_eq!(v1.nz, 2);
        assert_eq!(v1.z0, 1);
        assert_eq!(v1.global_nz, 4);
        assert_eq!(v1.exact_steps, Some(1));
        assert_eq!(v0.z.len(), v1.z.len());
        for (a, b) in v0.z.iter().zip(&v1.z) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
        let f0 = v0.field.as_ref().expect("sent");
        let f1 = v1.field.as_ref().expect("the raw field survives");
        assert_eq!(f0.len(), f1.len());
        for (a, b) in f0.iter().zip(f1) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn volumetric_response_round_trip_is_exact() {
        let resp = JobResponse {
            id: 5,
            converged: false,
            steps: 7,
            rounds: 7,
            total_movement: 0.5,
            max_movement: 0.25,
            queue_ns: 10,
            service_ns: 20,
            positions: vec![Point::new(3.0, 4.0)],
            vol: Some(VolResponseExt {
                z: vec![0.5, 1.5, f64::MIN_POSITIVE],
                field: Some(vec![0.0, 1.0, 0.75, f64::MAX]),
            }),
            spans: Vec::new(),
        };
        let back = decode_response(&encode_response(&resp)).expect("decodes");
        assert_eq!(back, resp);

        // A planar reply stays byte-identical to the pre-volumetric
        // framing: it is the exact prefix of its volumetric sibling.
        let planar = JobResponse {
            vol: None,
            ..resp.clone()
        };
        let planar_bytes = encode_response(&planar);
        assert_eq!(
            &encode_response(&resp)[..planar_bytes.len()],
            &planar_bytes[..]
        );
    }

    #[test]
    fn malformed_vol_blocks_error_not_panic() {
        let mut req = tiny_request(JobKind::Global);
        req.vol = Some(VolRequestExt {
            nz: 2,
            z0: 0,
            global_nz: 2,
            exact_steps: None,
            z: vec![0.5, 1.0, 1.5],
            field: None,
        });
        let payload = encode_request(&req, PayloadEncoding::Binary);
        // With no exact-steps and no field the vol block is flags(1) +
        // nz(4) + z0(4) + global_nz(4) + z count(4) + three f64 depths.
        let flags_off = payload.len() - (1 + 4 + 4 + 4 + 4 + 3 * 8);

        // Unknown flag bits are malformed, not silently ignored — they
        // are the extension point for future revisions.
        let mut bad = payload.clone();
        bad[flags_off] = 0x80;
        assert!(matches!(
            decode_request(&bad),
            Err(WireError::Malformed {
                context: "request.ext.flags",
                ..
            })
        ));

        // A region poking outside the stack (z0 + nz > global_nz) is
        // malformed.
        let mut bad = payload.clone();
        let z0_off = flags_off + 1 + 4;
        bad[z0_off..z0_off + 4].copy_from_slice(&7u32.to_le_bytes());
        assert!(matches!(
            decode_request(&bad),
            Err(WireError::Malformed { context: "vol", .. })
        ));

        // Every truncation inside the vol block errors — never panics,
        // and never decodes as a shorter volumetric frame.
        for cut in flags_off + 1..payload.len() {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "vol block truncated to {} bytes decoded",
                cut - flags_off
            );
        }
        // Cutting the whole block off leaves a valid planar frame.
        assert!(decode_request(&payload[..flags_off])
            .expect("planar prefix decodes")
            .vol
            .is_none());
    }

    #[test]
    fn degenerate_die_is_malformed_not_panic() {
        let mut req = tiny_request(JobKind::Global);
        req.config = DiffusionConfig::default();
        let mut payload = encode_request(&req, PayloadEncoding::Binary);
        // The die width field sits right after id(8) + deadline(4) +
        // progress_stride(4) + kind(1) + design("tiny" → 4+4) +
        // config(five f64 + max_steps u64 + two u8 flags + four u64
        // counters + f64 clamp + u8 flag + u64 threads) + encoding(1)
        // + llx(8) + lly(8).
        let config_len = 5 * 8 + 8 + 2 + 4 * 8 + 8 + 1 + 8;
        let die_width_off = 8 + 4 + 4 + 1 + (4 + 4) + config_len + 1 + 16;
        payload[die_width_off..die_width_off + 8]
            .copy_from_slice(&f64::NAN.to_bits().to_le_bytes());
        assert!(matches!(
            decode_request(&payload),
            Err(WireError::Malformed { context: "die", .. })
        ));
    }

    #[test]
    fn pin_referencing_missing_cell_is_malformed() {
        let req = tiny_request(JobKind::Global);
        let payload = encode_request(&req, PayloadEncoding::Binary);
        // Find the first pin's cell index (value 0 as u32 after the net
        // name + pin count); rather than hand-compute the offset, corrupt
        // every aligned u32 equal to 0 near the tail and require that at
        // least one corruption yields a Malformed pin error and none
        // panic.
        let mut saw_pin_error = false;
        for off in (payload.len() - 80)..(payload.len() - 4) {
            let mut p = payload.clone();
            p[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            match decode_request(&p) {
                Err(WireError::Malformed { context, .. })
                    if context == "pin.cell" || context == "netlist" =>
                {
                    saw_pin_error = true;
                }
                _ => {}
            }
        }
        assert!(saw_pin_error, "no corruption hit the pin cell index");
    }

    #[test]
    fn assembler_parses_frames_split_at_every_byte_boundary() {
        let mut bytes = Vec::new();
        write_frame(&mut bytes, FrameKind::StatsRequest, &[]).expect("write");
        write_frame(&mut bytes, FrameKind::Progress, &[1, 2, 3, 4, 5]).expect("write");
        for split in 0..bytes.len() {
            let mut asm = FrameAssembler::new();
            asm.push(&bytes[..split]);
            let mut frames = Vec::new();
            while let Some(f) = asm.next_frame(DEFAULT_MAX_FRAME_LEN).expect("no error") {
                frames.push(f);
            }
            asm.push(&bytes[split..]);
            while let Some(f) = asm.next_frame(DEFAULT_MAX_FRAME_LEN).expect("no error") {
                frames.push(f);
            }
            assert_eq!(frames.len(), 2, "split at {split}");
            assert_eq!(frames[0].kind, FrameKind::StatsRequest);
            assert_eq!(frames[0].version, VERSION);
            assert_eq!(frames[1].kind, FrameKind::Progress);
            assert_eq!(frames[1].payload, vec![1, 2, 3, 4, 5]);
            assert_eq!(asm.pending(), 0);
        }
    }

    #[test]
    fn assembler_byte_at_a_time_many_frames_stays_bounded() {
        let mut bytes = Vec::new();
        for i in 0..64u8 {
            write_frame(&mut bytes, FrameKind::Progress, &[i; 200]).expect("write");
        }
        let mut asm = FrameAssembler::new();
        let mut got = 0u8;
        for &b in &bytes {
            asm.push(&[b]);
            while let Some(f) = asm.next_frame(DEFAULT_MAX_FRAME_LEN).expect("no error") {
                assert_eq!(f.payload, vec![got; 200]);
                got += 1;
            }
        }
        assert_eq!(got, 64);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn assembler_rejects_bad_magic_and_oversize() {
        let mut asm = FrameAssembler::new();
        asm.push(b"XXXX\x02\x00\x00\x00\x00\x00\x00");
        assert!(matches!(
            asm.next_frame(DEFAULT_MAX_FRAME_LEN),
            Err(WireError::BadMagic(_))
        ));

        let mut asm = FrameAssembler::new();
        let mut bytes = Vec::new();
        write_frame(&mut bytes, FrameKind::Progress, &[0u8; 100]).expect("write");
        asm.push(&bytes);
        assert!(matches!(
            asm.next_frame(10),
            Err(WireError::FrameTooLarge { len: 100, max: 10 })
        ));
    }

    #[test]
    fn v2_header_still_decodes_and_version_is_reported() {
        let mut bytes = Vec::new();
        write_frame_versioned(&mut bytes, 2, FrameKind::StatsRequest, &[]).expect("write");
        let frame = read_frame(&mut &bytes[..], DEFAULT_MAX_FRAME_LEN)
            .expect("reads")
            .expect("some");
        assert_eq!(frame.version, 2);
        let mut asm = FrameAssembler::new();
        asm.push(&bytes);
        let frame = asm
            .next_frame(DEFAULT_MAX_FRAME_LEN)
            .expect("ok")
            .expect("some");
        assert_eq!(frame.version, 2);

        // Below MIN_VERSION is rejected.
        let mut bytes = Vec::new();
        write_frame_versioned(&mut bytes, 1, FrameKind::StatsRequest, &[]).expect("write");
        assert!(matches!(
            read_frame(&mut &bytes[..], DEFAULT_MAX_FRAME_LEN),
            Err(WireError::UnsupportedVersion(1))
        ));
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Standard FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn design_bytes_round_trip_and_hash_are_stable() {
        let req = tiny_request(JobKind::Global);
        let bytes = encode_design_bytes(&req.netlist, &req.die, &req.placement);
        let (nl, die, pl) = decode_design_bytes(&bytes).expect("decodes");
        assert_eq!(nl.num_cells(), req.netlist.num_cells());
        assert_eq!(die.outline().urx.to_bits(), req.die.outline().urx.to_bits());
        for c in req.netlist.cell_ids() {
            assert_eq!(pl.get(c).x.to_bits(), req.placement.get(c).x.to_bits());
            assert_eq!(pl.get(c).y.to_bits(), req.placement.get(c).y.to_bits());
        }
        // The hash of the re-encoded decode is the hash of the original:
        // the canonical encoding is a fixed point.
        let h1 = design_hash(&req.netlist, &req.die, &req.placement);
        let h2 = design_hash(&nl, &die, &pl);
        assert_eq!(h1, h2);
        assert_eq!(h1, fnv1a64(&bytes));
        // Trailing garbage is rejected.
        let mut longer = bytes.clone();
        longer.push(0);
        assert!(decode_design_bytes(&longer).is_err());
    }

    #[test]
    fn put_design_round_trip() {
        let req = tiny_request(JobKind::Global);
        let put = PutDesign {
            id: 42,
            tenant: "acme".into(),
            bytes: encode_design_bytes(&req.netlist, &req.die, &req.placement),
        };
        let payload = encode_put_design(&put);
        let back = decode_put_design(&payload).expect("decodes");
        assert_eq!(back.id, 42);
        assert_eq!(back.tenant, "acme");
        assert_eq!(back.bytes, put.bytes);
        assert!(decode_design_bytes(&back.bytes).is_ok());
    }

    #[test]
    fn design_ack_and_need_design_round_trip() {
        let ack = DesignAck {
            id: 9,
            hash: 0xdead_beef_cafe_f00d,
            cached: true,
            resident_bytes: 123_456,
            evicted: 3,
        };
        let back = decode_design_ack(&encode_design_ack(&ack)).expect("decodes");
        assert_eq!(back, ack);

        let nd = NeedDesign {
            id: 9,
            hash: 0xdead_beef_cafe_f00d,
        };
        let back = decode_need_design(&encode_need_design(&nd)).expect("decodes");
        assert_eq!(back, nd);

        // Truncated payloads are typed errors, not panics.
        assert!(decode_design_ack(&encode_design_ack(&ack)[..10]).is_err());
        assert!(decode_need_design(&[0u8; 7]).is_err());
    }

    #[test]
    fn traced_request_is_a_pure_suffix_of_the_legacy_frame() {
        let mut req = tiny_request(JobKind::Local);
        let legacy = encode_request(&req, PayloadEncoding::Binary);

        req.trace = Some(TraceContext {
            trace_id: 0x1111_2222_3333_4444,
            span_id: 0x5555_6666_7777_8888,
            parent_id: 0,
        });
        let traced = encode_request(&req, PayloadEncoding::Binary);

        // Trace context rides as flags byte + 24-byte block appended
        // after everything a legacy decoder reads: the untraced frame
        // is byte-for-byte a prefix of the traced one.
        assert_eq!(traced.len(), legacy.len() + 1 + 24);
        assert_eq!(&traced[..legacy.len()], &legacy[..]);

        let back = decode_request(&traced).expect("traced frame decodes");
        assert_eq!(back.trace, req.trace);
        assert!(back.vol.is_none());
        // And the legacy bytes still decode as an untraced job.
        assert_eq!(decode_request(&legacy).expect("legacy decodes").trace, None);
    }

    #[test]
    fn traced_volumetric_request_round_trip_is_exact() {
        let mut req = tiny_request(JobKind::Global);
        req.vol = Some(VolRequestExt {
            nz: 3,
            z0: 0,
            global_nz: 3,
            exact_steps: None,
            z: vec![0.5, 1.5, 2.5],
            field: None,
        });
        let untraced = encode_request(&req, PayloadEncoding::Binary);
        req.trace = Some(TraceContext {
            trace_id: 7,
            span_id: 8,
            parent_id: 9,
        });
        let traced = encode_request(&req, PayloadEncoding::Binary);
        // Same flags byte position, EXT_TRACE bit set, 24 extra bytes.
        assert_eq!(traced.len(), untraced.len() + 24);
        let back = decode_request(&traced).expect("decodes");
        assert_eq!(back.trace, req.trace);
        assert_eq!(back.vol, req.vol);
    }

    #[test]
    fn malformed_trace_blocks_error_not_panic() {
        let mut req = tiny_request(JobKind::Local);
        req.trace = Some(TraceContext {
            trace_id: 1,
            span_id: 2,
            parent_id: 3,
        });
        let payload = encode_request(&req, PayloadEncoding::Binary);
        let flags_off = payload.len() - (1 + 24);

        // The all-zero context never appears on the wire.
        let mut bad = payload.clone();
        bad[flags_off + 1..].fill(0);
        assert!(matches!(
            decode_request(&bad),
            Err(WireError::Malformed {
                context: "trace",
                ..
            })
        ));

        // A vol-absent flag without a trace block is non-canonical: the
        // frame should have ended at the solver byte instead.
        let mut bad = payload[..flags_off + 1].to_vec();
        bad[flags_off] = EXT_NO_VOL;
        assert!(matches!(
            decode_request(&bad),
            Err(WireError::Malformed {
                context: "request.ext.flags",
                ..
            })
        ));

        // Unknown future flag bits are malformed, not silently skipped
        // (0x10 became EXT_PRECISION; 0x20 is the next unassigned bit).
        for unknown in [0x20u8, 0x40, 0xE0] {
            let mut bad = payload.clone();
            bad[flags_off] = unknown;
            assert!(matches!(
                decode_request(&bad),
                Err(WireError::Malformed {
                    context: "request.ext.flags",
                    ..
                })
            ));
        }

        // Every truncation inside the trace block errors, never panics.
        for cut in flags_off + 1..payload.len() {
            assert!(
                decode_request(&payload[..cut]).is_err(),
                "trace block truncated to {} bytes decoded",
                cut - flags_off
            );
        }
        // Cutting the whole extension off leaves a valid untraced frame.
        assert!(decode_request(&payload[..flags_off])
            .expect("untraced prefix decodes")
            .trace
            .is_none());
    }

    #[test]
    fn span_export_round_trip_and_legacy_prefix() {
        let bare = JobResponse {
            id: 5,
            converged: true,
            steps: 10,
            rounds: 1,
            total_movement: 1.0,
            max_movement: 0.5,
            queue_ns: 7,
            service_ns: 11,
            positions: vec![Point::new(1.0, 2.0)],
            vol: None,
            spans: Vec::new(),
        };
        let legacy = encode_response(&bare);

        let mut traced = bare.clone();
        traced.spans = vec![
            SpanRecord {
                name: "job.local".into(),
                start_ns: 0,
                end_ns: 500,
                trace_id: 0xABCD,
                span_id: 2,
                parent_id: 1,
            },
            SpanRecord {
                name: "kernel.ftcs \"quoted\"\n".into(),
                start_ns: 10,
                end_ns: 20,
                trace_id: 0xABCD,
                span_id: 3,
                parent_id: 2,
            },
        ];
        let payload = encode_response(&traced);
        // The span export is a pure suffix after the untraced bytes.
        assert!(payload.len() > legacy.len());
        assert_eq!(&payload[..legacy.len()], &legacy[..]);
        let back = decode_response(&payload).expect("decodes");
        assert_eq!(back, traced);
        assert_eq!(
            decode_response(&legacy).expect("legacy decodes").spans,
            Vec::new()
        );
    }

    #[test]
    fn malformed_span_exports_error_not_panic() {
        let mut resp = JobResponse {
            id: 5,
            converged: true,
            steps: 10,
            rounds: 1,
            total_movement: 1.0,
            max_movement: 0.5,
            queue_ns: 7,
            service_ns: 11,
            positions: vec![Point::new(1.0, 2.0)],
            vol: None,
            spans: vec![SpanRecord {
                name: "job.local".into(),
                start_ns: 100,
                end_ns: 50, // inverted on purpose below
                trace_id: 1,
                span_id: 2,
                parent_id: 0,
            }],
        };
        resp.spans[0].end_ns = 200;
        let payload = encode_response(&resp);
        let flags_off = payload.len()
            - (1 // ext flags
                + 8 // shared trace id
                + 4 // count
                + 4 + "job.local".len() // name
                + 8 * 4); // ids + interval

        // An inverted interval is malformed, not a wrap-around duration.
        let mut bad = payload.clone();
        let end_off = payload.len() - 8;
        bad[end_off..].copy_from_slice(&49u64.to_le_bytes());
        assert!(matches!(
            decode_response(&bad),
            Err(WireError::Malformed {
                context: "span",
                ..
            })
        ));

        // A hostile count cannot drive allocation past the payload: it
        // just truncates.
        let mut bad = payload.clone();
        let count_off = flags_off + 1 + 8;
        bad[count_off..count_off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_response(&bad),
            Err(WireError::Truncated { .. })
        ));

        // Every truncation inside the export errors, never panics.
        for cut in flags_off + 1..payload.len() {
            assert!(
                decode_response(&payload[..cut]).is_err(),
                "span export truncated to {} bytes decoded",
                cut - flags_off
            );
        }
        assert!(decode_response(&payload[..flags_off])
            .expect("bare prefix decodes")
            .spans
            .is_empty());
    }
}
