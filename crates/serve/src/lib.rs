//! Migration-as-a-service: run diffusion-based placement migration over
//! a socket.
//!
//! `dpm-serve` wraps the `dpm-diffusion` engines in a small, std-only
//! TCP service speaking a length-prefixed, versioned binary protocol
//! ([`wire`]). The server is built around explicit capacity limits:
//!
//! - a **bounded admission queue** ([`queue::BoundedQueue`]) — when it
//!   is full the client gets an [`ErrorCode::Overloaded`] reply at once
//!   instead of unbounded buffering;
//! - **per-request deadlines** measured from admission (queue wait
//!   counts), enforced *inside* the diffusion loops via the engines'
//!   cancellation hooks — an expired job answers
//!   [`ErrorCode::DeadlineExpired`] with its partial step/round counts;
//! - a **fixed worker pool** running the actual jobs;
//! - **structured JSONL request logs** ([`log::RequestLog`]);
//! - **streaming observability**: requests can ask for periodic
//!   [`ProgressUpdate`] frames while diffusion runs, and any client can
//!   fetch a [`StatsSnapshot`] (counters, latency histograms, merged
//!   kernel timings) — both built on the `dpm-obs` metrics registry;
//! - **graceful shutdown**: stop accepting, drain every admitted job,
//!   join all threads;
//! - **horizontal sharding** ([`shard`]): a [`ShardRouter`] partitions
//!   one job's die into K bin-aligned regions with density halos, fans
//!   the sub-problems out to in-process or TCP backends, and stitches
//!   the owned-cell results back with bounded halo-exchange rounds —
//!   K = 1 is bit-identical to a direct engine run, and a dead shard
//!   degrades to an unmigrated region instead of a failed job;
//! - **z-slab volumetric routing** ([`zslab`]): a [`VolRouter`] splats
//!   a 3D (tiered) job's density once, then ships each of K backends a
//!   tier slab with ghost layers and runs one exact FTCS step per
//!   halo-exchange round — the routed stack is bit-identical to a
//!   direct [`VolumetricDiffusion`](dpm_diffusion::VolumetricDiffusion)
//!   run at any K, in-process or over TCP. The [`wire`] format carries
//!   the tier axis as an optional trailing extension, so planar frames
//!   are byte-identical to pre-volumetric ones and legacy frames decode
//!   as 2D jobs.
//!
//! Determinism survives the wire: `f64` values travel as IEEE-754 bit
//! patterns, so a round trip through the server produces placements
//! bit-identical to calling the engines in-process. Progress streaming
//! is observation-only — a request with `progress_stride: 0` and the
//! same request streamed every step produce bit-identical placements.
//!
//! ```no_run
//! use dpm_serve::{Server, ServeClient, ServeConfig};
//! use dpm_serve::wire::{JobKind, JobRequest, PayloadEncoding, Reply};
//! # fn demo(netlist: dpm_netlist::Netlist, die: dpm_place::Die,
//! #         placement: dpm_place::Placement) -> std::io::Result<()> {
//! let server = Server::start("127.0.0.1:0", ServeConfig::default())?;
//! let mut client = ServeClient::connect(server.local_addr())?;
//! let req = JobRequest {
//!     id: 1,
//!     deadline_ms: 0,
//!     progress_stride: 8, // a ProgressUpdate every 8 diffusion steps
//!     kind: JobKind::Local,
//!     design: "cpu_core".into(),
//!     config: dpm_diffusion::DiffusionConfig::default(),
//!     netlist,
//!     die,
//!     placement,
//!     vol: None,   // planar job; Some(VolRequestExt) runs a 3D stack
//!     trace: None, // Some(TraceContext) joins a distributed trace
//! };
//! let reply = client.request_streaming(&req, PayloadEncoding::Binary, |p| {
//!     eprintln!("step {}: max density {:.3}", p.step, p.max_density);
//! });
//! match reply {
//!     Ok(Reply::Ok(resp)) => println!("{} steps", resp.steps),
//!     Ok(Reply::Rejected(e)) => eprintln!("rejected: {}", e.message),
//!     Err(e) => eprintln!("transport: {e}"),
//! }
//! let stats = client.stats().expect("stats frame");
//! println!("served {} jobs; p99 e2e {} ns",
//!          stats.served, stats.e2e_hist.percentile(0.99));
//! server.shutdown();
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod delta;
pub mod log;
pub mod queue;
pub mod server;
pub mod shard;
pub mod wire;
pub mod zslab;

pub use client::{DeltaReply, ServeClient};
pub use delta::{CellMove, CellResize, DeltaError, DeltaJobRequest, EcoDelta, NewCell};
pub use server::{execute_job, ServeConfig, ServeStats, Server};
pub use shard::{
    ShardBackend, ShardFailover, ShardOutcome, ShardReply, ShardRouter, ShardRouterConfig,
};
pub use wire::{
    design_hash, DesignAck, ErrorCode, ErrorReply, JobKind, JobRequest, JobResponse, NeedDesign,
    PayloadEncoding, ProgressUpdate, PutDesign, Reply, StatsSnapshot, VolRequestExt,
    VolResponseExt,
};
pub use zslab::{VolReply, VolRouteError, VolRouter, VolRouterConfig};
