//! Per-step telemetry of a diffusion run (drives the paper's Figs. 9–10).

/// Snapshot of one diffusion step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Step number `n` (0-based).
    pub step: usize,
    /// Total cell movement during this step, in world units.
    pub movement: f64,
    /// Total overflow of the *computed* (PDE) density after the step.
    pub computed_overflow: f64,
    /// Maximum computed density after the step.
    pub max_density: f64,
    /// Total overflow of the *measured* placement density, when a dynamic
    /// density update happened at this step.
    pub measured_overflow: Option<f64>,
}

/// Accumulated telemetry of a diffusion run.
///
/// # Examples
///
/// ```
/// use dpm_diffusion::{StepRecord, Telemetry};
///
/// let mut t = Telemetry::new();
/// t.push(StepRecord { step: 0, movement: 3.0, computed_overflow: 1.0, max_density: 1.5, measured_overflow: None });
/// t.push(StepRecord { step: 1, movement: 2.0, computed_overflow: 0.5, max_density: 1.2, measured_overflow: Some(0.4) });
/// assert_eq!(t.total_movement(), 5.0);
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    records: Vec<StepRecord>,
}

impl Telemetry {
    /// Creates empty telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step record.
    pub fn push(&mut self, record: StepRecord) {
        self.records.push(record);
    }

    /// All records, in step order.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total cell movement across all steps.
    pub fn total_movement(&self) -> f64 {
        self.records.iter().map(|r| r.movement).sum()
    }

    /// Cumulative movement per step (the series of the paper's Fig. 9).
    pub fn cumulative_movement(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.records
            .iter()
            .map(|r| {
                acc += r.movement;
                acc
            })
            .collect()
    }

    /// The computed-overflow series (the paper's Fig. 10).
    pub fn overflow_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.computed_overflow).collect()
    }

    /// The measured-overflow checkpoints `(step, overflow)` recorded at
    /// dynamic density updates.
    pub fn measured_checkpoints(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.measured_overflow.map(|o| (r.step, o)))
            .collect()
    }
}

impl Extend<StepRecord> for Telemetry {
    fn extend<T: IntoIterator<Item = StepRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: usize, movement: f64, overflow: f64) -> StepRecord {
        StepRecord {
            step,
            movement,
            computed_overflow: overflow,
            max_density: 0.0,
            measured_overflow: None,
        }
    }

    #[test]
    fn empty_telemetry() {
        let t = Telemetry::new();
        assert!(t.is_empty());
        assert_eq!(t.total_movement(), 0.0);
        assert!(t.cumulative_movement().is_empty());
    }

    #[test]
    fn cumulative_movement_is_monotone_prefix_sum() {
        let mut t = Telemetry::new();
        t.extend([rec(0, 1.0, 5.0), rec(1, 2.0, 3.0), rec(2, 0.5, 1.0)]);
        assert_eq!(t.cumulative_movement(), vec![1.0, 3.0, 3.5]);
        assert_eq!(t.overflow_series(), vec![5.0, 3.0, 1.0]);
        assert_eq!(t.total_movement(), 3.5);
    }

    #[test]
    fn measured_checkpoints_filters() {
        let mut t = Telemetry::new();
        t.push(rec(0, 1.0, 5.0));
        t.push(StepRecord {
            step: 1,
            movement: 1.0,
            computed_overflow: 4.0,
            max_density: 1.5,
            measured_overflow: Some(4.2),
        });
        assert_eq!(t.measured_checkpoints(), vec![(1, 4.2)]);
    }
}
