//! The control-plane server: a readiness-driven front-end feeding a
//! fair queue feeding execution workers.
//!
//! One front-end thread owns every connection. It multiplexes them
//! through a [`Readiness`] implementation (epoll on Linux, a portable
//! scanner elsewhere and in tests), assembling frames incrementally
//! with [`FrameAssembler`] so a thousand idle connections cost a
//! thousand small buffers, not a thousand blocked threads. Decoded
//! work is admitted to the [`FairQueue`] per tenant; cache-protocol
//! frames (`PutDesign`, cache-miss `NeedDesign` answers) and stats are
//! answered inline on the front-end thread, since they never run a
//! diffusion.
//!
//! Worker threads pop jobs in deficit-round-robin order and execute
//! them either in process ([`dpm_serve::execute_job`]) or across a
//! shard fleet ([`ShardRouter`]) selected per job from the
//! [`BackendRegistry`]. Replies travel back to the front-end through
//! an outbox; the front-end writes them on the owning connection with
//! the codec version that connection last spoke, so v2 clients of a
//! v3 control plane only ever read v2 headers.

use std::collections::HashMap;
use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::os::fd::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use dpm_diffusion::{DiffusionObserver, SpanObserver, StepEvent};
use dpm_geom::Point;
use dpm_obs::{labeled, normalize_spans, rebase_spans, SpanRecorder, TraceIdGen};
use dpm_serve::delta::decode_delta_request;
use dpm_serve::wire::{
    decode_design_bytes, decode_put_design, decode_request, encode_design_ack, encode_error,
    encode_need_design, encode_progress, encode_response, encode_stats, fnv1a64,
    write_frame_versioned, DesignAck, ErrorCode, ErrorReply, Frame, FrameAssembler, FrameKind,
    JobRequest, JobResponse, NeedDesign, ProgressUpdate, WireError, DEFAULT_MAX_FRAME_LEN,
};
use dpm_serve::{
    execute_job, ShardRouter, ShardRouterConfig, VolRouteError, VolRouter, VolRouterConfig,
};

use crate::cache::{CacheStats, CachedDesign, DesignCache};
use crate::fair::{AdmitError, FairQueue, TenantSpec};
use crate::metrics::CtlMetrics;
use crate::poll::{default_readiness, Readiness};
use crate::registry::{BackendRegistry, RegistrySnapshot};

/// How admitted jobs are executed.
pub enum ExecMode {
    /// Run the diffusion on the worker thread itself.
    InProcess,
    /// Fan each job out across a shard fleet, selecting backends from
    /// a health-checked registry per job.
    Sharded {
        /// Requested shard count K.
        shards: usize,
        /// Halo width in bins.
        halo_bins: usize,
        /// Upper bound on halo-exchange rounds.
        max_halo_rounds: usize,
        /// Primaries and warm spares.
        registry: BackendRegistry,
    },
    /// Fan each volumetric job out across z-slab backends through a
    /// [`VolRouter`], selecting backends from a health-checked registry
    /// per job. Planar jobs (no volumetric extension) fall back to
    /// running on the worker thread.
    Volumetric {
        /// Requested slab count K.
        slabs: usize,
        /// Ghost tiers shipped on each side of a slab's owned range.
        halo_layers: usize,
        /// Primaries (the z-slab router has no degraded mode, so warm
        /// spares are ignored).
        registry: BackendRegistry,
    },
}

/// Control-plane configuration.
pub struct CtlConfig {
    /// Execution worker threads.
    pub workers: usize,
    /// Largest request frame accepted, bytes.
    pub max_frame_len: usize,
    /// Design-cache byte budget.
    pub cache_bytes: usize,
    /// Deadline applied to requests that carry `deadline_ms: 0`.
    /// `0` means no deadline.
    pub default_deadline_ms: u32,
    /// Readiness-wait granularity, milliseconds. This bounds how stale
    /// the front-end's view of worker output can get, so keep it small.
    pub wait_ms: i32,
    /// Admission contracts, one per tenant. Wire-v2 requests (which
    /// carry no tenant) are billed to the first tenant.
    pub tenants: Vec<TenantSpec>,
    /// How jobs execute.
    pub exec: ExecMode,
}

impl Default for CtlConfig {
    fn default() -> Self {
        Self {
            workers: 2,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
            cache_bytes: 64 << 20,
            default_deadline_ms: 0,
            wait_ms: 5,
            tenants: vec![TenantSpec::new("default", 1, 256)],
            exec: ExecMode::InProcess,
        }
    }
}

/// One admitted job: where it came from, how to answer, what to run.
struct Job {
    conn: u64,
    version: u16,
    arrived: Instant,
    deadline: Option<Instant>,
    req: JobRequest,
}

enum Exec {
    InProcess,
    Sharded {
        shards: usize,
        halo_bins: usize,
        max_halo_rounds: usize,
        registry: Mutex<BackendRegistry>,
    },
    Volumetric {
        slabs: usize,
        halo_layers: usize,
        registry: Mutex<BackendRegistry>,
    },
}

/// How many recent spans the control plane's shared recorder retains.
const CTL_SPAN_CAPACITY: usize = 512;

/// Per-site salts for deterministic span-id minting. Each traced hop
/// seeds its own generator from the inherited span id; distinct salts
/// keep the front-end's admission/cache spans, the worker's job spans
/// and downstream hops on disjoint id streams.
const CTL_ADMIT_SALT: u64 = 0xC7_1A_D0_17_AD_31_75_01;
const CTL_CACHE_SALT: u64 = 0xC7_1C_AC_8E_5E_ED_02_02;
const CTL_JOB_SALT: u64 = 0xC7_1E_4E_C5_EE_D0_03_03;

struct Shared {
    queue: FairQueue<Job>,
    cache: Mutex<DesignCache>,
    /// Frames produced off the front-end thread, drained by it every
    /// readiness wait: `(connection token, encoded frame bytes)`.
    outbox: Mutex<Vec<(u64, Vec<u8>)>>,
    metrics: CtlMetrics,
    /// Shared span ring for traced requests: the front-end records
    /// admission and cache spans into it, workers record queue-wait and
    /// execution spans, and the worker drains a trace's spans into the
    /// response when its job completes.
    spans: SpanRecorder,
    exec: Exec,
    stop: AtomicBool,
    default_deadline_ms: u32,
}

impl Shared {
    fn send(&self, conn: u64, version: u16, kind: FrameKind, payload: &[u8]) {
        let mut buf = Vec::with_capacity(11 + payload.len());
        write_frame_versioned(&mut buf, version, kind, payload)
            .expect("writing to a Vec cannot fail");
        self.outbox.lock().unwrap().push((conn, buf));
    }

    fn send_error(&self, conn: u64, version: u16, err: &ErrorReply) {
        self.send(conn, version, FrameKind::Error, &encode_error(err));
    }
}

/// A running control plane. Dropping it (or calling
/// [`shutdown`](Self::shutdown)) stops admission, drains the queue and
/// joins every thread.
pub struct CtlServer {
    addr: SocketAddr,
    shared: Arc<Shared>,
    front: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl CtlServer {
    /// Starts a control plane on an ephemeral localhost port with the
    /// platform's best [`Readiness`].
    ///
    /// # Errors
    ///
    /// Returns bind or readiness-setup errors.
    pub fn start(cfg: CtlConfig) -> io::Result<Self> {
        Self::start_with(cfg, default_readiness()?)
    }

    /// Starts a control plane with an explicit readiness source — how
    /// tests drive the event loop with the deterministic scanner.
    ///
    /// # Errors
    ///
    /// Returns bind errors.
    pub fn start_with(cfg: CtlConfig, readiness: Box<dyn Readiness>) -> io::Result<Self> {
        assert!(!cfg.tenants.is_empty(), "at least one tenant required");
        let listener = TcpListener::bind(("127.0.0.1", 0))?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let tenant_names: Vec<String> = cfg.tenants.iter().map(|t| t.name.clone()).collect();
        let exec = match cfg.exec {
            ExecMode::InProcess => Exec::InProcess,
            ExecMode::Sharded {
                shards,
                halo_bins,
                max_halo_rounds,
                registry,
            } => Exec::Sharded {
                shards,
                halo_bins,
                max_halo_rounds,
                registry: Mutex::new(registry),
            },
            ExecMode::Volumetric {
                slabs,
                halo_layers,
                registry,
            } => Exec::Volumetric {
                slabs,
                halo_layers,
                registry: Mutex::new(registry),
            },
        };
        let metrics = CtlMetrics::new(&tenant_names);
        let spans = SpanRecorder::with_registry(CTL_SPAN_CAPACITY, metrics.registry());
        let shared = Arc::new(Shared {
            queue: FairQueue::new(&cfg.tenants),
            cache: Mutex::new(DesignCache::new(cfg.cache_bytes)),
            outbox: Mutex::new(Vec::new()),
            metrics,
            spans,
            exec,
            stop: AtomicBool::new(false),
            default_deadline_ms: cfg.default_deadline_ms,
        });
        let workers = (0..cfg.workers.max(1))
            .map(|i| {
                let s = Arc::clone(&shared);
                thread::Builder::new()
                    .name(format!("ctl-worker-{i}"))
                    .spawn(move || worker_loop(&s))
                    .expect("spawn ctl worker")
            })
            .collect();
        let front = {
            let s = Arc::clone(&shared);
            let (max_frame_len, wait_ms) = (cfg.max_frame_len, cfg.wait_ms.max(1));
            thread::Builder::new()
                .name("ctl-front".into())
                .spawn(move || front_loop(&s, &listener, readiness, max_frame_len, wait_ms))
                .expect("spawn ctl front-end")
        };
        Ok(Self {
            addr,
            shared,
            front: Some(front),
            workers,
        })
    }

    /// The address clients connect to.
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The control plane's instruments.
    pub fn metrics(&self) -> &CtlMetrics {
        &self.shared.metrics
    }

    /// Design-cache counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.lock().unwrap().stats()
    }

    /// Backend-registry state, when running sharded or volumetric.
    pub fn registry_snapshot(&self) -> Option<RegistrySnapshot> {
        match &self.shared.exec {
            Exec::Sharded { registry, .. } | Exec::Volumetric { registry, .. } => {
                Some(registry.lock().unwrap().snapshot())
            }
            Exec::InProcess => None,
        }
    }

    /// Stops admission, drains in-flight work and joins all threads.
    pub fn shutdown(self) {
        drop(self);
    }
}

impl Drop for CtlServer {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        if let Some(h) = self.front.take() {
            let _ = h.join();
        }
    }
}

// ---------------------------------------------------------------------------
// Front-end event loop.
// ---------------------------------------------------------------------------

struct Conn {
    stream: TcpStream,
    asm: FrameAssembler,
    out: Vec<u8>,
    out_pos: usize,
    /// Codec version of the last frame this connection sent; every
    /// reply is stamped with it.
    version: u16,
    /// Close once the outbound buffer drains (post-error courtesy).
    closing: bool,
    /// Close now (EOF or I/O error).
    dead: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            asm: FrameAssembler::new(),
            out: Vec::new(),
            out_pos: 0,
            version: dpm_serve::wire::VERSION,
            closing: false,
            dead: false,
        }
    }

    fn push_frame(&mut self, kind: FrameKind, payload: &[u8]) {
        write_frame_versioned(&mut self.out, self.version, kind, payload)
            .expect("writing to a Vec cannot fail");
    }

    fn flush(&mut self) {
        while self.out_pos < self.out.len() {
            match self.stream.write(&self.out[self.out_pos..]) {
                Ok(0) => {
                    self.dead = true;
                    break;
                }
                Ok(n) => self.out_pos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.dead = true;
                    break;
                }
            }
        }
        if self.out_pos == self.out.len() && self.out_pos > 0 {
            self.out.clear();
            self.out_pos = 0;
        }
    }

    fn done(&self) -> bool {
        self.dead || (self.closing && self.out_pos == self.out.len())
    }
}

const LISTENER_TOKEN: u64 = 0;

fn front_loop(
    shared: &Shared,
    listener: &TcpListener,
    mut readiness: Box<dyn Readiness>,
    max_frame_len: usize,
    wait_ms: i32,
) {
    let _ = readiness.register(LISTENER_TOKEN, listener.as_raw_fd());
    let mut conns: HashMap<u64, Conn> = HashMap::new();
    let mut next_token: u64 = 1;
    let mut ready: Vec<u64> = Vec::new();
    while !shared.stop.load(Ordering::Relaxed) {
        if readiness.wait(wait_ms, &mut ready).is_err() {
            ready.clear();
        }
        // Accept every pending connection. Checked unconditionally —
        // cheap when nothing is pending, and readiness back-ends that
        // coalesce events then cannot strand a connection.
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nodelay(true);
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let token = next_token;
                    next_token += 1;
                    let _ = readiness.register(token, stream.as_raw_fd());
                    conns.insert(token, Conn::new(stream));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => break,
            }
        }
        for &token in ready.iter().filter(|&&t| t != LISTENER_TOKEN) {
            if let Some(conn) = conns.get_mut(&token) {
                service_conn(shared, token, conn, max_frame_len);
            }
        }
        // Hand worker output to the owning connections.
        let produced = std::mem::take(&mut *shared.outbox.lock().unwrap());
        for (token, bytes) in produced {
            if let Some(conn) = conns.get_mut(&token) {
                conn.out.extend_from_slice(&bytes);
            }
        }
        conns.retain(|&token, conn| {
            conn.flush();
            let keep = !conn.done();
            if !keep {
                let _ = readiness.deregister(token, conn.stream.as_raw_fd());
            }
            keep
        });
    }
}

/// Reads everything currently available on one connection and
/// dispatches every complete frame.
fn service_conn(shared: &Shared, token: u64, conn: &mut Conn, max_frame_len: usize) {
    let mut buf = [0u8; 16 * 1024];
    loop {
        match conn.stream.read(&mut buf) {
            Ok(0) => {
                conn.dead = true;
                break;
            }
            Ok(n) => conn.asm.push(&buf[..n]),
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => {
                conn.dead = true;
                break;
            }
        }
    }
    loop {
        match conn.asm.next_frame(max_frame_len) {
            Ok(Some(frame)) => dispatch_frame(shared, token, conn, &frame),
            Ok(None) => break,
            Err(e) => {
                // The stream cannot be re-synchronized after a framing
                // error: answer once, then close.
                shared.metrics.malformed.inc();
                conn.push_frame(
                    FrameKind::Error,
                    &encode_error(&ErrorReply {
                        id: 0,
                        code: ErrorCode::Malformed,
                        steps: 0,
                        rounds: 0,
                        message: e.to_string(),
                    }),
                );
                conn.closing = true;
                break;
            }
        }
    }
}

fn dispatch_frame(shared: &Shared, token: u64, conn: &mut Conn, frame: &Frame) {
    conn.version = frame.version;
    shared.metrics.received.inc();
    match frame.kind {
        FrameKind::StatsRequest => {
            let snap = shared.metrics.stats_snapshot(shared.queue.len() as u64);
            conn.push_frame(FrameKind::Stats, &encode_stats(&snap));
        }
        FrameKind::Request => match decode_request(&frame.payload) {
            Ok(req) => {
                // v2 requests carry no tenant; they are billed to the
                // first configured tenant.
                admit(shared, token, conn, 0, req);
            }
            Err(e) => reject_decode(shared, conn, e),
        },
        FrameKind::PutDesign => match decode_put_design(&frame.payload) {
            Ok(put) => handle_put_design(shared, conn, &put.tenant, put.id, &put.bytes),
            Err(e) => reject_decode(shared, conn, e),
        },
        FrameKind::DeltaRequest => match decode_delta_request(&frame.payload) {
            Ok(dreq) => handle_delta(shared, token, conn, dreq),
            Err(e) => reject_decode(shared, conn, e),
        },
        _ => {
            shared.metrics.malformed.inc();
            conn.push_frame(
                FrameKind::Error,
                &encode_error(&ErrorReply {
                    id: 0,
                    code: ErrorCode::Malformed,
                    steps: 0,
                    rounds: 0,
                    message: format!("{:?} is not a request frame", frame.kind),
                }),
            );
        }
    }
}

fn reject_decode(shared: &Shared, conn: &mut Conn, e: WireError) {
    shared.metrics.malformed.inc();
    conn.push_frame(
        FrameKind::Error,
        &encode_error(&ErrorReply {
            id: 0,
            code: ErrorCode::Malformed,
            steps: 0,
            rounds: 0,
            message: e.to_string(),
        }),
    );
}

fn reject(conn: &mut Conn, id: u64, code: ErrorCode, message: String) {
    conn.push_frame(
        FrameKind::Error,
        &encode_error(&ErrorReply {
            id,
            code,
            steps: 0,
            rounds: 0,
            message,
        }),
    );
}

fn handle_put_design(shared: &Shared, conn: &mut Conn, tenant: &str, id: u64, bytes: &[u8]) {
    if shared.queue.tenant_index(tenant).is_none() {
        shared.metrics.malformed.inc();
        reject(
            conn,
            id,
            ErrorCode::Malformed,
            format!("unknown tenant {tenant:?}"),
        );
        return;
    }
    let hash = fnv1a64(bytes);
    let (netlist, die, placement) = match decode_design_bytes(bytes) {
        Ok(parts) => parts,
        Err(e) => {
            shared.metrics.malformed.inc();
            reject(conn, id, ErrorCode::Malformed, e.to_string());
            return;
        }
    };
    let design = Arc::new(CachedDesign {
        netlist,
        die,
        placement,
    });
    let mut cache = shared.cache.lock().unwrap();
    let outcome = cache.insert(hash, bytes.len(), design);
    let resident_bytes = cache.stats().resident_bytes;
    drop(cache);
    shared.metrics.put_designs.inc();
    shared
        .metrics
        .cache_evictions
        .add(u64::from(outcome.evicted));
    conn.push_frame(
        FrameKind::DesignAck,
        &encode_design_ack(&DesignAck {
            id,
            hash,
            cached: outcome.cached,
            resident_bytes,
            evicted: outcome.evicted,
        }),
    );
}

fn handle_delta(shared: &Shared, token: u64, conn: &mut Conn, dreq: dpm_serve::DeltaJobRequest) {
    shared.metrics.delta_requests.inc();
    let Some(tenant_idx) = shared.queue.tenant_index(&dreq.tenant) else {
        shared.metrics.malformed.inc();
        reject(
            conn,
            dreq.id,
            ErrorCode::Malformed,
            format!("unknown tenant {:?}", dreq.tenant),
        );
        return;
    };
    let lookup_start = dreq.trace.map(|_| shared.spans.now_ns());
    let baseline = shared.cache.lock().unwrap().get(dreq.baseline);
    // One span per design-cache decision, named for its outcome: a
    // `cache.miss` subtree ends at the NeedDesign round trip it causes.
    if let (Some(ctx), Some(start)) = (dreq.trace, lookup_start) {
        // The outcome folds into the seed: a miss and the hit after the
        // client's re-send inherit the same context, and must not mint
        // the same span id.
        let seed = ctx.span_id ^ CTL_CACHE_SALT ^ u64::from(baseline.is_some());
        let cache_ctx = TraceIdGen::seeded(seed).child_of(&ctx);
        let name = if baseline.is_some() {
            "cache.hit"
        } else {
            "cache.miss"
        };
        shared
            .spans
            .record_traced(name, start, shared.spans.now_ns(), cache_ctx);
    }
    let Some(design) = baseline else {
        shared.metrics.need_design.inc();
        conn.push_frame(
            FrameKind::NeedDesign,
            &encode_need_design(&NeedDesign {
                id: dreq.id,
                hash: dreq.baseline,
            }),
        );
        return;
    };
    shared.metrics.cache_hits.inc();
    match dreq.to_job_request(&design.netlist, &design.die, &design.placement) {
        Ok(req) => admit(shared, token, conn, tenant_idx, req),
        Err(e) => {
            shared.metrics.malformed.inc();
            reject(conn, dreq.id, ErrorCode::Malformed, e.to_string());
        }
    }
}

fn admit(shared: &Shared, token: u64, conn: &mut Conn, tenant_idx: usize, req: JobRequest) {
    let id = req.id;
    let admit_start = req.trace.map(|_| shared.spans.now_ns());
    let deadline_ms = if req.deadline_ms == 0 {
        shared.default_deadline_ms
    } else {
        req.deadline_ms
    };
    let deadline =
        (deadline_ms > 0).then(|| Instant::now() + Duration::from_millis(u64::from(deadline_ms)));
    let trace = req.trace;
    let job = Job {
        conn: token,
        version: conn.version,
        arrived: Instant::now(),
        deadline,
        req,
    };
    // The admission span carries the tenant label — the root of the
    // tree this control plane grafts onto the client's trace context.
    // Recorded *before* the push: the moment the job is queued a worker
    // may pop, finish, and drain the trace, and a span recorded after
    // that drain would be orphaned.
    if let (Some(ctx), Some(start)) = (trace, admit_start) {
        let admit_ctx = TraceIdGen::seeded(ctx.span_id ^ CTL_ADMIT_SALT).child_of(&ctx);
        let tenant = shared.queue.tenant_name(tenant_idx);
        shared.spans.record_traced(
            &labeled("ctl.admit", &[("tenant", tenant)]),
            start,
            shared.spans.now_ns(),
            admit_ctx,
        );
    }
    let outcome = shared
        .queue
        .try_push(shared.queue.tenant_name(tenant_idx), job);
    if outcome.is_err() {
        // The job never ran, so nothing will drain this trace; drop its
        // spans instead of letting them sit in the ring.
        if let Some(ctx) = trace {
            drop(shared.spans.drain_trace(ctx.trace_id));
        }
    }
    match outcome {
        Ok(()) => shared.metrics.admitted.inc(),
        Err(AdmitError::QueueFull) => {
            shared.metrics.overloaded.inc();
            reject(conn, id, ErrorCode::Overloaded, "tenant queue full".into());
        }
        Err(AdmitError::UnknownTenant) => {
            shared.metrics.malformed.inc();
            reject(conn, id, ErrorCode::Malformed, "unknown tenant".into());
        }
        Err(AdmitError::Closed) => {
            shared.metrics.rejected_shutdown.inc();
            reject(
                conn,
                id,
                ErrorCode::ShuttingDown,
                "control plane is shutting down".into(),
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Workers.
// ---------------------------------------------------------------------------

/// Streams progress frames into the outbox every `stride` steps.
struct ProgressToOutbox<'a> {
    shared: &'a Shared,
    conn: u64,
    version: u16,
    id: u64,
    stride: u64,
    movement: f64,
}

impl DiffusionObserver for ProgressToOutbox<'_> {
    fn on_step(&mut self, event: &StepEvent<'_>) {
        if self.stride == 0 {
            return;
        }
        self.movement += event.record.movement;
        let completed = event.record.step as u64 + 1;
        if completed.is_multiple_of(self.stride) {
            let p = ProgressUpdate {
                id: self.id,
                step: completed,
                round: event.round as u64,
                overflow: event.record.computed_overflow,
                movement: self.movement,
                max_density: event.record.max_density,
            };
            self.shared.send(
                self.conn,
                self.version,
                FrameKind::Progress,
                &encode_progress(&p),
            );
            self.shared.metrics.progress_frames.inc();
        }
    }
}

fn movement_stats(before: &[Point], after: &[Point]) -> (f64, f64) {
    let mut total = 0.0f64;
    let mut max = 0.0f64;
    for (b, a) in before.iter().zip(after) {
        let d = ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
        total += d;
        max = max.max(d);
    }
    (total, max)
}

fn worker_loop(shared: &Shared) {
    while let Some((tenant_idx, job)) = shared.queue.pop_wait() {
        let queue_wait = job.arrived.elapsed();
        shared.metrics.queue_hist.record_duration(queue_wait);
        let Job {
            conn,
            version,
            arrived,
            deadline,
            mut req,
        } = job;
        let id = req.id;
        // Traced requests get a retroactive queue-wait span and an
        // execution context; downstream hops (routers, in-process
        // kernel bridges) inherit the execution context so their spans
        // nest under `ctl.execute`, not directly under the root.
        let root = req.trace;
        let job_ctx = root.map(|ctx| {
            let mut ids = TraceIdGen::seeded(ctx.span_id ^ CTL_JOB_SALT);
            let now = shared.spans.now_ns();
            shared.spans.record_traced(
                "queue.wait",
                now.saturating_sub(queue_wait.as_nanos() as u64),
                now,
                ids.child_of(&ctx),
            );
            ids.child_of(&ctx)
        });
        req.trace = job_ctx;
        let outcome = if let Err(e) = req.config.validate() {
            shared.metrics.invalid_config.inc();
            Err(ErrorReply {
                id,
                code: ErrorCode::InvalidConfig,
                steps: 0,
                rounds: 0,
                message: e.to_string(),
            })
        } else {
            match &shared.exec {
                Exec::InProcess => run_in_process(shared, conn, version, deadline, &req),
                Exec::Sharded {
                    shards,
                    halo_bins,
                    max_halo_rounds,
                    registry,
                } => run_sharded(
                    shared,
                    registry,
                    *shards,
                    *halo_bins,
                    *max_halo_rounds,
                    &req,
                ),
                Exec::Volumetric {
                    slabs,
                    halo_layers,
                    registry,
                } => {
                    if req.vol.is_some() {
                        run_volumetric(shared, registry, *slabs, *halo_layers, &req)
                    } else {
                        run_in_process(shared, conn, version, deadline, &req)
                    }
                }
            }
        };
        shared.metrics.served.inc();
        let e2e = arrived.elapsed();
        shared.metrics.e2e_hist.record_duration(e2e);
        shared.metrics.tenant(tenant_idx).e2e.record_duration(e2e);
        match outcome {
            Ok(mut resp) => {
                resp.queue_ns = queue_wait.as_nanos() as u64;
                // Stitch the trace: the control plane's own spans
                // (admission, cache, queue wait, execution) plus the
                // tree a router or kernel bridge already put in
                // `resp.spans`, normalized for the client to re-base.
                if let Some(ctx) = root {
                    let mut spans = shared.spans.drain_trace(ctx.trace_id);
                    spans.append(&mut resp.spans);
                    normalize_spans(&mut spans);
                    resp.spans = spans;
                }
                shared.metrics.service_hist.record(resp.service_ns);
                shared.metrics.tenant(tenant_idx).jobs_ok.inc();
                shared.send(conn, version, FrameKind::Response, &encode_response(&resp));
            }
            Err(err) => {
                // Error replies carry no span export; drop the trace's
                // spans so they cannot leak into a later drain.
                if let Some(ctx) = root {
                    drop(shared.spans.drain_trace(ctx.trace_id));
                }
                if err.code == ErrorCode::DeadlineExpired {
                    shared.metrics.deadline_expired.inc();
                }
                shared.metrics.tenant(tenant_idx).jobs_err.inc();
                shared.send_error(conn, version, &err);
            }
        }
    }
}

fn run_in_process(
    shared: &Shared,
    conn: u64,
    version: u16,
    deadline: Option<Instant>,
    req: &JobRequest,
) -> Result<JobResponse, ErrorReply> {
    let mut placement = req.placement.clone();
    let should_stop = move || deadline.is_some_and(|d| Instant::now() >= d);
    let mut observer = ProgressToOutbox {
        shared,
        conn,
        version,
        id: req.id,
        stride: u64::from(req.progress_stride),
        movement: 0.0,
    };
    let t0 = Instant::now();
    let exec_start = req.trace.map(|_| shared.spans.now_ns());
    let result = match req.trace {
        // Traced: thread a kernel-span bridge in front of the progress
        // observer so per-kernel spans land in the front-end's recorder
        // under the execution context.
        Some(ctx) => {
            let mut bridge =
                SpanObserver::new(&shared.spans, ctx, ctx.span_id).with_inner(&mut observer);
            execute_job(
                req.kind,
                &req.config,
                &req.netlist,
                &req.die,
                &mut placement,
                &should_stop,
                &mut bridge,
            )
        }
        None => execute_job(
            req.kind,
            &req.config,
            &req.netlist,
            &req.die,
            &mut placement,
            &should_stop,
            &mut observer,
        ),
    };
    let service_ns = t0.elapsed().as_nanos() as u64;
    if let (Some(start), Some(ctx)) = (exec_start, req.trace) {
        shared
            .spans
            .record_traced("ctl.execute", start, shared.spans.now_ns(), ctx);
    }
    if result.cancelled {
        return Err(ErrorReply {
            id: req.id,
            code: ErrorCode::DeadlineExpired,
            steps: result.steps as u64,
            rounds: result.rounds as u64,
            message: "deadline expired mid-run".into(),
        });
    }
    let (total_movement, max_movement) =
        movement_stats(req.placement.as_slice(), placement.as_slice());
    Ok(JobResponse {
        id: req.id,
        converged: result.converged,
        steps: result.steps as u64,
        rounds: result.rounds as u64,
        total_movement,
        max_movement,
        queue_ns: 0,
        service_ns,
        positions: placement.as_slice().to_vec(),
        vol: None,
        spans: Vec::new(),
    })
}

fn run_sharded(
    shared: &Shared,
    registry: &Mutex<BackendRegistry>,
    shards: usize,
    halo_bins: usize,
    max_halo_rounds: usize,
    req: &JobRequest,
) -> Result<JobResponse, ErrorReply> {
    let (primaries, spares) = {
        let mut reg = registry.lock().unwrap();
        let before = reg.snapshot().replacements;
        let selected = reg.select();
        shared
            .metrics
            .replacements
            .add(reg.snapshot().replacements - before);
        selected
    };
    let router = ShardRouter::with_spares(
        ShardRouterConfig {
            shards,
            halo_bins,
            max_halo_rounds,
            encoding: dpm_serve::wire::PayloadEncoding::Binary,
        },
        primaries,
        spares,
    );
    let t0 = Instant::now();
    let exec_start = req.trace.map(|_| shared.spans.now_ns());
    let reply = router.route(req);
    let service_ns = t0.elapsed().as_nanos() as u64;
    if !reply.failovers.is_empty() {
        shared.metrics.failovers.add(reply.failovers.len() as u64);
        let mut reg = registry.lock().unwrap();
        for f in &reply.failovers {
            reg.report_failure(f.from);
        }
    }
    if let Some(out) = reply.outcomes.iter().find(|o| o.error.is_some()) {
        return Err(ErrorReply {
            id: req.id,
            code: ErrorCode::Internal,
            steps: reply.response.steps,
            rounds: reply.response.rounds,
            message: format!(
                "shard {} failed with no spare left: {}",
                out.shard,
                out.error.as_deref().unwrap_or("unknown")
            ),
        });
    }
    let mut resp = reply.response;
    resp.id = req.id;
    resp.service_ns = service_ns;
    if let (Some(start), Some(ctx)) = (exec_start, req.trace) {
        // The router normalized its span tree to start at zero; re-base
        // it onto this front-end's clock so it interleaves correctly
        // with the admission and queue spans drained in the worker.
        shared
            .spans
            .record_traced("ctl.execute", start, shared.spans.now_ns(), ctx);
        rebase_spans(&mut resp.spans, start);
    }
    Ok(resp)
}

fn run_volumetric(
    shared: &Shared,
    registry: &Mutex<BackendRegistry>,
    slabs: usize,
    halo_layers: usize,
    req: &JobRequest,
) -> Result<JobResponse, ErrorReply> {
    let (primaries, _spares) = {
        let mut reg = registry.lock().unwrap();
        let before = reg.snapshot().replacements;
        let selected = reg.select();
        shared
            .metrics
            .replacements
            .add(reg.snapshot().replacements - before);
        selected
    };
    let router = VolRouter::new(
        VolRouterConfig {
            slabs,
            halo_layers,
            encoding: dpm_serve::wire::PayloadEncoding::Binary,
        },
        primaries.clone(),
    );
    let t0 = Instant::now();
    let exec_start = req.trace.map(|_| shared.spans.now_ns());
    let reply = router.route(req);
    let service_ns = t0.elapsed().as_nanos() as u64;
    let reply = match reply {
        Ok(reply) => reply,
        Err(err) => {
            // Exact volumetric stitching cannot degrade: a failed slab
            // fails the job. Shape errors are the client's fault; a
            // dead backend is ours.
            let code = match &err {
                VolRouteError::Backend { .. } => ErrorCode::Internal,
                VolRouteError::NotVolumetric
                | VolRouteError::NotGlobal
                | VolRouteError::SpectralUnsupported => ErrorCode::InvalidConfig,
                VolRouteError::BadExtension(_) => ErrorCode::Malformed,
            };
            if let VolRouteError::Backend { slab, .. } = &err {
                // Slab `i` ran on backend `i % primaries.len()`.
                shared.metrics.failovers.inc();
                let backend = primaries[slab % primaries.len()];
                registry.lock().unwrap().report_failure(backend);
            }
            return Err(ErrorReply {
                id: req.id,
                code,
                steps: 0,
                rounds: 0,
                message: err.to_string(),
            });
        }
    };
    let mut resp = reply.response;
    resp.id = req.id;
    resp.service_ns = service_ns;
    if let (Some(start), Some(ctx)) = (exec_start, req.trace) {
        shared
            .spans
            .record_traced("ctl.execute", start, shared.spans.now_ns(), ctx);
        rebase_spans(&mut resp.spans, start);
    }
    Ok(resp)
}
