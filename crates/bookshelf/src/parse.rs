//! Parsers for the Bookshelf file family.

use std::error::Error;
use std::fmt;

/// Errors produced while parsing Bookshelf files.
#[derive(Debug, Clone, PartialEq)]
pub enum ParseBookshelfError {
    /// A line could not be interpreted.
    Malformed {
        /// Which file kind was being parsed (`nodes`, `nets`, ...).
        file: &'static str,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        message: String,
    },
    /// A net or placement entry references an undeclared node.
    UnknownNode {
        /// The referenced name.
        name: String,
    },
    /// The `.scl` file declared no rows.
    NoRows,
    /// The `.scl` rows describe a degenerate die (non-finite or
    /// non-positive extents, or a core shorter than one row).
    DegenerateRows {
        /// Description of the bad geometry.
        message: String,
    },
    /// The assembled netlist failed validation.
    InvalidNetlist {
        /// Underlying validation message.
        message: String,
    },
}

impl fmt::Display for ParseBookshelfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBookshelfError::Malformed {
                file,
                line,
                message,
            } => {
                write!(f, "malformed .{file} line {line}: {message}")
            }
            ParseBookshelfError::UnknownNode { name } => {
                write!(f, "reference to undeclared node '{name}'")
            }
            ParseBookshelfError::NoRows => write!(f, "scl file declares no rows"),
            ParseBookshelfError::DegenerateRows { message } => {
                write!(f, "scl rows describe a degenerate die: {message}")
            }
            ParseBookshelfError::InvalidNetlist { message } => {
                write!(f, "netlist failed validation: {message}")
            }
        }
    }
}

impl Error for ParseBookshelfError {}

/// One node (cell/terminal) from a `.nodes` file.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeRecord {
    /// Instance name.
    pub name: String,
    /// Width.
    pub width: f64,
    /// Height.
    pub height: f64,
    /// `true` for `terminal` (fixed) nodes.
    pub terminal: bool,
}

/// One pin within a [`NetRecord`].
#[derive(Debug, Clone, PartialEq)]
pub struct PinRecord {
    /// Node the pin sits on.
    pub node: String,
    /// `'I'`, `'O'`, or `'B'`.
    pub dir: char,
    /// X offset from the node *center*.
    pub dx: f64,
    /// Y offset from the node *center*.
    pub dy: f64,
}

/// One net from a `.nets` file.
#[derive(Debug, Clone, PartialEq)]
pub struct NetRecord {
    /// Net name.
    pub name: String,
    /// Its pins.
    pub pins: Vec<PinRecord>,
}

/// One placement entry from a `.pl` file.
#[derive(Debug, Clone, PartialEq)]
pub struct PlRecord {
    /// Node name.
    pub node: String,
    /// Lower-left x.
    pub x: f64,
    /// Lower-left y.
    pub y: f64,
    /// `true` when suffixed `/FIXED`.
    pub fixed: bool,
}

/// One core row from a `.scl` file.
#[derive(Debug, Clone, PartialEq)]
pub struct SclRow {
    /// Lower edge y.
    pub coordinate: f64,
    /// Row height.
    pub height: f64,
    /// Left end x.
    pub origin_x: f64,
    /// Row width (`NumSites × Sitespacing`).
    pub width: f64,
}

/// Lines that carry content: skips blanks, `#` comments, and the
/// `UCLA ...` header.
fn content_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines().enumerate().filter_map(|(i, raw)| {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with("UCLA") {
            None
        } else {
            Some((i + 1, line))
        }
    })
}

fn malformed(file: &'static str, line: usize, message: impl Into<String>) -> ParseBookshelfError {
    ParseBookshelfError::Malformed {
        file,
        line,
        message: message.into(),
    }
}

/// Parses a `.nodes` file.
///
/// # Errors
///
/// Returns [`ParseBookshelfError::Malformed`] on unparseable lines.
///
/// # Examples
///
/// ```
/// let text = "UCLA nodes 1.0\nNumNodes : 2\nNumTerminals : 1\n a 4 12\n p 1 1 terminal\n";
/// let nodes = dpm_bookshelf::parse_nodes(text)?;
/// assert_eq!(nodes.len(), 2);
/// assert!(nodes[1].terminal);
/// # Ok::<(), dpm_bookshelf::ParseBookshelfError>(())
/// ```
pub fn parse_nodes(text: &str) -> Result<Vec<NodeRecord>, ParseBookshelfError> {
    let mut out = Vec::new();
    for (lineno, line) in content_lines(text) {
        if line.starts_with("NumNodes") || line.starts_with("NumTerminals") {
            continue;
        }
        let mut it = line.split_whitespace();
        let name = it
            .next()
            .ok_or_else(|| malformed("nodes", lineno, "missing name"))?;
        let width: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| malformed("nodes", lineno, "bad width"))?;
        let height: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| malformed("nodes", lineno, "bad height"))?;
        let terminal = it
            .next()
            .map(|t| t.eq_ignore_ascii_case("terminal"))
            .unwrap_or(false);
        out.push(NodeRecord {
            name: name.to_string(),
            width,
            height,
            terminal,
        });
    }
    Ok(out)
}

/// Parses a `.nets` file.
///
/// # Errors
///
/// Returns [`ParseBookshelfError::Malformed`] on unparseable lines or a
/// pin outside any `NetDegree` block.
pub fn parse_nets(text: &str) -> Result<Vec<NetRecord>, ParseBookshelfError> {
    let mut out: Vec<NetRecord> = Vec::new();
    let mut counter = 0usize;
    for (lineno, line) in content_lines(text) {
        if line.starts_with("NumNets") || line.starts_with("NumPins") {
            continue;
        }
        if let Some(rest) = line.strip_prefix("NetDegree") {
            // "NetDegree : 3  name" (name optional).
            let rest = rest.trim_start_matches([' ', ':']).trim();
            let mut it = rest.split_whitespace();
            let _degree = it.next();
            let name = it
                .next()
                .map(str::to_string)
                .unwrap_or_else(|| format!("net{counter}"));
            counter += 1;
            out.push(NetRecord {
                name,
                pins: Vec::new(),
            });
            continue;
        }
        // Pin line: "node I : dx dy" (offsets optional).
        let net = out
            .last_mut()
            .ok_or_else(|| malformed("nets", lineno, "pin before any NetDegree"))?;
        let mut it = line.split_whitespace();
        let node = it
            .next()
            .ok_or_else(|| malformed("nets", lineno, "missing node"))?;
        let dir = it
            .next()
            .and_then(|t| t.chars().next())
            .ok_or_else(|| malformed("nets", lineno, "missing direction"))?;
        let mut rest: Vec<&str> = it.filter(|&t| t != ":").collect();
        let dy = rest.pop().and_then(|t| t.parse().ok()).unwrap_or(0.0);
        let dx = rest.pop().and_then(|t| t.parse().ok()).unwrap_or(0.0);
        net.pins.push(PinRecord {
            node: node.to_string(),
            dir,
            dx,
            dy,
        });
    }
    Ok(out)
}

/// Parses a `.pl` file.
///
/// # Errors
///
/// Returns [`ParseBookshelfError::Malformed`] on unparseable lines.
pub fn parse_pl(text: &str) -> Result<Vec<PlRecord>, ParseBookshelfError> {
    let mut out = Vec::new();
    for (lineno, line) in content_lines(text) {
        let mut it = line.split_whitespace();
        let node = it
            .next()
            .ok_or_else(|| malformed("pl", lineno, "missing node"))?;
        let x: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| malformed("pl", lineno, "bad x"))?;
        let y: f64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| malformed("pl", lineno, "bad y"))?;
        let fixed = line.contains("/FIXED");
        out.push(PlRecord {
            node: node.to_string(),
            x,
            y,
            fixed,
        });
    }
    Ok(out)
}

/// Parses a `.scl` file into row records.
///
/// # Errors
///
/// Returns [`ParseBookshelfError::Malformed`] on unparseable attribute
/// lines.
pub fn parse_scl(text: &str) -> Result<Vec<SclRow>, ParseBookshelfError> {
    let mut out = Vec::new();
    let mut cur: Option<(f64, f64, f64, f64, f64)> = None; // coord, height, spacing, origin, sites
    for (lineno, line) in content_lines(text) {
        if line.starts_with("NumRows") {
            continue;
        }
        if line.starts_with("CoreRow") {
            cur = Some((0.0, 0.0, 1.0, 0.0, 0.0));
            continue;
        }
        if line.starts_with("End") {
            if let Some((coord, height, spacing, origin, sites)) = cur.take() {
                out.push(SclRow {
                    coordinate: coord,
                    height,
                    origin_x: origin,
                    width: sites * spacing,
                });
            }
            continue;
        }
        let Some(state) = cur.as_mut() else { continue };
        let value_after = |key: &str| -> Option<f64> {
            line.strip_prefix(key)
                .and_then(|r| r.trim_start_matches([' ', ':']).split_whitespace().next())
                .and_then(|t| t.parse().ok())
        };
        if line.starts_with("Coordinate") {
            state.0 = value_after("Coordinate")
                .ok_or_else(|| malformed("scl", lineno, "bad Coordinate"))?;
        } else if line.starts_with("Height") {
            state.1 =
                value_after("Height").ok_or_else(|| malformed("scl", lineno, "bad Height"))?;
        } else if line.starts_with("Sitespacing") {
            state.2 = value_after("Sitespacing")
                .ok_or_else(|| malformed("scl", lineno, "bad Sitespacing"))?;
        } else if line.starts_with("SubrowOrigin") {
            // "SubrowOrigin : 0  NumSites : 100"
            let mut nums = line
                .split_whitespace()
                .filter_map(|t| t.parse::<f64>().ok());
            state.3 = nums
                .next()
                .ok_or_else(|| malformed("scl", lineno, "bad SubrowOrigin"))?;
            state.4 = nums.next().unwrap_or(0.0);
        }
        // Sitewidth / Siteorient / Sitesymmetry: irrelevant to placement.
    }
    Ok(out)
}

/// Parses a `.aux` file into the listed file names.
///
/// # Errors
///
/// Returns [`ParseBookshelfError::Malformed`] if no file list is found.
///
/// # Examples
///
/// ```
/// let files = dpm_bookshelf::parse_aux("RowBasedPlacement : a.nodes a.nets a.pl a.scl")?;
/// assert_eq!(files, vec!["a.nodes", "a.nets", "a.pl", "a.scl"]);
/// # Ok::<(), dpm_bookshelf::ParseBookshelfError>(())
/// ```
pub fn parse_aux(text: &str) -> Result<Vec<String>, ParseBookshelfError> {
    match content_lines(text).next() {
        Some((lineno, line)) => match line.split_once(':') {
            Some((_, files)) => Ok(files.split_whitespace().map(str::to_string).collect()),
            None => Err(malformed("aux", lineno, "expected 'Kind : files...'")),
        },
        None => Err(malformed("aux", 1, "empty aux file")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nodes_parser_handles_terminals_and_comments() {
        let text = "UCLA nodes 1.0\n# generated\n\nNumNodes : 3\nNumTerminals : 1\n  a  4 12\n  b  6 12\n  pad0 1 1 terminal\n";
        let nodes = parse_nodes(text).expect("parses");
        assert_eq!(nodes.len(), 3);
        assert_eq!(
            nodes[0],
            NodeRecord {
                name: "a".into(),
                width: 4.0,
                height: 12.0,
                terminal: false
            }
        );
        assert!(nodes[2].terminal);
    }

    #[test]
    fn nodes_parser_rejects_garbage() {
        let err = parse_nodes("UCLA nodes 1.0\n a four 12\n").unwrap_err();
        assert!(matches!(
            err,
            ParseBookshelfError::Malformed { file: "nodes", .. }
        ));
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn nets_parser_reads_degree_blocks() {
        let text = "UCLA nets 1.0\nNumNets : 2\nNumPins : 4\nNetDegree : 2  alpha\n a O : 2.0 6.0\n b I : 0.0 6.0\nNetDegree : 2\n b O : 3 6\n a I : -2 0\n";
        let nets = parse_nets(text).expect("parses");
        assert_eq!(nets.len(), 2);
        assert_eq!(nets[0].name, "alpha");
        assert_eq!(nets[1].name, "net1");
        assert_eq!(
            nets[0].pins[0],
            PinRecord {
                node: "a".into(),
                dir: 'O',
                dx: 2.0,
                dy: 6.0
            }
        );
        assert_eq!(nets[1].pins[1].dx, -2.0);
    }

    #[test]
    fn nets_pin_without_offsets_defaults_to_center() {
        let text = "NetDegree : 1 n\n a I\n";
        let nets = parse_nets(text).expect("parses");
        assert_eq!(nets[0].pins[0].dx, 0.0);
        assert_eq!(nets[0].pins[0].dy, 0.0);
    }

    #[test]
    fn orphan_pin_is_an_error() {
        let err = parse_nets(" a I : 0 0\n").unwrap_err();
        assert!(matches!(
            err,
            ParseBookshelfError::Malformed { file: "nets", .. }
        ));
    }

    #[test]
    fn pl_parser_reads_positions_and_fixed() {
        let text = "UCLA pl 1.0\n a 12.5 24 : N\n pad0 0 0 : N /FIXED\n";
        let pl = parse_pl(text).expect("parses");
        assert_eq!(
            pl[0],
            PlRecord {
                node: "a".into(),
                x: 12.5,
                y: 24.0,
                fixed: false
            }
        );
        assert!(pl[1].fixed);
    }

    #[test]
    fn scl_parser_reads_rows() {
        let text = "UCLA scl 1.0\nNumRows : 2\nCoreRow Horizontal\n Coordinate : 0\n Height : 12\n Sitewidth : 1\n Sitespacing : 1\n SubrowOrigin : 5 NumSites : 90\nEnd\nCoreRow Horizontal\n Coordinate : 12\n Height : 12\n Sitespacing : 2\n SubrowOrigin : 0 NumSites : 50\nEnd\n";
        let rows = parse_scl(text).expect("parses");
        assert_eq!(rows.len(), 2);
        assert_eq!(
            rows[0],
            SclRow {
                coordinate: 0.0,
                height: 12.0,
                origin_x: 5.0,
                width: 90.0
            }
        );
        assert_eq!(rows[1].width, 100.0);
    }

    #[test]
    fn aux_parser() {
        let files = parse_aux("RowBasedPlacement :  x.nodes x.nets x.pl x.scl\n").expect("parses");
        assert_eq!(files.len(), 4);
        assert!(parse_aux("no colon here").is_err());
        assert!(parse_aux("").is_err());
    }
}
