//! `dpm-ctl` — a multi-tenant control plane over `dpm-serve`.
//!
//! The single [`Server`](dpm_serve::Server) answers one question: "run
//! this diffusion migration". A physical-synthesis fleet asks harder
//! ones: many tenants sharing one service, each replaying an ECO loop
//! against an almost-unchanged design, over thousands of mostly-idle
//! connections, against backends that sometimes die. This crate is
//! that layer, built from four parts:
//!
//! - [`DesignCache`][]: baselines keyed by FNV-1a
//!   content hash with deterministic byte-budget LRU eviction. A
//!   request naming an uncached baseline gets a typed
//!   [`NeedDesign`](dpm_serve::NeedDesign) frame; after one upload,
//!   every later request ships only an
//!   [`EcoDelta`](dpm_serve::EcoDelta) — bit-identical results to a
//!   full resend at a fraction of the bytes.
//! - [`FairQueue`][]: per-tenant bounded admission with
//!   deficit-round-robin service, so throughput is weight-proportional
//!   and a replay storm from one tenant cannot starve the rest.
//! - [`Readiness`]/[`CtlServer`]:
//!   a poll-based front-end multiplexing thousands of idle
//!   connections on one thread (epoll on Linux, a deterministic
//!   scanner in tests), with incremental frame assembly and
//!   per-connection version echo for wire-v2 clients.
//! - [`BackendRegistry`][]: health-checked
//!   primaries with warm spares; dead backends are replaced between
//!   jobs, and the shard router's intra-job failovers feed back in.
//!
//! Everything is std-only, deterministic where it matters (cache
//! eviction, fair-queue schedule), and speaks the same framed TCP
//! protocol as `dpm-serve`, so [`ServeClient`](dpm_serve::ServeClient)
//! works unchanged against a control plane.

pub mod cache;
pub mod fair;
pub mod front;
pub mod metrics;
pub mod poll;
pub mod registry;

pub use cache::{CacheStats, CachedDesign, DesignCache, InsertOutcome};
pub use fair::{AdmitError, FairQueue, TenantSpec};
pub use front::{CtlConfig, CtlServer, ExecMode};
pub use metrics::{CtlMetrics, TenantMetrics};
pub use poll::{default_readiness, Readiness, ScanReadiness};
pub use registry::{BackendRegistry, RegistrySnapshot};

#[cfg(target_os = "linux")]
pub use poll::EpollReadiness;
