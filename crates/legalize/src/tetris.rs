//! Tetris-style packing legalization (the `Capo`-like baseline).
//!
//! Hill's classic method (US patent 6,370,763, reference \[8\] of the
//! paper): sort all cells by x coordinate, then place them one by one at
//! the row position minimizing displacement given the rows' advancing
//! left-to-right frontiers. The paper guesses Capo's legalizer is "greedy
//! heuristics" of this family; Tetris exhibits exactly the behavior the
//! paper's Fig. 16 shows for Capo — large wholesale shifts that destroy
//! relative placement around congested regions.

use crate::occupancy::row_segments;
use crate::Legalizer;
use dpm_geom::{Point, Rect};
use dpm_netlist::Netlist;
use dpm_place::{Die, Placement};

/// The packing legalizer (`Capo`-like in the ISPD comparison tables).
///
/// # Examples
///
/// ```
/// use dpm_gen::{CircuitSpec, InflationSpec};
/// use dpm_legalize::{TetrisLegalizer, Legalizer};
///
/// let mut bench = CircuitSpec::small(13).generate();
/// bench.inflate(&InflationSpec::random_width(0.1, 1.6, 4));
/// let outcome = TetrisLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
/// assert!(outcome.is_legal);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TetrisLegalizer {
    _private: (),
}

impl TetrisLegalizer {
    /// Creates the legalizer.
    pub fn new() -> Self {
        Self::default()
    }
}

/// Per-row packing state: the index of the current segment and the
/// frontier x within it.
#[derive(Debug, Clone)]
struct RowFrontier {
    segments: Vec<(f64, f64)>,
    seg: usize,
    x: f64,
}

impl RowFrontier {
    fn new(segments: Vec<(f64, f64)>) -> Self {
        let x = segments.first().map(|&(s, _)| s).unwrap_or(0.0);
        Self {
            segments,
            seg: 0,
            x,
        }
    }

    /// Where a cell of width `w` would land, without committing.
    fn peek(&self, w: f64) -> Option<f64> {
        let mut seg = self.seg;
        let mut x = self.x;
        while seg < self.segments.len() {
            let (s, e) = self.segments[seg];
            let start = x.max(s);
            if e - start >= w - 1e-9 {
                return Some(start);
            }
            seg += 1;
            if seg < self.segments.len() {
                x = self.segments[seg].0;
            }
        }
        None
    }

    /// Commits a cell of width `w`, advancing the frontier.
    ///
    /// # Panics
    ///
    /// Panics if the cell does not fit (callers must [`peek`](Self::peek)
    /// first).
    fn place(&mut self, w: f64) -> f64 {
        loop {
            let (s, e) = self.segments[self.seg];
            let start = self.x.max(s);
            if e - start >= w - 1e-9 {
                self.x = start + w;
                return start;
            }
            self.seg += 1;
            self.x = self.segments[self.seg].0;
        }
    }
}

impl Legalizer for TetrisLegalizer {
    fn name(&self) -> &str {
        "TETRIS"
    }

    fn legalize_in_place(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) {
        let macros: Vec<Rect> = netlist
            .macro_ids()
            .map(|m| placement.cell_rect(netlist, m))
            .collect();
        let mut rows: Vec<RowFrontier> = row_segments(die, &macros)
            .into_iter()
            .map(RowFrontier::new)
            .collect();

        let mut order: Vec<_> = netlist.movable_cell_ids().collect();
        order.sort_by(|&a, &b| {
            let pa = placement.get(a);
            let pb = placement.get(b);
            pa.x.total_cmp(&pb.x)
                .then(pa.y.total_cmp(&pb.y))
                .then(a.cmp(&b))
        });

        for cell in order {
            let w = netlist.cell(cell).width;
            let pos = placement.get(cell);
            let mut best: Option<(f64, usize, f64)> = None;
            for (r, row) in rows.iter().enumerate() {
                let Some(x) = row.peek(w) else { continue };
                let dy = (die.row(r).y - pos.y).abs();
                let dx = (x - pos.x).abs();
                let cost = dx + dy;
                if best.map(|(c, _, _)| cost < c).unwrap_or(true) {
                    best = Some((cost, r, x));
                }
            }
            if let Some((_, r, _)) = best {
                let x = rows[r].place(w);
                placement.set(cell, Point::new(x, die.row(r).y));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util;

    #[test]
    fn legalizes_inflated_benchmark() {
        let mut bench = test_util::inflated_small(41);
        let outcome =
            TetrisLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn legalizes_hotspot_benchmark() {
        let mut bench = test_util::hotspot_small(42);
        let outcome =
            TetrisLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn respects_macros() {
        let mut bench = test_util::with_macros(43);
        let outcome =
            TetrisLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn frontier_advances_monotonically() {
        let mut f = RowFrontier::new(vec![(0.0, 20.0), (30.0, 60.0)]);
        assert_eq!(f.place(10.0), 0.0);
        assert_eq!(f.place(10.0), 10.0);
        // Next cell does not fit the first segment's remainder: skips to
        // the second segment.
        assert_eq!(f.place(10.0), 30.0);
        assert_eq!(f.peek(40.0), None);
        assert_eq!(f.peek(20.0), Some(40.0));
    }

    #[test]
    fn deterministic() {
        let mut a = test_util::inflated_small(45);
        let mut b = test_util::inflated_small(45);
        TetrisLegalizer::new().legalize(&a.netlist, &a.die, &mut a.placement);
        TetrisLegalizer::new().legalize(&b.netlist, &b.die, &mut b.placement);
        assert_eq!(a.placement, b.placement);
    }
}
