//! Per-step telemetry of a diffusion run (drives the paper's Figs. 9–10),
//! plus per-kernel wall-time counters for the parallel runtime.

use std::time::Duration;

/// Accumulated wall time of one kernel (FTCS step, velocity field, cell
/// advection or density splat).
///
/// Time spent while the engine ran with one worker accumulates in
/// [`serial_ns`](Self::serial_ns); multi-worker time accumulates in
/// [`parallel_ns`](Self::parallel_ns), so a run that switches thread
/// counts keeps the two regimes separable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTiming {
    /// Number of kernel invocations recorded.
    pub calls: u64,
    /// Nanoseconds spent in invocations that used exactly one worker.
    pub serial_ns: u64,
    /// Nanoseconds spent in invocations that used more than one worker.
    pub parallel_ns: u64,
    /// Largest worker count any recorded invocation used.
    pub max_threads: usize,
}

impl KernelTiming {
    /// Records one invocation that took `elapsed` using `threads` workers.
    pub fn record(&mut self, elapsed: Duration, threads: usize) {
        let ns = u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX);
        self.calls += 1;
        if threads <= 1 {
            self.serial_ns = self.serial_ns.saturating_add(ns);
        } else {
            self.parallel_ns = self.parallel_ns.saturating_add(ns);
        }
        self.max_threads = self.max_threads.max(threads.max(1));
    }

    /// Total nanoseconds across both regimes.
    pub fn total_ns(&self) -> u64 {
        self.serial_ns.saturating_add(self.parallel_ns)
    }

    /// Folds another counter into this one.
    pub fn merge(&mut self, other: &KernelTiming) {
        self.calls += other.calls;
        self.serial_ns = self.serial_ns.saturating_add(other.serial_ns);
        self.parallel_ns = self.parallel_ns.saturating_add(other.parallel_ns);
        self.max_threads = self.max_threads.max(other.max_threads);
    }
}

/// Wall-time counters for the four diffusion hot paths.
///
/// # Examples
///
/// ```
/// use std::time::Duration;
/// use dpm_diffusion::KernelTimers;
///
/// let mut t = KernelTimers::default();
/// t.ftcs.record(Duration::from_micros(10), 1);
/// t.ftcs.record(Duration::from_micros(4), 4);
/// assert_eq!(t.ftcs.calls, 2);
/// assert_eq!(t.ftcs.serial_ns, 10_000);
/// assert_eq!(t.ftcs.parallel_ns, 4_000);
/// assert_eq!(t.ftcs.max_threads, 4);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KernelTimers {
    /// FTCS density step (Eq. 4).
    pub ftcs: KernelTiming,
    /// Velocity-field computation (Eq. 5).
    pub velocity: KernelTiming,
    /// Cell advection (Eq. 7).
    pub advect: KernelTiming,
    /// Density-map splatting (measured placement density).
    pub splat: KernelTiming,
}

impl KernelTimers {
    /// Folds another set of counters into this one.
    pub fn merge(&mut self, other: &KernelTimers) {
        self.ftcs.merge(&other.ftcs);
        self.velocity.merge(&other.velocity);
        self.advect.merge(&other.advect);
        self.splat.merge(&other.splat);
    }
}

/// Snapshot of one diffusion step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepRecord {
    /// Step number `n` (0-based).
    pub step: usize,
    /// Total cell movement during this step, in world units.
    pub movement: f64,
    /// Total overflow of the *computed* (PDE) density after the step.
    pub computed_overflow: f64,
    /// Maximum computed density after the step.
    pub max_density: f64,
    /// Total overflow of the *measured* placement density, when a dynamic
    /// density update happened at this step.
    pub measured_overflow: Option<f64>,
}

/// Accumulated telemetry of a diffusion run.
///
/// # Examples
///
/// ```
/// use dpm_diffusion::{StepRecord, Telemetry};
///
/// let mut t = Telemetry::new();
/// t.push(StepRecord { step: 0, movement: 3.0, computed_overflow: 1.0, max_density: 1.5, measured_overflow: None });
/// t.push(StepRecord { step: 1, movement: 2.0, computed_overflow: 0.5, max_density: 1.2, measured_overflow: Some(0.4) });
/// assert_eq!(t.total_movement(), 5.0);
/// assert_eq!(t.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    records: Vec<StepRecord>,
    kernels: KernelTimers,
}

impl Telemetry {
    /// Creates empty telemetry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a step record.
    pub fn push(&mut self, record: StepRecord) {
        self.records.push(record);
    }

    /// All records, in step order.
    pub fn records(&self) -> &[StepRecord] {
        &self.records
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` if no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Total cell movement across all steps.
    pub fn total_movement(&self) -> f64 {
        self.records.iter().map(|r| r.movement).sum()
    }

    /// Cumulative movement per step (the series of the paper's Fig. 9).
    pub fn cumulative_movement(&self) -> Vec<f64> {
        let mut acc = 0.0;
        self.records
            .iter()
            .map(|r| {
                acc += r.movement;
                acc
            })
            .collect()
    }

    /// The computed-overflow series (the paper's Fig. 10).
    pub fn overflow_series(&self) -> Vec<f64> {
        self.records.iter().map(|r| r.computed_overflow).collect()
    }

    /// Per-kernel wall-time counters accumulated over the run.
    pub fn kernels(&self) -> &KernelTimers {
        &self.kernels
    }

    /// Replaces the kernel counters (runners install the engine's timers
    /// when a run finishes).
    pub fn set_kernels(&mut self, kernels: KernelTimers) {
        self.kernels = kernels;
    }

    /// The measured-overflow checkpoints `(step, overflow)` recorded at
    /// dynamic density updates.
    pub fn measured_checkpoints(&self) -> Vec<(usize, f64)> {
        self.records
            .iter()
            .filter_map(|r| r.measured_overflow.map(|o| (r.step, o)))
            .collect()
    }
}

impl Extend<StepRecord> for Telemetry {
    fn extend<T: IntoIterator<Item = StepRecord>>(&mut self, iter: T) {
        self.records.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: usize, movement: f64, overflow: f64) -> StepRecord {
        StepRecord {
            step,
            movement,
            computed_overflow: overflow,
            max_density: 0.0,
            measured_overflow: None,
        }
    }

    #[test]
    fn empty_telemetry() {
        let t = Telemetry::new();
        assert!(t.is_empty());
        assert_eq!(t.total_movement(), 0.0);
        assert!(t.cumulative_movement().is_empty());
    }

    #[test]
    fn cumulative_movement_is_monotone_prefix_sum() {
        let mut t = Telemetry::new();
        t.extend([rec(0, 1.0, 5.0), rec(1, 2.0, 3.0), rec(2, 0.5, 1.0)]);
        assert_eq!(t.cumulative_movement(), vec![1.0, 3.0, 3.5]);
        assert_eq!(t.overflow_series(), vec![5.0, 3.0, 1.0]);
        assert_eq!(t.total_movement(), 3.5);
    }

    #[test]
    fn measured_checkpoints_filters() {
        let mut t = Telemetry::new();
        t.push(rec(0, 1.0, 5.0));
        t.push(StepRecord {
            step: 1,
            movement: 1.0,
            computed_overflow: 4.0,
            max_density: 1.5,
            measured_overflow: Some(4.2),
        });
        assert_eq!(t.measured_checkpoints(), vec![(1, 4.2)]);
    }
}
