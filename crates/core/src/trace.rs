//! Cell-trajectory tracing (the paper's Fig. 3).
//!
//! Diffusion moves a cell along a smooth, non-direct route whose steps
//! shrink as the field approaches equilibrium. [`TracedRun`] captures
//! those routes for a chosen set of cells so they can be plotted or
//! asserted on.
//!
//! Tracing is implemented as a [`DiffusionObserver`] attached to the
//! ordinary [`GlobalDiffusion`](crate::GlobalDiffusion) runner — there
//! is no second copy of the diffusion loop, so a traced run is the
//! plain run by construction (see `trace_matches_untraced_run`).

use crate::observe::{DiffusionObserver, StepEvent};
use crate::{DiffusionConfig, DiffusionResult, GlobalDiffusion};
use dpm_geom::Point;
use dpm_netlist::{CellId, Netlist};
use dpm_place::{Die, Placement};

/// A global-diffusion run that records the per-step positions of
/// selected cells.
#[derive(Debug, Clone)]
pub struct TracedRun {
    /// The run outcome (steps, convergence, telemetry).
    pub result: DiffusionResult,
    /// For each traced cell, its center position at step 0, 1, ….
    pub trajectories: Vec<Trajectory>,
}

/// One cell's migration route.
#[derive(Debug, Clone)]
pub struct Trajectory {
    /// The traced cell.
    pub cell: CellId,
    /// Center positions, one per step (plus the initial position).
    pub points: Vec<Point>,
}

impl Trajectory {
    /// Total path length (sum of step distances).
    pub fn path_length(&self) -> f64 {
        self.points.windows(2).map(|w| (w[1] - w[0]).length()).sum()
    }

    /// Net displacement from start to finish.
    pub fn net_displacement(&self) -> f64 {
        match (self.points.first(), self.points.last()) {
            (Some(&a), Some(&b)) => (b - a).length(),
            _ => 0.0,
        }
    }

    /// The per-step movement distances.
    pub fn step_lengths(&self) -> Vec<f64> {
        self.points
            .windows(2)
            .map(|w| (w[1] - w[0]).length())
            .collect()
    }
}

/// The observer behind [`trace_global_diffusion`]: appends each traced
/// cell's post-step center to its trajectory.
struct TraceObserver<'a> {
    trajectories: &'a mut Vec<Trajectory>,
}

impl DiffusionObserver for TraceObserver<'_> {
    fn on_step(&mut self, event: &StepEvent<'_>) {
        for t in self.trajectories.iter_mut() {
            t.points
                .push(event.placement.cell_center(event.netlist, t.cell));
        }
    }
}

/// Runs global diffusion exactly like
/// [`GlobalDiffusion::run`](crate::GlobalDiffusion::run) while recording
/// the trajectory of each cell in `traced`.
///
/// # Examples
///
/// ```
/// use dpm_geom::Point;
/// use dpm_netlist::{NetlistBuilder, CellKind};
/// use dpm_place::{Die, Placement};
/// use dpm_diffusion::{trace_global_diffusion, DiffusionConfig};
///
/// let mut b = NetlistBuilder::new();
/// for i in 0..24 {
///     b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
/// }
/// let nl = b.build()?;
/// let die = Die::new(96.0, 96.0, 12.0);
/// let mut p = Placement::new(nl.num_cells());
/// for (i, c) in nl.cell_ids().enumerate() {
///     p.set(c, Point::new(36.0 + (i % 4) as f64 * 2.5, 36.0 + (i / 4) as f64 * 2.0));
/// }
/// let first = nl.cell_ids().next().expect("cells");
/// let run = trace_global_diffusion(
///     &DiffusionConfig::default().with_bin_size(24.0),
///     &nl,
///     &die,
///     &mut p,
///     &[first],
/// );
/// assert_eq!(run.trajectories.len(), 1);
/// assert_eq!(run.trajectories[0].points.len(), run.result.steps + 1);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
pub fn trace_global_diffusion(
    cfg: &DiffusionConfig,
    netlist: &Netlist,
    die: &Die,
    placement: &mut Placement,
    traced: &[CellId],
) -> TracedRun {
    let mut trajectories: Vec<Trajectory> = traced
        .iter()
        .map(|&cell| Trajectory {
            cell,
            points: vec![placement.cell_center(netlist, cell)],
        })
        .collect();

    let result = GlobalDiffusion::new(cfg.clone()).run_observed(
        netlist,
        die,
        placement,
        &|| false,
        &mut TraceObserver {
            trajectories: &mut trajectories,
        },
    );

    TracedRun {
        result,
        trajectories,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_netlist::{CellKind, NetlistBuilder};

    fn hotspot() -> (Netlist, Die, Placement) {
        let mut b = NetlistBuilder::new();
        for i in 0..30 {
            b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(144.0, 144.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().enumerate() {
            p.set(
                c,
                Point::new(48.0 + (i % 5) as f64 * 2.0, 48.0 + (i / 5) as f64 * 2.0),
            );
        }
        (nl, die, p)
    }

    #[test]
    fn trace_matches_untraced_run() {
        let (nl, die, p0) = hotspot();
        let cfg = DiffusionConfig::default().with_bin_size(24.0);
        let mut p1 = p0.clone();
        let traced = trace_global_diffusion(&cfg, &nl, &die, &mut p1, &[]);
        let mut p2 = p0.clone();
        let plain = crate::GlobalDiffusion::new(cfg).run(&nl, &die, &mut p2);
        assert_eq!(p1, p2, "tracing must not change the dynamics");
        assert_eq!(traced.result.steps, plain.steps);
    }

    #[test]
    fn trajectory_covers_every_step() {
        let (nl, die, mut p) = hotspot();
        let cell = nl.cell_ids().next().expect("cells");
        let cfg = DiffusionConfig::default().with_bin_size(24.0);
        let run = trace_global_diffusion(&cfg, &nl, &die, &mut p, &[cell]);
        assert!(run.result.steps > 0);
        let t = &run.trajectories[0];
        assert_eq!(t.points.len(), run.result.steps + 1);
        assert!(t.path_length() >= t.net_displacement() - 1e-12);
    }

    #[test]
    fn steps_shrink_toward_equilibrium() {
        // The paper's Fig. 3 observation: movement magnitude decays as
        // the field flattens. Compare the first and last third of the
        // trajectory of a hot cell.
        let (nl, die, mut p) = hotspot();
        let cell = nl.cell_ids().nth(12).expect("center-ish cell");
        let cfg = DiffusionConfig::default()
            .with_bin_size(24.0)
            .with_delta(0.02);
        let run = trace_global_diffusion(&cfg, &nl, &die, &mut p, &[cell]);
        let steps = run.trajectories[0].step_lengths();
        if steps.len() >= 9 {
            let third = steps.len() / 3;
            let head: f64 = steps[..third].iter().sum();
            let tail: f64 = steps[steps.len() - third..].iter().sum();
            assert!(
                tail <= head + 1e-9,
                "movement grew toward the end: {head} -> {tail}"
            );
        }
    }
}
