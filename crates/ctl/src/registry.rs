//! Health-checked backend registry: primaries, warm spares, and the
//! policy for swapping one for the other.
//!
//! [`ShardRouter`](dpm_serve::ShardRouter) already retries a failed
//! shard on a spare *within* a job. The registry works one level up,
//! *between* jobs: it probes backends (a bounded TCP connect for
//! [`ShardBackend::Tcp`]; in-process backends are trivially alive),
//! permanently replaces primaries that have died with healthy spares,
//! and folds the router's per-job failover reports back in so a
//! backend that failed mid-job is not offered to the next one. The
//! selection a job actually runs with is whatever
//! [`select`](BackendRegistry::select) returns at admission time.

use std::collections::HashSet;
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

use dpm_serve::ShardBackend;

/// Point-in-time registry state, for metrics and `BENCH_serve.json`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegistrySnapshot {
    /// Current primaries, in shard-assignment order.
    pub primaries: Vec<ShardBackend>,
    /// Remaining warm spares, in promotion order.
    pub spares: Vec<ShardBackend>,
    /// Primaries replaced by spares since construction.
    pub replacements: u64,
    /// Backends declared dead (failed probes plus reported failures).
    pub dead: u64,
}

/// A registry of primary backends with warm spares.
pub struct BackendRegistry {
    primaries: Vec<ShardBackend>,
    spares: Vec<ShardBackend>,
    dead: HashSet<SocketAddr>,
    probe_timeout: Duration,
    replacements: u64,
}

impl BackendRegistry {
    /// Creates a registry with the given primaries (assigned to shards
    /// round-robin by the router) and warm spares (promoted in order).
    pub fn new(primaries: Vec<ShardBackend>, spares: Vec<ShardBackend>) -> Self {
        assert!(!primaries.is_empty(), "at least one primary required");
        Self {
            primaries,
            spares,
            dead: HashSet::new(),
            probe_timeout: Duration::from_millis(250),
            replacements: 0,
        }
    }

    /// Overrides the health-probe connect timeout (default 250 ms).
    pub fn with_probe_timeout(mut self, timeout: Duration) -> Self {
        self.probe_timeout = timeout;
        self
    }

    /// Whether `backend` currently looks alive. In-process backends
    /// always are; TCP backends get a bounded connect probe, and
    /// anything already declared dead is not re-probed.
    pub fn is_healthy(&self, backend: ShardBackend) -> bool {
        match backend {
            ShardBackend::InProcess => true,
            ShardBackend::Tcp(addr) => {
                !self.dead.contains(&addr)
                    && TcpStream::connect_timeout(&addr, self.probe_timeout).is_ok()
            }
        }
    }

    /// Declares a backend dead without probing — the router found out
    /// the hard way mid-job. Dead backends are skipped by every later
    /// [`select`](Self::select) and never promoted from the spare pool.
    pub fn report_failure(&mut self, backend: ShardBackend) {
        if let ShardBackend::Tcp(addr) = backend {
            self.dead.insert(addr);
        }
    }

    /// Probes every primary and permanently replaces dead ones with
    /// the first healthy spare, then returns `(primaries, spares)` for
    /// the next job: the current primaries plus the remaining spares
    /// (for the router's *intra*-job failover). A dead primary with no
    /// healthy spare left stays in place — the router will route
    /// around it per job and report the failure back here.
    pub fn select(&mut self) -> (Vec<ShardBackend>, Vec<ShardBackend>) {
        for i in 0..self.primaries.len() {
            if self.is_healthy(self.primaries[i]) {
                continue;
            }
            self.report_failure(self.primaries[i]);
            while let Some(pos) = self
                .spares
                .iter()
                .position(|&s| !matches!(s, ShardBackend::Tcp(a) if self.dead.contains(&a)))
            {
                let spare = self.spares.remove(pos);
                if self.is_healthy(spare) {
                    self.primaries[i] = spare;
                    self.replacements += 1;
                    break;
                }
                self.report_failure(spare);
            }
        }
        (self.primaries.clone(), self.spares.clone())
    }

    /// Current state, for metrics.
    pub fn snapshot(&self) -> RegistrySnapshot {
        RegistrySnapshot {
            primaries: self.primaries.clone(),
            spares: self.spares.clone(),
            replacements: self.replacements,
            dead: self.dead.len() as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn dead_addr() -> SocketAddr {
        // Bind-then-drop: the port was just free, so connecting to it
        // refuses immediately instead of timing out.
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap()
    }

    #[test]
    fn healthy_primaries_pass_through() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let mut reg = BackendRegistry::new(
            vec![ShardBackend::InProcess, ShardBackend::Tcp(addr)],
            vec![ShardBackend::InProcess],
        );
        let (primaries, spares) = reg.select();
        assert_eq!(
            primaries,
            vec![ShardBackend::InProcess, ShardBackend::Tcp(addr)]
        );
        assert_eq!(spares, vec![ShardBackend::InProcess]);
        assert_eq!(reg.snapshot().replacements, 0);
    }

    #[test]
    fn dead_primary_is_replaced_by_first_healthy_spare() {
        let dead = dead_addr();
        let mut reg = BackendRegistry::new(
            vec![ShardBackend::Tcp(dead), ShardBackend::InProcess],
            vec![ShardBackend::Tcp(dead_addr()), ShardBackend::InProcess],
        );
        let (primaries, spares) = reg.select();
        // First spare is dead too, so the in-process spare steps in.
        assert_eq!(
            primaries,
            vec![ShardBackend::InProcess, ShardBackend::InProcess]
        );
        assert!(spares.is_empty(), "both spares consumed (one died)");
        let snap = reg.snapshot();
        assert_eq!(snap.replacements, 1);
        assert_eq!(snap.dead, 2);
        // The replacement is permanent: selecting again is a no-op.
        let (again, _) = reg.select();
        assert_eq!(again, primaries);
        assert_eq!(reg.snapshot().replacements, 1);
    }

    #[test]
    fn reported_failures_stick_without_probing() {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = l.local_addr().unwrap();
        let mut reg =
            BackendRegistry::new(vec![ShardBackend::Tcp(addr)], vec![ShardBackend::InProcess]);
        // The listener is alive, but the router said the backend
        // failed a job — believe the router.
        reg.report_failure(ShardBackend::Tcp(addr));
        let (primaries, _) = reg.select();
        assert_eq!(primaries, vec![ShardBackend::InProcess]);
        assert_eq!(reg.snapshot().replacements, 1);
    }

    #[test]
    fn dead_primary_with_no_spares_stays_put() {
        let dead = dead_addr();
        let mut reg = BackendRegistry::new(vec![ShardBackend::Tcp(dead)], vec![]);
        let (primaries, spares) = reg.select();
        assert_eq!(primaries, vec![ShardBackend::Tcp(dead)]);
        assert!(spares.is_empty());
        assert_eq!(reg.snapshot().dead, 1);
    }
}
