#![warn(missing_docs)]

//! Synthetic benchmark generation for placement-migration experiments.
//!
//! The paper evaluates on seven proprietary IBM circuits (64K–1.07M
//! cells) and on the ISPD-2004 IBM benchmarks placed by Capo. Neither is
//! available here, so this crate generates the closest synthetic
//! equivalents:
//!
//! - [`CircuitSpec`] builds a clustered netlist (locality like a real
//!   design: most nets connect cells of the same cluster) together with a
//!   **legal** constructive placement that keeps each cluster spatially
//!   contiguous — the properties legalization experiments actually
//!   consume;
//! - [`InflationSpec`] reproduces the paper's overlap workloads: cell
//!   inflation mimicking repowering (distributed or concentrated,
//!   Section VII / Table VI) and the ISPD protocol (10% of cells inflated
//!   60% in width, `RANDOM` vs `CENTER`, Table X);
//! - [`suites`] provides the `ckt1..ckt7` and `ibm01..ibm18` presets at
//!   configurable scale;
//! - [`VolCircuitSpec`] stacks tiers into a volumetric (3D-IC)
//!   benchmark: per-tier row-packed cells with a staggered row phase,
//!   through-stack macros, TSV nets, and an optional overfull hotspot
//!   tier for the volumetric migration engine.
//!
//! Everything is deterministic given the seed.
//!
//! # Examples
//!
//! ```
//! use dpm_gen::{CircuitSpec, InflationSpec};
//! use dpm_place::check_legality;
//!
//! let mut bench = CircuitSpec::small(42).generate();
//! // The generated placement is legal...
//! let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 5);
//! assert!(report.is_legal(), "{report}");
//!
//! // ...until we inflate cells to mimic repowering.
//! let achieved = bench.inflate(&InflationSpec::distributed(0.25, 7));
//! assert!(achieved > 0.2);
//! let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 5);
//! assert!(!report.is_legal());
//! ```

mod circuit;
mod eco;
mod inflate;
mod stats;
pub mod suites;
mod vol;

pub use circuit::{Benchmark, CircuitSpec};
pub use eco::{EcoSpec, EcoSummary};
pub use inflate::InflationSpec;
pub use stats::WorkloadStats;
pub use vol::{VolBenchmark, VolCircuitSpec};
