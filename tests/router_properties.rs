//! Property-based tests of the pattern global router.

use diffuplace::geom::Point;
use diffuplace::netlist::{CellKind, Netlist, NetlistBuilder, PinDir};
use diffuplace::place::{Die, Placement};
use diffuplace::route::{GlobalRouter, RouterConfig};
use proptest::prelude::*;

/// Builds `n` two-pin nets at arbitrary positions inside a 360×360 die.
fn random_design(positions: &[(f64, f64, f64, f64)]) -> (Netlist, Placement, Die) {
    let mut b = NetlistBuilder::new();
    let mut cells = Vec::new();
    for (i, _) in positions.iter().enumerate() {
        let u = b.add_cell(format!("u{i}"), 2.0, 2.0, CellKind::Movable);
        let v = b.add_cell(format!("v{i}"), 2.0, 2.0, CellKind::Movable);
        let n = b.add_net(format!("n{i}"));
        b.connect(u, n, PinDir::Output, 1.0, 1.0);
        b.connect(v, n, PinDir::Input, 1.0, 1.0);
        cells.push((u, v));
    }
    let nl = b.build().expect("valid");
    let mut p = Placement::new(nl.num_cells());
    for (&(x0, y0, x1, y1), &(u, v)) in positions.iter().zip(&cells) {
        p.set(u, Point::new(x0, y0));
        p.set(v, Point::new(x1, y1));
    }
    (nl, p, Die::new(360.0, 360.0, 12.0))
}

fn arb_positions(n: usize) -> impl Strategy<Value = Vec<(f64, f64, f64, f64)>> {
    proptest::collection::vec(
        (1.0..350.0f64, 1.0..350.0f64, 1.0..350.0f64, 1.0..350.0f64),
        1..n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Routed wirelength is at least the sum of tile-granular Manhattan
    /// spans (a route cannot be shorter than its bounding box), and every
    /// connection is embedded.
    #[test]
    fn wirelength_lower_bound(positions in arb_positions(12)) {
        let (nl, p, die) = random_design(&positions);
        let cfg = RouterConfig::default();
        let r = GlobalRouter::new(cfg.clone()).route(&nl, &p, &die);
        prop_assert_eq!(r.routed_connections, positions.len());
        let tile = cfg.tile_rows * die.row_height();
        let lower: f64 = positions
            .iter()
            .map(|&(x0, y0, x1, y1)| {
                // Tile-center distance: |Δtile_x| + |Δtile_y| tiles.
                let tx = ((x1 + 1.0) / tile).floor() - ((x0 + 1.0) / tile).floor();
                let ty = ((y1 + 1.0) / tile).floor() - ((y0 + 1.0) / tile).floor();
                (tx.abs() + ty.abs()) * tile
            })
            .sum();
        prop_assert!(
            r.wirelength + 1e-6 >= lower,
            "wirelength {} below bbox bound {}",
            r.wirelength,
            lower
        );
    }

    /// Raising capacity never increases overflow, and at infinite
    /// capacity overflow vanishes.
    #[test]
    fn overflow_monotone_in_capacity(positions in arb_positions(16)) {
        let (nl, p, die) = random_design(&positions);
        let route_with = |cap: f64| {
            GlobalRouter::new(RouterConfig {
                h_capacity: cap,
                v_capacity: cap,
                ..RouterConfig::default()
            })
            .route(&nl, &p, &die)
        };
        let tight = route_with(1.0);
        let loose = route_with(4.0);
        let infinite = route_with(1e12);
        prop_assert!(loose.overflow <= tight.overflow + 1e-9);
        prop_assert_eq!(infinite.overflow, 0.0);
        prop_assert_eq!(infinite.hot_tiles, 0);
    }

    /// Routing is deterministic.
    #[test]
    fn routing_is_deterministic(positions in arb_positions(10)) {
        let (nl, p, die) = random_design(&positions);
        let a = GlobalRouter::new(RouterConfig::default()).route(&nl, &p, &die);
        let b = GlobalRouter::new(RouterConfig::default()).route(&nl, &p, &die);
        prop_assert_eq!(a, b);
    }
}
