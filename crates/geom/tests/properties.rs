//! Randomized tests for the geometry primitives, driven by the
//! deterministic [`dpm_rng::Rng`].

use dpm_geom::{Point, Rect, Vector};
use dpm_rng::Rng;

const CASES: u64 = 256;

fn random_point(rng: &mut Rng) -> Point {
    Point::new(rng.random_range(-1e6..1e6), rng.random_range(-1e6..1e6))
}

fn random_rect(rng: &mut Rng) -> Rect {
    let o = random_point(rng);
    let w = rng.random_range(0.0..1e4);
    let h = rng.random_range(0.0..1e4);
    Rect::from_origin_size(o, w, h)
}

#[test]
fn overlap_area_commutes() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x61 ^ case);
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        assert!(
            (a.overlap_area(&b) - b.overlap_area(&a)).abs() < 1e-9,
            "case {case}"
        );
    }
}

#[test]
fn overlap_area_bounded_by_min_area() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x62 ^ case);
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        let ov = a.overlap_area(&b);
        assert!(ov >= 0.0, "case {case}");
        assert!(ov <= a.area().min(b.area()) + 1e-9, "case {case}");
    }
}

#[test]
fn self_overlap_is_area() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x63 ^ case);
        let a = random_rect(&mut rng);
        assert!(
            (a.overlap_area(&a) - a.area()).abs() <= 1e-9 * a.area().max(1.0),
            "case {case}"
        );
    }
}

#[test]
fn intersection_agrees_with_overlap() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x64 ^ case);
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        match a.intersection(&b) {
            Some(i) => {
                assert!((i.area() - a.overlap_area(&b)).abs() < 1e-6, "case {case}");
                assert!(a.contains_rect(&i), "case {case}");
                assert!(b.contains_rect(&i), "case {case}");
            }
            None => assert_eq!(a.overlap_area(&b), 0.0, "case {case}"),
        }
    }
}

#[test]
fn union_contains_both() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x65 ^ case);
        let a = random_rect(&mut rng);
        let b = random_rect(&mut rng);
        let u = a.union(&b);
        assert!(u.contains_rect(&a), "case {case}");
        assert!(u.contains_rect(&b), "case {case}");
        assert!(u.area() + 1e-9 >= a.area().max(b.area()), "case {case}");
    }
}

#[test]
fn translation_preserves_area() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x66 ^ case);
        let a = random_rect(&mut rng);
        let dx = rng.random_range(-1e4..1e4);
        let dy = rng.random_range(-1e4..1e4);
        let t = a.translated(dx, dy);
        assert!(
            (t.area() - a.area()).abs() < 1e-6 * a.area().max(1.0),
            "case {case}"
        );
        assert!((t.width() - a.width()).abs() < 1e-9, "case {case}");
    }
}

#[test]
fn manhattan_is_at_least_euclidean() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x67 ^ case);
        let a = random_point(&mut rng);
        let b = random_point(&mut rng);
        assert!(
            a.manhattan_distance(b) + 1e-9 >= a.distance(b),
            "case {case}"
        );
    }
}

#[test]
fn triangle_inequality_manhattan() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x68 ^ case);
        let a = random_point(&mut rng);
        let b = random_point(&mut rng);
        let c = random_point(&mut rng);
        assert!(
            a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c) + 1e-6,
            "case {case}"
        );
    }
}

#[test]
fn linf_clamp_never_exceeds() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x69 ^ case);
        let v_x = rng.random_range(-1e6..1e6);
        let v_y = rng.random_range(-1e6..1e6);
        let max = rng.random_range(0.01..100.0);
        let v = Vector::new(v_x, v_y).clamped_linf(max);
        assert!(v.linf_length() <= max * (1.0 + 1e-12), "case {case}");
    }
}

#[test]
fn point_vector_round_trip() {
    for case in 0..CASES {
        let mut rng = Rng::seed_from_u64(0x6A ^ case);
        let p = random_point(&mut rng);
        let v = Vector::new(rng.random_range(-1e5..1e5), rng.random_range(-1e5..1e5));
        let q = p + v;
        let back = q - v;
        assert!((back.x - p.x).abs() < 1e-6, "case {case}");
        assert!((back.y - p.y).abs() < 1e-6, "case {case}");
    }
}
