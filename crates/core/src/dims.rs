//! Grid dimensionality for the diffusion engine.
//!
//! The engine's kernels are written per-axis; [`Dims`] is the enum they
//! dispatch on. A [`Dims::D2`] grid is the classic planar bin grid; a
//! [`Dims::D3`] grid stacks `nz` tiers of identical `nx × ny` planes
//! (3D-IC volumetric placement). Bins are stored plane-major:
//! `flat(j, k, z) = (z·ny + k)·nx + j`, so a `D2` grid's layout is exactly
//! the historical row-major layout.

/// The shape of a diffusion bin grid: planar (`D2`) or volumetric (`D3`).
///
/// # Examples
///
/// ```
/// use dpm_diffusion::Dims;
///
/// let d2 = Dims::d2(4, 3);
/// assert_eq!((d2.ndim(), d2.len(), d2.nz()), (2, 12, 1));
/// let d3 = Dims::d3(4, 3, 2);
/// assert_eq!((d3.ndim(), d3.len()), (3, 24));
/// assert_eq!(d3.flat(1, 2, 1), (1 * 3 + 2) * 4 + 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dims {
    /// A planar `nx × ny` grid.
    D2 {
        /// Grid width in bins.
        nx: usize,
        /// Grid height in bins.
        ny: usize,
    },
    /// A volumetric `nx × ny × nz` grid (`nz` tiers).
    D3 {
        /// Grid width in bins.
        nx: usize,
        /// Grid height in bins.
        ny: usize,
        /// Number of tiers (z-layers).
        nz: usize,
    },
}

impl Dims {
    /// A planar grid.
    ///
    /// # Panics
    ///
    /// Panics if either side is zero.
    pub fn d2(nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "grid must be non-empty");
        Dims::D2 { nx, ny }
    }

    /// A volumetric grid.
    ///
    /// # Panics
    ///
    /// Panics if any side is zero.
    pub fn d3(nx: usize, ny: usize, nz: usize) -> Self {
        assert!(nx > 0 && ny > 0 && nz > 0, "grid must be non-empty");
        Dims::D3 { nx, ny, nz }
    }

    /// Number of spatial axes (2 or 3).
    #[inline]
    pub fn ndim(&self) -> usize {
        match self {
            Dims::D2 { .. } => 2,
            Dims::D3 { .. } => 3,
        }
    }

    /// Grid width in bins.
    #[inline]
    pub fn nx(&self) -> usize {
        match *self {
            Dims::D2 { nx, .. } | Dims::D3 { nx, .. } => nx,
        }
    }

    /// Grid height in bins.
    #[inline]
    pub fn ny(&self) -> usize {
        match *self {
            Dims::D2 { ny, .. } | Dims::D3 { ny, .. } => ny,
        }
    }

    /// Number of tiers (1 for a planar grid).
    #[inline]
    pub fn nz(&self) -> usize {
        match *self {
            Dims::D2 { .. } => 1,
            Dims::D3 { nz, .. } => nz,
        }
    }

    /// Total number of bins.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx() * self.ny() * self.nz()
    }

    /// `true` if the grid holds no bins (never, by construction).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Number of x-major lines (`ny · nz`) — the unit the parallel kernels
    /// chunk over.
    #[inline]
    pub fn lines(&self) -> usize {
        self.ny() * self.nz()
    }

    /// Flat index of bin `(j, k, z)` in plane-major order.
    #[inline]
    pub fn flat(&self, j: usize, k: usize, z: usize) -> usize {
        debug_assert!(j < self.nx() && k < self.ny() && z < self.nz());
        (z * self.ny() + k) * self.nx() + j
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d2_layout_matches_row_major() {
        let d = Dims::d2(5, 3);
        assert_eq!(d.flat(2, 1, 0), 5 + 2);
        assert_eq!(d.lines(), 3);
        assert_eq!(d.len(), 15);
        assert_eq!(d.nz(), 1);
        assert!(!d.is_empty());
    }

    #[test]
    fn d3_layout_is_plane_major() {
        let d = Dims::d3(4, 3, 2);
        assert_eq!(d.flat(0, 0, 1), 12);
        assert_eq!(d.flat(3, 2, 1), 23);
        assert_eq!(d.lines(), 6);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_axis_rejected() {
        let _ = Dims::d3(4, 0, 2);
    }
}
