#![warn(missing_docs)]

//! Std-only observability primitives for the diffusion stack.
//!
//! Three pieces, each deliberately boring:
//!
//! - **Metrics** ([`Counter`], [`Gauge`], [`Histogram`]) — lock-free
//!   atomic instruments that are cheap enough to live on hot paths.
//!   Histograms use *fixed* bucket bounds chosen at construction, so
//!   snapshots taken on different threads, processes or machines merge
//!   deterministically (bucket counts add; no rebinning, no loss beyond
//!   the bucket resolution chosen up front).
//! - **A registry** ([`Registry`]) — a named collection of instruments
//!   with a deterministic [`RegistrySnapshot`] (sorted by name, merge
//!   is associative) and a stable text exposition format for scraping
//!   or diffing.
//! - **Spans** ([`SpanRecorder`]) — explicit start/stop wall-time spans
//!   collected into a bounded ring buffer: the newest `capacity` spans
//!   are kept, older ones are counted as dropped, memory never grows.
//! - **Distributed tracing** ([`TraceContext`], [`TraceIdGen`],
//!   [`TraceExporter`]) — a propagatable trace/span/parent id triple
//!   with deterministic id minting (SplitMix64 via `dpm-rng`) and a
//!   byte-stable Chrome `trace_event` JSONL exporter for
//!   `chrome://tracing`/Perfetto.
//!
//! Nothing here allocates on the record path (histogram record is three
//! atomic adds and an atomic max); nothing depends on crates outside
//! `std`. The `dpm-serve` server hangs its request counters and latency
//! histograms off one [`Registry`]; the `perf_serve` bench reuses
//! [`Histogram`] for its latency reports so server-side and bench-side
//! numbers share one definition of "p99".
//!
//! # Examples
//!
//! ```
//! use dpm_obs::{Histogram, Registry};
//!
//! let registry = Registry::new();
//! let requests = registry.counter("requests_total");
//! let latency = registry.histogram("latency_ns", &Histogram::latency_bounds());
//!
//! requests.inc();
//! latency.record(1_500_000); // 1.5 ms in ns
//!
//! let snap = registry.snapshot();
//! assert!(snap.to_text().contains("requests_total 1"));
//! ```

mod metrics;
mod span;
mod trace;

pub use metrics::{
    labeled, Counter, Gauge, Histogram, HistogramSnapshot, MetricSnapshot, Registry,
    RegistrySnapshot,
};
pub use span::{Span, SpanRecord, SpanRecorder};
pub use trace::{normalize_spans, rebase_spans, TraceContext, TraceExporter, TraceIdGen};
