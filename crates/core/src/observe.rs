//! Observer hooks for the diffusion runners.
//!
//! [`DiffusionObserver`] is the single seam through which anything
//! watches a run: per-step telemetry, kernel timings, trajectory
//! tracing ([`trace_global_diffusion`](crate::trace_global_diffusion))
//! and the streaming progress frames of `dpm-serve` all hang off the
//! same three callbacks instead of growing their own copies of the
//! diffusion loop.
//!
//! Observers are strictly read-only witnesses: every callback receives
//! shared references to already-computed state, after the arithmetic of
//! the step has finished. An attached observer therefore cannot perturb
//! the dynamics — runs with and without observers produce bit-identical
//! placements (asserted by tests in `global.rs` and `local.rs`).

use crate::StepRecord;
use dpm_netlist::Netlist;
use dpm_place::Placement;
use std::time::Duration;

/// Which parallel kernel a [`KernelEvent`] timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The FTCS density step (Eq. 4).
    Ftcs,
    /// The velocity-field computation (Eq. 5).
    Velocity,
    /// Cell advection through the interpolated field (Eq. 6).
    Advect,
    /// The density splat building/refreshing the bin map.
    Splat,
}

/// Emitted after every completed diffusion step.
///
/// `record` is the exact [`StepRecord`] pushed to the run's
/// [`Telemetry`](crate::Telemetry); `placement` and `netlist` let an
/// observer derive anything else (cell positions for tracing, HPWL,
/// region densities) from the post-step state.
#[derive(Debug)]
pub struct StepEvent<'a> {
    /// The step's telemetry record (movement, overflow, max density).
    pub record: StepRecord,
    /// The local-diffusion round this step belongs to (1 for global).
    pub round: usize,
    /// The placement after the step's advection.
    pub placement: &'a Placement,
    /// The netlist being migrated.
    pub netlist: &'a Netlist,
}

/// Emitted by local diffusion at the start of each executed round,
/// right after the dynamic density update measured the real placement.
#[derive(Debug, Clone, Copy)]
pub struct RoundEvent {
    /// The 1-based round number.
    pub round: usize,
    /// Total measured local overflow at the round boundary.
    pub measured_overflow: f64,
    /// Maximum windowed-average overflow over the target.
    pub max_window_overflow: f64,
    /// Diffusion steps completed before this round.
    pub steps_so_far: usize,
}

/// Emitted after each timed kernel invocation.
#[derive(Debug, Clone, Copy)]
pub struct KernelEvent {
    /// Which kernel ran.
    pub kernel: KernelKind,
    /// Wall time of this invocation.
    pub elapsed: Duration,
    /// Worker-pool threads the kernel ran on.
    pub threads: usize,
}

/// A witness attached to a diffusion run.
///
/// All methods default to no-ops, so an observer implements only what
/// it needs. Callbacks run on the thread driving the diffusion loop,
/// between steps — keep them cheap (or hand off to a channel) to avoid
/// slowing the run; they can never change its outcome.
pub trait DiffusionObserver {
    /// Called after each diffusion step completes.
    fn on_step(&mut self, _event: &StepEvent<'_>) {}

    /// Called at each executed local-diffusion round boundary (never
    /// called by global diffusion, which is a single round).
    fn on_round(&mut self, _event: &RoundEvent) {}

    /// Called after each timed kernel invocation.
    fn on_kernel(&mut self, _event: &KernelEvent) {}
}

/// The observer that observes nothing; attached by the plain
/// `run`/`run_with_cancel` entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl DiffusionObserver for NoopObserver {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_methods_are_callable_noops() {
        struct OnlySteps(usize);
        impl DiffusionObserver for OnlySteps {
            fn on_step(&mut self, _event: &StepEvent<'_>) {
                self.0 += 1;
            }
        }
        let mut obs = OnlySteps(0);
        obs.on_round(&RoundEvent {
            round: 1,
            measured_overflow: 0.0,
            max_window_overflow: 0.0,
            steps_so_far: 0,
        });
        obs.on_kernel(&KernelEvent {
            kernel: KernelKind::Ftcs,
            elapsed: Duration::ZERO,
            threads: 1,
        });
        assert_eq!(obs.0, 0);
    }
}
