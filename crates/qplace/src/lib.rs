#![warn(missing_docs)]

//! Quadratic analytical global placement.
//!
//! The paper's fourth motivating application: "a global analytic or
//! force-directed placer may use placement migration to spread out the
//! cells while attempting to preserve the ordering induced by the
//! overlapping analytic solution." This crate provides that analytic
//! front end: cells minimize the quadratic wirelength
//! `Σ_e w_e · ((x_i − x_j)² + (y_i − y_j)²)` with pads/macros as fixed
//! anchors, solved per axis by Jacobi-preconditioned conjugate gradient
//! over a sparse Laplacian ([`CsrMatrix`]).
//!
//! The result is the classic *overlapping* analytic placement — cells
//! bunched around the die's center of connectivity — which the diffusion
//! engine then spreads while preserving its relative order (see the
//! `analytic_spreading` example).
//!
//! # Examples
//!
//! ```
//! use dpm_qplace::quadratic_place;
//! use dpm_gen::CircuitSpec;
//! use dpm_place::hpwl;
//!
//! let bench = CircuitSpec::small(8).generate();
//! // Pads/macros stay where the seed placement puts them; movable cells
//! // go to the quadratic optimum.
//! let analytic = quadratic_place(&bench.netlist, &bench.die, &bench.placement);
//! // The quadratic optimum has (much) shorter wirelength than the legal
//! // placement — cells overlap freely.
//! assert!(hpwl(&bench.netlist, &analytic) < hpwl(&bench.netlist, &bench.placement));
//! ```

mod csr;

pub use csr::{CsrBuilder, CsrMatrix};

use dpm_geom::Point;
use dpm_netlist::{CellId, Netlist};
use dpm_place::{Die, Placement};

/// How a multi-pin net is decomposed into quadratic two-point terms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NetModel {
    /// Every pin pair, weight `2 / k` (simple, dense for large nets).
    #[default]
    Clique,
    /// Star: every pin connects to the net's first pin (driver when one
    /// exists), weight 1. Sparser — `k − 1` terms per net — at slightly
    /// lower fidelity; the classic large-net compromise.
    Star,
}

/// Quadratic placer configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct QplaceConfig {
    /// CG convergence tolerance (relative residual).
    pub tolerance: f64,
    /// CG iteration cap.
    pub max_iters: usize,
    /// Weight of the weak tether pulling every movable cell toward the
    /// die center; keeps the system positive definite even for cells
    /// with no path to a fixed anchor.
    pub center_tether: f64,
    /// Net-model weight clamp: nets with more pins than this are skipped
    /// (clique weighting of huge nets swamps the system; the generator's
    /// nets are small).
    pub max_net_pins: usize,
    /// Net decomposition model.
    pub net_model: NetModel,
}

impl Default for QplaceConfig {
    fn default() -> Self {
        Self {
            tolerance: 1e-8,
            max_iters: 1000,
            center_tether: 1e-4,
            max_net_pins: 16,
            net_model: NetModel::Clique,
        }
    }
}

/// Quadratic (clique-model) global placer.
#[derive(Debug, Clone)]
pub struct QuadraticPlacer {
    cfg: QplaceConfig,
    movable: Vec<CellId>,
    /// Laplacian edges between movable cells: `(a, b, w)`.
    edges: Vec<(usize, usize, f64)>,
    /// Anchor pulls: `(movable index, weight, fixed cell)`.
    anchors: Vec<(usize, f64, CellId)>,
}

impl QuadraticPlacer {
    /// Builds the placer for a netlist with default configuration.
    pub fn new(netlist: &Netlist) -> Self {
        Self::with_config(netlist, QplaceConfig::default())
    }

    /// Builds the placer with an explicit configuration.
    ///
    /// Connectivity is extracted once per the configured [`NetModel`]:
    /// clique contributes `k·(k−1)/2` edges of weight `2 / k` per net of
    /// `k ≤ max_net_pins` pins; star contributes `k − 1` unit-weight
    /// edges from the net's first pin (the driver when one exists).
    pub fn with_config(netlist: &Netlist, cfg: QplaceConfig) -> Self {
        let movable: Vec<CellId> = netlist.movable_cell_ids().collect();
        let mut index_of = vec![None; netlist.num_cells()];
        for (i, &c) in movable.iter().enumerate() {
            index_of[c.index()] = Some(i);
        }

        let mut edges = Vec::new();
        let mut anchors = Vec::new();
        let mut add_pair = |ca: CellId, cb: CellId, w: f64, index_of: &[Option<usize>]| {
            if ca == cb {
                return;
            }
            match (index_of[ca.index()], index_of[cb.index()]) {
                (Some(a), Some(b)) => edges.push((a, b, w)),
                (Some(a), None) => anchors.push((a, w, cb)),
                (None, Some(b)) => anchors.push((b, w, ca)),
                (None, None) => {}
            }
        };
        for net in netlist.net_ids() {
            let pins = &netlist.net(net).pins;
            let k = pins.len();
            if k < 2 || k > cfg.max_net_pins {
                continue;
            }
            match cfg.net_model {
                NetModel::Clique => {
                    let w = 2.0 / k as f64;
                    for (ai, &pa) in pins.iter().enumerate() {
                        for &pb in pins.iter().skip(ai + 1) {
                            add_pair(netlist.pin(pa).cell, netlist.pin(pb).cell, w, &index_of);
                        }
                    }
                }
                NetModel::Star => {
                    let hub = netlist.driver_of(net).unwrap_or(pins[0]);
                    let hub_cell = netlist.pin(hub).cell;
                    for &p in pins {
                        if p != hub {
                            add_pair(hub_cell, netlist.pin(p).cell, 1.0, &index_of);
                        }
                    }
                }
            }
        }
        Self {
            cfg,
            movable,
            edges,
            anchors,
        }
    }

    /// Number of movable variables per axis.
    pub fn num_variables(&self) -> usize {
        self.movable.len()
    }

    /// Solves the quadratic program and returns the (overlapping)
    /// analytic placement. Fixed cells (pads, macros) keep the positions
    /// given in `fixed_positions`; movable cells are placed at the
    /// quadratic optimum of their *centers*, converted back to
    /// lower-left corners.
    pub fn place_with_fixed(
        &self,
        netlist: &Netlist,
        die: &Die,
        fixed_positions: &Placement,
    ) -> Placement {
        let n = self.movable.len();
        let center = die.outline().center();
        let mut placement = fixed_positions.clone();
        if n == 0 {
            return placement;
        }

        // Shared Laplacian for both axes.
        let mut builder = CsrMatrix::builder(n);
        let mut rhs_x = vec![0.0; n];
        let mut rhs_y = vec![0.0; n];
        let mut diag = vec![self.cfg.center_tether; n];
        for i in 0..n {
            rhs_x[i] = self.cfg.center_tether * center.x;
            rhs_y[i] = self.cfg.center_tether * center.y;
        }
        for &(a, b, w) in &self.edges {
            builder.add(a, b, -w);
            builder.add(b, a, -w);
            diag[a] += w;
            diag[b] += w;
        }
        for &(i, w, fixed) in &self.anchors {
            let p = fixed_positions.cell_center(netlist, fixed);
            diag[i] += w;
            rhs_x[i] += w * p.x;
            rhs_y[i] += w * p.y;
        }
        for (i, &d) in diag.iter().enumerate() {
            builder.add(i, i, d);
        }
        let matrix = builder.build();

        let x0: Vec<f64> = self
            .movable
            .iter()
            .map(|&c| fixed_positions.cell_center(netlist, c).x)
            .collect();
        let y0: Vec<f64> = self
            .movable
            .iter()
            .map(|&c| fixed_positions.cell_center(netlist, c).y)
            .collect();
        let (xs, _) = matrix.solve_cg(&rhs_x, &x0, self.cfg.tolerance, self.cfg.max_iters);
        let (ys, _) = matrix.solve_cg(&rhs_y, &y0, self.cfg.tolerance, self.cfg.max_iters);

        let outline = die.outline();
        for (i, &cell) in self.movable.iter().enumerate() {
            let c = netlist.cell(cell);
            let p = Point::new(xs[i] - c.width / 2.0, ys[i] - c.height / 2.0).clamped(
                outline.llx,
                outline.urx - c.width,
                outline.lly,
                outline.ury - c.height,
            );
            placement.set(cell, p);
        }
        placement
    }
}

/// Convenience entry point: builds the placer, fixes pads/macros at
/// their current positions (or on the boundary if unplaced), solves, and
/// returns the analytic placement.
pub fn quadratic_place(netlist: &Netlist, die: &Die, seed_placement: &Placement) -> Placement {
    QuadraticPlacer::new(netlist).place_with_fixed(netlist, die, seed_placement)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_netlist::{CellKind, NetlistBuilder, PinDir};
    use dpm_place::hpwl;

    /// pad(0,?) — cell — pad(100,?): the cell must land midway.
    #[test]
    fn single_cell_lands_between_anchors() {
        let mut b = NetlistBuilder::new();
        let p0 = b.add_cell("p0", 1.0, 1.0, CellKind::Pad);
        let p1 = b.add_cell("p1", 1.0, 1.0, CellKind::Pad);
        let c = b.add_cell("c", 4.0, 12.0, CellKind::Movable);
        let n0 = b.add_net("n0");
        b.connect(p0, n0, PinDir::Output, 0.5, 0.5);
        b.connect(c, n0, PinDir::Input, 2.0, 6.0);
        let n1 = b.add_net("n1");
        b.connect(c, n1, PinDir::Output, 2.0, 6.0);
        b.connect(p1, n1, PinDir::Input, 0.5, 0.5);
        let nl = b.build().expect("valid");
        let die = Die::new(120.0, 120.0, 12.0);
        let mut seed = Placement::new(3);
        seed.set(p0, Point::new(0.0, 59.5));
        seed.set(p1, Point::new(119.0, 59.5));
        let placed = quadratic_place(&nl, &die, &seed);
        let center = placed.cell_center(&nl, c);
        assert!((center.x - 60.0).abs() < 1.0, "x = {}", center.x);
        assert!((center.y - 60.0).abs() < 1.0, "y = {}", center.y);
    }

    /// Unequal pulls: two nets to the left anchor, one to the right —
    /// the optimum sits at the weighted mean (2·0 + 1·90)/3 = 30.
    #[test]
    fn weighted_pull_positions_cell() {
        let mut b = NetlistBuilder::new();
        let left = b.add_cell("l", 1.0, 1.0, CellKind::Pad);
        let right = b.add_cell("r", 1.0, 1.0, CellKind::Pad);
        let c = b.add_cell("c", 2.0, 2.0, CellKind::Movable);
        for i in 0..2 {
            let n = b.add_net(format!("ln{i}"));
            b.connect(left, n, PinDir::Output, 0.5, 0.5);
            b.connect(c, n, PinDir::Input, 1.0, 1.0);
        }
        let n = b.add_net("rn");
        b.connect(c, n, PinDir::Output, 1.0, 1.0);
        b.connect(right, n, PinDir::Input, 0.5, 0.5);
        let nl = b.build().expect("valid");
        let die = Die::new(120.0, 24.0, 12.0);
        let mut seed = Placement::new(3);
        seed.set(left, Point::new(0.0, 0.0));
        seed.set(right, Point::new(89.5, 0.0));
        let placed = quadratic_place(&nl, &die, &seed);
        let center = placed.cell_center(&nl, c);
        assert!((center.x - 30.1).abs() < 1.5, "x = {}", center.x);
    }

    #[test]
    fn star_model_agrees_with_clique_on_two_pin_nets() {
        // Two-pin nets are identical under both models (weight 1 vs 2/2).
        let bench = dpm_gen::CircuitSpec::small(65).generate();
        let clique = QuadraticPlacer::with_config(
            &bench.netlist,
            QplaceConfig {
                net_model: NetModel::Clique,
                ..QplaceConfig::default()
            },
        );
        let star = QuadraticPlacer::with_config(
            &bench.netlist,
            QplaceConfig {
                net_model: NetModel::Star,
                ..QplaceConfig::default()
            },
        );
        let pc = clique.place_with_fixed(&bench.netlist, &bench.die, &bench.placement);
        let ps = star.place_with_fixed(&bench.netlist, &bench.die, &bench.placement);
        // Both give heavily-overlapped short-wirelength solutions of the
        // same league.
        let wc = hpwl(&bench.netlist, &pc);
        let ws = hpwl(&bench.netlist, &ps);
        assert!(
            (wc - ws).abs() < 0.5 * wc.max(ws),
            "clique {wc} vs star {ws}"
        );
    }

    #[test]
    fn star_model_builds_fewer_edges() {
        let bench = dpm_gen::CircuitSpec::small(66).generate();
        let clique = QuadraticPlacer::with_config(
            &bench.netlist,
            QplaceConfig {
                net_model: NetModel::Clique,
                ..QplaceConfig::default()
            },
        );
        let star = QuadraticPlacer::with_config(
            &bench.netlist,
            QplaceConfig {
                net_model: NetModel::Star,
                ..QplaceConfig::default()
            },
        );
        assert!(star.edges.len() + star.anchors.len() <= clique.edges.len() + clique.anchors.len());
    }

    #[test]
    fn analytic_wirelength_beats_legal_placement() {
        let bench = dpm_gen::CircuitSpec::small(61).generate();
        let analytic = quadratic_place(&bench.netlist, &bench.die, &bench.placement);
        assert!(hpwl(&bench.netlist, &analytic) < hpwl(&bench.netlist, &bench.placement));
    }

    #[test]
    fn analytic_placement_is_heavily_overlapped() {
        use dpm_place::{BinGrid, DensityMap};
        let bench = dpm_gen::CircuitSpec::small(62).generate();
        let analytic = quadratic_place(&bench.netlist, &bench.die, &bench.placement);
        let grid = BinGrid::new(bench.die.outline(), 2.5 * bench.die.row_height());
        let d = DensityMap::from_placement(&bench.netlist, &analytic, grid);
        assert!(
            d.max_density() > 2.0,
            "analytic solution should pile up: {}",
            d.max_density()
        );
    }

    #[test]
    fn fixed_cells_do_not_move() {
        let bench = dpm_gen::CircuitSpec::small(63).with_macros(2).generate();
        let analytic = quadratic_place(&bench.netlist, &bench.die, &bench.placement);
        for m in bench.netlist.macro_ids() {
            assert_eq!(analytic.get(m), bench.placement.get(m));
        }
    }

    #[test]
    fn cells_stay_inside_the_die() {
        let bench = dpm_gen::CircuitSpec::small(64).generate();
        let analytic = quadratic_place(&bench.netlist, &bench.die, &bench.placement);
        let outline = bench.die.outline();
        for c in bench.netlist.movable_cell_ids() {
            let r = analytic.cell_rect(&bench.netlist, c);
            assert!(outline.contains_rect(&r), "cell {c} escaped: {r}");
        }
    }
}
