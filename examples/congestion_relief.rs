//! Congestion-driven placement migration — the paper's stated future
//! work ("applying diffusion to other design closure objectives, such as
//! routing congestion mitigation").
//!
//! Diffusion only needs a *density field* to spread; it never looks at
//! connectivity. So instead of area density we feed the engine a blend
//! of area density and RUDY routing demand: bins that are congested
//! (even if not over-full) get pushed apart too.
//!
//! Run with: `cargo run --release --example congestion_relief`

use diffuplace::congestion::CongestionMap;
use diffuplace::diffusion::{DiffusionConfig, FieldMigration};
use diffuplace::gen::CircuitSpec;
use diffuplace::legalize::{run_legalizer, DetailedLegalizer};
use diffuplace::place::{hpwl, BinGrid, MovementStats};

fn main() {
    // A fairly dense design: legal, but with routing hot spots where the
    // clusters meet.
    let bench = CircuitSpec::with_size("congested", 3_000, 55)
        .with_utilization(0.8)
        .generate();
    let cfg = DiffusionConfig::default().with_bin_size(2.5 * bench.die.row_height());
    let grid = BinGrid::new(bench.die.outline(), cfg.bin_size);

    let rudy_before = CongestionMap::build(&bench.netlist, &bench.placement, grid.clone());
    println!(
        "before: TWL {:.0}, max RUDY demand {:.2}, hot bins (>threshold) {}",
        hpwl(&bench.netlist, &bench.placement),
        rudy_before.max_demand(),
        rudy_before.hot_bins(hot_threshold(&rudy_before)),
    );

    // Blend area density with normalized congestion: congested bins look
    // "over-full" to the diffusion engine and shed cells. Congestion
    // relief is a bounded perturbation, not a re-placement — 40 steps.
    let mut placement = bench.placement.clone();
    FieldMigration::new(cfg)
        .with_weight(0.8)
        .with_steps(40)
        .run(
            &bench.netlist,
            &bench.die,
            &mut placement,
            rudy_before.demands(),
        );
    run_legalizer(
        &DetailedLegalizer::new(),
        &bench.netlist,
        &bench.die,
        &mut placement,
    );

    let rudy_after = CongestionMap::build(&bench.netlist, &placement, grid);
    let moves = MovementStats::between(&bench.netlist, &bench.placement, &placement);
    println!(
        "after:  TWL {:.0}, max RUDY demand {:.2}, hot bins {}",
        hpwl(&bench.netlist, &placement),
        rudy_after.max_demand(),
        rudy_after.hot_bins(hot_threshold(&rudy_before)),
    );
    println!(
        "perturbation: total move {:.0}, max move {:.1} (avg {:.2} per cell)",
        moves.total,
        moves.max,
        moves.total / moves.movable.max(1) as f64
    );
    let relief = (1.0 - rudy_after.max_demand() / rudy_before.max_demand()) * 100.0;
    println!("peak congestion relief: {relief:.1}%");
}

/// "Hot" = above 70% of the initial peak demand.
fn hot_threshold(m: &CongestionMap) -> f64 {
    0.7 * m.max_demand()
}
