//! Table X — ISPD test-case wirelengths and overlap percentages for the
//! CENTER and RANDOM inflation sets.

use dpm_bench::suite::IspdSet;
use dpm_bench::{fnum, print_table, scale_from_env, TextTable, IBM_DEFAULT_SCALE};
use dpm_gen::suites::ibm_suite;
use dpm_place::{check_legality, hpwl};

fn main() {
    let scale = scale_from_env(IBM_DEFAULT_SCALE);
    println!("Reproducing Table X at scale {scale}.");
    let mut t = TextTable::new(["testcase", "objs", "TWL", "CENTER(%)", "RANDOM(%)"]);
    for entry in ibm_suite(scale) {
        let base = entry.spec.generate();
        let twl = hpwl(&base.netlist, &base.placement);
        let mut pct = Vec::new();
        for set in [IspdSet::Center, IspdSet::Random] {
            let mut bench = entry.spec.generate();
            bench.inflate(&set.inflation(entry.spec.seed ^ 0x15bd));
            let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 0);
            pct.push(report.total_overlap_area / bench.netlist.movable_area() * 100.0);
        }
        t.row([
            entry.spec.name.clone(),
            base.netlist.num_cells().to_string(),
            fnum(twl),
            fnum(pct[0]),
            fnum(pct[1]),
        ]);
        eprintln!("  finished {}", entry.spec.name);
    }
    print_table(
        "Table X: testcase wirelengths and overlaps (paper overlaps ~5-7%)",
        &t,
    );
}
