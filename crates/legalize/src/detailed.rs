//! Detailed (final) legalization: row snapping, capacity balancing, and
//! Abacus-style order-preserving in-row placement.
//!
//! Every spreading method in this crate — diffusion, min-cost flow, grid
//! stretching — produces a placement whose bin densities are at most the
//! target but whose cells still overlap slightly. This module plays the
//! role of "IBM CPlace's internal legalizer" from the paper: it snaps
//! cells to rows, rebalances row/segment capacity with minimal vertical
//! moves, and then places each row's cells in their x-order at minimum
//! squared displacement (the Abacus clumping algorithm of Spindler,
//! Schlichtmann & Johannes), which preserves relative order by
//! construction.

use crate::occupancy::row_segments;
use crate::Legalizer;
use dpm_geom::{Point, Rect};
use dpm_netlist::{CellId, Netlist};
use dpm_place::{Die, Placement};

/// The order-preserving final legalizer.
///
/// # Examples
///
/// ```
/// use dpm_gen::{CircuitSpec, InflationSpec};
/// use dpm_legalize::{DetailedLegalizer, Legalizer};
///
/// let mut bench = CircuitSpec::small(3).generate();
/// bench.inflate(&InflationSpec::random_width(0.05, 1.3, 1));
/// let outcome = DetailedLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
/// assert!(outcome.is_legal);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DetailedLegalizer {
    _private: (),
}

impl DetailedLegalizer {
    /// Creates the legalizer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Legalizer for DetailedLegalizer {
    fn name(&self) -> &str {
        "DETAILED"
    }

    fn legalize_in_place(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) {
        detailed_legalize(netlist, die, placement);
    }
}

/// One usable row segment with its assigned cells.
#[derive(Debug)]
struct Slot {
    row: usize,
    start: f64,
    end: f64,
    /// (cell, desired x) assignments.
    cells: Vec<(CellId, f64)>,
    load: f64,
}

impl Slot {
    fn capacity(&self) -> f64 {
        self.end - self.start
    }
    fn spare(&self) -> f64 {
        self.capacity() - self.load
    }
}

/// Runs the full detailed legalization pipeline.
pub(crate) fn detailed_legalize(netlist: &Netlist, die: &Die, placement: &mut Placement) {
    let macros: Vec<Rect> = netlist
        .macro_ids()
        .map(|m| placement.cell_rect(netlist, m))
        .collect();
    let segments = row_segments(die, &macros);

    // Build slots and an index from row -> slot range.
    let mut slots: Vec<Slot> = Vec::new();
    let mut row_slots: Vec<Vec<usize>> = vec![Vec::new(); die.num_rows()];
    for (row, segs) in segments.iter().enumerate() {
        for &(s, e) in segs {
            row_slots[row].push(slots.len());
            slots.push(Slot {
                row,
                start: s,
                end: e,
                cells: Vec::new(),
                load: 0.0,
            });
        }
    }
    if slots.is_empty() {
        return;
    }

    // Assign every movable cell to the nearest slot of its nearest row.
    for cell in netlist.movable_cell_ids() {
        let pos = placement.get(cell);
        let w = netlist.cell(cell).width;
        let row = die.row_of_y(die.snap_y(pos.y) + 1e-9);
        let slot = best_slot_near(&slots, &row_slots, die, row, pos.x, w, false)
            .unwrap_or_else(|| row_slots[row][0]);
        slots[slot].cells.push((cell, pos.x));
        slots[slot].load += w;
    }

    // Capacity balancing: shed overflow to the cheapest slot with spare.
    balance(netlist, die, &mut slots, &row_slots);

    // Order-preserving placement within each slot.
    for slot in &mut slots {
        slot.cells.sort_by(|a, b| a.1.total_cmp(&b.1));
        let xs = abacus_clump(
            &slot
                .cells
                .iter()
                .map(|&(c, x)| (x, netlist.cell(c).width))
                .collect::<Vec<_>>(),
            slot.start,
            slot.end,
        );
        let y = die.row(slot.row).y;
        for (&(cell, _), &x) in slot.cells.iter().zip(&xs) {
            placement.set(cell, Point::new(x, y));
        }
    }
}

/// Finds the slot nearest `(row, x)` that can hold a cell of width `w`
/// (`need_spare` additionally requires spare capacity), scanning rows
/// outward.
fn best_slot_near(
    slots: &[Slot],
    row_slots: &[Vec<usize>],
    die: &Die,
    row: usize,
    x: f64,
    w: f64,
    need_spare: bool,
) -> Option<usize> {
    let n_rows = row_slots.len();
    let mut best: Option<(f64, usize)> = None;
    for radius in 0..n_rows {
        let mut candidates: Vec<usize> = Vec::new();
        if radius == 0 {
            candidates.push(row);
        } else {
            if row >= radius {
                candidates.push(row - radius);
            }
            if row + radius < n_rows {
                candidates.push(row + radius);
            }
            if candidates.is_empty() {
                break;
            }
        }
        for r in candidates {
            for &si in &row_slots[r] {
                let s = &slots[si];
                if s.capacity() < w {
                    continue;
                }
                if need_spare && s.spare() < w {
                    continue;
                }
                let dx = if x < s.start {
                    s.start - x
                } else if x > s.end - w {
                    x - (s.end - w)
                } else {
                    0.0
                };
                let dy = radius as f64 * die.row_height();
                let cost = dx + dy;
                if best.map(|(c, _)| cost < c).unwrap_or(true) {
                    best = Some((cost, si));
                }
            }
        }
        // Any candidate found at this radius beats everything strictly
        // further out vertically unless its horizontal cost is huge; one
        // extra radius of slack keeps the search cheap yet near-optimal.
        if let Some((cost, _)) = best {
            if cost <= (radius as f64 + 1.0) * die.row_height() {
                break;
            }
        }
    }
    best.map(|(_, si)| si)
}

/// Moves cells out of over-capacity slots into the cheapest slots with
/// spare room. Terminates because every move strictly decreases total
/// overflow (moves only target slots with spare ≥ cell width).
///
/// The victim is always the cell whose desired x is most extreme within
/// the slot: it sits nearest a boundary, so pushing it sideways (or to a
/// neighboring row at the same x) is the cheapest resolution. Selecting
/// victims by other criteria (e.g. widest-first) was measured to lose
/// 10-40% wirelength on the benchmark suite.
#[allow(clippy::while_let_loop)]
fn balance(netlist: &Netlist, die: &Die, slots: &mut [Slot], row_slots: &[Vec<usize>]) {
    loop {
        let Some(over) = slots
            .iter()
            .position(|s| s.load > s.capacity() + 1e-9 && !s.cells.is_empty())
        else {
            break;
        };
        let (idx, &(cell, x)) = {
            let s = &slots[over];
            let mid = (s.start + s.end) / 2.0;
            s.cells
                .iter()
                .enumerate()
                .max_by(|a, b| (a.1 .1 - mid).abs().total_cmp(&(b.1 .1 - mid).abs()))
                .expect("non-empty")
        };
        let w = netlist.cell(cell).width;
        let row = slots[over].row;
        // Exclude the overloaded slot itself by requiring spare.
        let target = best_slot_near(slots, row_slots, die, row, x, w, true);
        let Some(target) = target else {
            // Nowhere to go: give up on balancing this slot (the final
            // legality check will report the residual overlap).
            break;
        };
        if target == over {
            break;
        }
        slots[over].cells.swap_remove(idx);
        slots[over].load -= w;
        slots[target].cells.push((cell, x));
        slots[target].load += w;
    }
}

/// Abacus clumping: places ordered cells `(desired_x, width)` within
/// `[lo, hi]` minimizing `Σ wᵢ·(xᵢ − desiredᵢ)²` subject to
/// non-overlap and order preservation.
pub(crate) fn abacus_clump(cells: &[(f64, f64)], lo: f64, hi: f64) -> Vec<f64> {
    #[derive(Debug, Clone, Copy)]
    struct Cluster {
        /// Optimal unclamped position of the cluster's left edge.
        q: f64,
        weight: f64,
        width: f64,
        /// Index of the first cell in the cluster.
        first: usize,
    }

    let mut clusters: Vec<Cluster> = Vec::new();
    for (i, &(x, w)) in cells.iter().enumerate() {
        let mut c = Cluster {
            q: w * x,
            weight: w,
            width: w,
            first: i,
        };
        // Merge with previous clusters while they overlap.
        #[allow(clippy::while_let_loop)]
        loop {
            let Some(prev) = clusters.last() else { break };
            let prev_pos = (prev.q / prev.weight).clamp(lo, (hi - prev.width).max(lo));
            let cur_pos = (c.q / c.weight).clamp(lo, (hi - c.width).max(lo));
            if prev_pos + prev.width <= cur_pos + 1e-12 {
                break;
            }
            // Merge c into prev: cells of c sit at offset prev.width.
            let prev = clusters.pop().expect("non-empty");
            c = Cluster {
                q: prev.q + c.q - c.weight * prev.width,
                weight: prev.weight + c.weight,
                width: prev.width + c.width,
                first: prev.first,
            };
        }
        clusters.push(c);
    }

    let mut xs = vec![0.0; cells.len()];
    for (ci, c) in clusters.iter().enumerate() {
        let pos = (c.q / c.weight).clamp(lo, (hi - c.width).max(lo));
        let last = clusters.get(ci + 1).map(|n| n.first).unwrap_or(cells.len());
        let mut cursor = pos;
        for i in c.first..last {
            xs[i] = cursor;
            cursor += cells[i].1;
        }
    }
    xs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util;
    use dpm_place::{check_legality, hpwl, MovementStats};

    #[test]
    fn clump_no_overlap_is_identity() {
        let cells = vec![(0.0, 5.0), (10.0, 5.0), (20.0, 5.0)];
        let xs = abacus_clump(&cells, 0.0, 100.0);
        assert_eq!(xs, vec![0.0, 10.0, 20.0]);
    }

    #[test]
    fn clump_resolves_overlap_symmetrically() {
        // Two 10-wide cells both wanting x = 10: they split around it.
        let cells = vec![(10.0, 10.0), (10.0, 10.0)];
        let xs = abacus_clump(&cells, 0.0, 100.0);
        assert!((xs[0] - 5.0).abs() < 1e-9, "{xs:?}");
        assert!((xs[1] - 15.0).abs() < 1e-9, "{xs:?}");
    }

    #[test]
    fn clump_respects_bounds() {
        let cells = vec![(-5.0, 10.0), (-2.0, 10.0)];
        let xs = abacus_clump(&cells, 0.0, 100.0);
        assert!(xs[0] >= 0.0);
        assert_eq!(xs[1], xs[0] + 10.0);
        let cells = vec![(95.0, 10.0), (99.0, 10.0)];
        let xs = abacus_clump(&cells, 0.0, 100.0);
        assert!(xs[1] + 10.0 <= 100.0 + 1e-9);
    }

    #[test]
    fn clump_preserves_order() {
        let cells = vec![(50.0, 8.0), (50.0, 4.0), (51.0, 6.0), (80.0, 4.0)];
        let xs = abacus_clump(&cells, 0.0, 200.0);
        for w in xs.windows(2) {
            assert!(w[0] < w[1], "order violated: {xs:?}");
        }
    }

    #[test]
    fn clump_packed_row_exactly_fits() {
        let cells: Vec<(f64, f64)> = (0..10).map(|i| (i as f64 * 3.0, 10.0)).collect();
        let xs = abacus_clump(&cells, 0.0, 100.0);
        assert!(xs[0] >= -1e-9);
        assert!(xs[9] + 10.0 <= 100.0 + 1e-9);
        for (w, pair) in xs.windows(2).enumerate() {
            assert!(pair[1] - pair[0] >= 10.0 - 1e-9, "overlap at {w}");
        }
    }

    #[test]
    fn legalizes_inflated_benchmark() {
        let mut bench = test_util::inflated_small(21);
        let outcome =
            DetailedLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn legalizes_hotspot_benchmark() {
        let mut bench = test_util::hotspot_small(22);
        let outcome =
            DetailedLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn respects_macros() {
        let mut bench = test_util::with_macros(23);
        let outcome =
            DetailedLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn legal_input_barely_moves() {
        let bench = dpm_gen::CircuitSpec::small(24).generate();
        let mut p = bench.placement.clone();
        DetailedLegalizer::new().legalize(&bench.netlist, &bench.die, &mut p);
        let m = MovementStats::between(&bench.netlist, &bench.placement, &p);
        // Already legal: nothing should move at all.
        assert_eq!(m.moved, 0, "moved {} cells", m.moved);
    }

    #[test]
    fn wirelength_stays_sane() {
        let mut bench = test_util::inflated_small(25);
        let before = hpwl(&bench.netlist, &bench.placement);
        DetailedLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        let after = hpwl(&bench.netlist, &bench.placement);
        assert!(
            after < before * 1.6,
            "wirelength blew up: {before} -> {after}"
        );
        let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 3);
        assert!(report.is_legal(), "{report}");
    }
}
