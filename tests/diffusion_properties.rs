//! Randomized tests of the diffusion engine's invariants, driven by the
//! deterministic [`diffuplace::rng::Rng`].

use diffuplace::diffusion::{manipulate_density, DiffusionEngine};
use diffuplace::rng::Rng;

/// Random density field: values in [0, 4] on an n×n grid.
fn random_field(rng: &mut Rng, n: usize) -> Vec<f64> {
    (0..n * n).map(|_| rng.random_range(0.0..4.0)).collect()
}

/// FTCS with conservative boundaries conserves total density exactly for
/// any field and any stable time step.
#[test]
fn conservative_mass_invariant() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xF1 ^ case);
        let field = random_field(&mut rng, 8);
        let dt = rng.random_range(0.01..0.5);
        let steps = rng.random_range(1usize..50);
        let mut e = DiffusionEngine::from_raw(8, 8, field, None);
        e.set_conservative_boundaries(true);
        let m0 = e.total_live_density();
        for _ in 0..steps {
            e.step_density(dt);
        }
        let m1 = e.total_live_density();
        assert!(
            (m0 - m1).abs() < 1e-9 * m0.max(1.0),
            "case {case}: mass {m0} -> {m1}"
        );
    }
}

/// Density never goes negative and never exceeds the initial maximum
/// (discrete maximum principle) under either boundary rule.
#[test]
fn maximum_principle() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xF2 ^ case);
        let field = random_field(&mut rng, 8);
        let paper = rng.random_bool(0.5);
        let steps = rng.random_range(1usize..100);
        let hi0 = field.iter().cloned().fold(0.0f64, f64::max);
        let mut e = DiffusionEngine::from_raw(8, 8, field, None);
        e.set_conservative_boundaries(!paper);
        for _ in 0..steps {
            e.step_density(0.2);
        }
        for &d in e.densities() {
            assert!(d >= -1e-9, "case {case}: negative density {d}");
            assert!(
                d <= hi0 + 1e-9,
                "case {case}: density {d} above initial max {hi0}"
            );
        }
    }
}

/// The field variance is non-increasing: diffusion smooths.
#[test]
fn smoothing_invariant() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xF3 ^ case);
        let field = random_field(&mut rng, 8);
        let variance = |d: &[f64]| {
            let mean = d.iter().sum::<f64>() / d.len() as f64;
            d.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>()
        };
        let mut e = DiffusionEngine::from_raw(8, 8, field, None);
        e.set_conservative_boundaries(true);
        let mut prev = variance(e.densities());
        for _ in 0..30 {
            e.step_density(0.2);
            let v = variance(e.densities());
            assert!(
                v <= prev + 1e-9,
                "case {case}: variance rose: {prev} -> {v}"
            );
            prev = v;
        }
    }
}

/// Velocities always point down the density gradient: for any field, the
/// velocity x-component at a bin has the opposite sign of the east-west
/// density difference.
#[test]
fn velocity_points_downhill() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xF4 ^ case);
        let field = random_field(&mut rng, 8);
        let mut e = DiffusionEngine::from_raw(8, 8, field, None);
        e.compute_velocities();
        for k in 1..7 {
            for j in 1..7 {
                if e.density(j, k) <= 1e-9 {
                    continue;
                }
                let grad = e.density(j + 1, k) - e.density(j - 1, k);
                let v = e.bin_velocity(j, k).x;
                assert!(
                    grad * v <= 1e-12,
                    "case {case}: uphill velocity at ({j},{k}): grad {grad}, v {v}"
                );
            }
        }
    }
}

/// Density manipulation (Eq. 8) makes the live average exactly d_max
/// whenever there is both overflow and free space, and never touches
/// overfull bins.
#[test]
fn manipulation_average_invariant() {
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xF5 ^ case);
        let mut field = random_field(&mut rng, 6);
        let d_max = rng.random_range(0.5..2.0);
        let orig = field.clone();
        let (ao, a_s) = manipulate_density(&mut field, None, d_max);
        if ao > 0.0 && ao < a_s {
            let avg = field.iter().sum::<f64>() / field.len() as f64;
            assert!(
                (avg - d_max).abs() < 1e-9,
                "case {case}: avg {avg} != d_max {d_max}"
            );
        } else {
            // Infeasible or overflow-free inputs are left untouched.
            assert_eq!(&field, &orig, "case {case}");
        }
        for (before, after) in orig.iter().zip(&field) {
            if *before >= d_max {
                assert_eq!(*before, *after, "case {case}: overfull bin modified");
            } else {
                assert!(
                    *after >= *before - 1e-12,
                    "case {case}: under-full bin lowered"
                );
                assert!(*after <= d_max + 1e-12, "case {case}: lifted above d_max");
            }
        }
    }
}

/// Interpolated velocities are bounded component-wise by the extrema of
/// the four corner velocities (bilinear convexity).
#[test]
fn interpolation_is_convex() {
    use diffuplace::geom::Vector;
    for case in 0..64u64 {
        let mut rng = Rng::seed_from_u64(0xF6 ^ case);
        let vx: Vec<f64> = (0..4).map(|_| rng.random_range(-2.0..2.0)).collect();
        let vy: Vec<f64> = (0..4).map(|_| rng.random_range(-2.0..2.0)).collect();
        let alpha = rng.random_range(0.0..1.0);
        let beta = rng.random_range(0.0..1.0);
        let corners: Vec<Vector> = (0..4).map(|i| Vector::new(vx[i], vy[i])).collect();
        let v = diffuplace::diffusion::interpolate_velocity(
            corners[0], corners[1], corners[2], corners[3], alpha, beta,
        );
        let (lo_x, hi_x) = vx
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &x| {
                (l.min(x), h.max(x))
            });
        let (lo_y, hi_y) = vy
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(l, h), &y| {
                (l.min(y), h.max(y))
            });
        assert!(v.x >= lo_x - 1e-12 && v.x <= hi_x + 1e-12, "case {case}");
        assert!(v.y >= lo_y - 1e-12 && v.y <= hi_y + 1e-12, "case {case}");
    }
}

/// Walls are impermeable under both boundary rules (randomized fields are
/// covered above; this pins the geometry).
#[test]
fn walls_are_impermeable() {
    for paper in [false, true] {
        let n = 6;
        let mut d = vec![0.0; n * n];
        let mut wall = vec![false; n * n];
        // Vertical wall column splitting the grid.
        for k in 0..n {
            wall[k * n + 3] = true;
        }
        d[2 * n + 1] = 3.0; // density on the left side
        let mut e = DiffusionEngine::from_raw(n, n, d, Some(wall));
        e.set_conservative_boundaries(!paper);
        for _ in 0..500 {
            e.step_density(0.2);
        }
        for k in 0..n {
            for j in 4..n {
                assert_eq!(
                    e.density(j, k),
                    0.0,
                    "leaked through wall at ({j},{k}), paper={paper}"
                );
            }
        }
    }
}
