//! Fig. 12 — total movement and WNS vs window size with W1 = W2, ckt2.

use dpm_bench::suite::diffusion_cfg;
use dpm_bench::{fnum, print_table, scale_from_env, Experiment, TextTable, CKT_DEFAULT_SCALE};
use dpm_gen::suites::ckt_suite;
use dpm_legalize::DiffusionLegalizer;

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Fig. 12 at scale {scale} (ckt2, W1 = W2 sweep).");
    let entry = &ckt_suite(scale)[1];
    let base = entry.spec.generate();
    let (bench, _) = entry.generate_inflated();
    let cfg0 = diffusion_cfg(&bench);
    let exp = Experiment::new(bench, &base);

    let mut t = TextTable::new(["W1=W2", "movement", "WNS"]);
    for w in 1..=5usize {
        let r = exp.run(&DiffusionLegalizer::local(cfg0.clone().with_windows(w, w)));
        t.row([w.to_string(), fnum(r.movement.total), fnum(r.metrics.wns)]);
        eprintln!("  W = {w} done");
    }
    print_table(
        "Fig. 12: W1 = W2 sweep (paper: larger windows spread more; small is better)",
        &t,
    );
}
