#![warn(missing_docs)]

//! Netlist data model for placement migration.
//!
//! A [`Netlist`] is the logical view of a circuit: [`Cell`]s carrying
//! [`Pin`]s, connected by [`Net`]s. The placement crates attach geometry to
//! it; the timing crate derives a DAG from it. Identifiers are typed
//! newtypes ([`CellId`], [`NetId`], [`PinId`]) so they cannot be mixed up.
//!
//! Netlists are built through [`NetlistBuilder`], which validates
//! connectivity as it goes and produces an immutable netlist with
//! precomputed cell→pin and net→pin indexes.
//!
//! # Examples
//!
//! ```
//! use dpm_netlist::{NetlistBuilder, CellKind, PinDir};
//!
//! let mut b = NetlistBuilder::new();
//! let a = b.add_cell("a", 4.0, 12.0, CellKind::Movable);
//! let c = b.add_cell("c", 6.0, 12.0, CellKind::Movable);
//! let n = b.add_net("n1");
//! b.connect(a, n, PinDir::Output, 2.0, 6.0);
//! b.connect(c, n, PinDir::Input, 0.0, 6.0);
//! let netlist = b.build()?;
//! assert_eq!(netlist.num_cells(), 2);
//! assert_eq!(netlist.net(n).pins.len(), 2);
//! # Ok::<(), dpm_netlist::BuildNetlistError>(())
//! ```

mod builder;
mod dag;
mod ids;

pub use builder::{BuildNetlistError, NetlistBuilder};
pub use dag::{levelize, LevelizeResult};
pub use ids::{CellId, NetId, PinId};

use dpm_geom::Point;

/// What kind of object a cell is, which controls whether legalization and
/// migration may move it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CellKind {
    /// A standard cell that placement migration may move.
    #[default]
    Movable,
    /// A fixed macro block; occupies area, never moves, and diffusion must
    /// route cells around it.
    FixedMacro,
    /// An I/O pad on the die boundary; never moves, contributes pins but no
    /// placement area.
    Pad,
}

impl CellKind {
    /// `true` for objects that legalization may relocate.
    #[inline]
    pub fn is_movable(self) -> bool {
        matches!(self, CellKind::Movable)
    }

    /// `true` for objects that occupy placement area (movable cells and
    /// macros, but not pads).
    #[inline]
    pub fn occupies_area(self) -> bool {
        !matches!(self, CellKind::Pad)
    }
}

/// Signal direction of a pin, from the perspective of the cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PinDir {
    /// The cell reads this signal.
    Input,
    /// The cell drives this signal.
    Output,
}

/// A logic cell, macro, or pad.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Human-readable instance name.
    pub name: String,
    /// Width in placement units.
    pub width: f64,
    /// Height in placement units (standard cells: one row height).
    pub height: f64,
    /// Movability class.
    pub kind: CellKind,
    /// Intrinsic input-to-output delay used by the timing substrate.
    pub delay: f64,
    /// Pins on this cell.
    pub pins: Vec<PinId>,
}

impl Cell {
    /// Placement area of the cell.
    #[inline]
    pub fn area(&self) -> f64 {
        self.width * self.height
    }
}

/// A signal net connecting two or more pins.
#[derive(Debug, Clone)]
pub struct Net {
    /// Human-readable net name.
    pub name: String,
    /// All pins on the net. The driver (if any) is found via
    /// [`Netlist::driver_of`].
    pub pins: Vec<PinId>,
}

/// A connection point on a cell.
#[derive(Debug, Clone, Copy)]
pub struct Pin {
    /// Owning cell.
    pub cell: CellId,
    /// Connected net.
    pub net: NetId,
    /// Direction relative to the cell.
    pub dir: PinDir,
    /// Offset of the pin from the cell's lower-left corner.
    pub offset: Point,
}

/// An immutable circuit netlist with precomputed connectivity indexes.
///
/// Construct via [`NetlistBuilder`]. All accessors are `O(1)`.
#[derive(Debug, Clone)]
pub struct Netlist {
    pub(crate) cells: Vec<Cell>,
    pub(crate) nets: Vec<Net>,
    pub(crate) pins: Vec<Pin>,
    /// For each net, the index of its driving (output) pin, if unique.
    pub(crate) drivers: Vec<Option<PinId>>,
}

impl Netlist {
    /// Number of cells (including macros and pads).
    #[inline]
    pub fn num_cells(&self) -> usize {
        self.cells.len()
    }

    /// Number of nets.
    #[inline]
    pub fn num_nets(&self) -> usize {
        self.nets.len()
    }

    /// Number of pins.
    #[inline]
    pub fn num_pins(&self) -> usize {
        self.pins.len()
    }

    /// The cell with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range (ids from this netlist never are).
    #[inline]
    pub fn cell(&self, id: CellId) -> &Cell {
        &self.cells[id.index()]
    }

    /// The net with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn net(&self, id: NetId) -> &Net {
        &self.nets[id.index()]
    }

    /// The pin with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    #[inline]
    pub fn pin(&self, id: PinId) -> &Pin {
        &self.pins[id.index()]
    }

    /// The unique driving pin of a net, or `None` for driverless nets.
    #[inline]
    pub fn driver_of(&self, net: NetId) -> Option<PinId> {
        self.drivers[net.index()]
    }

    /// Iterates over all cell ids.
    pub fn cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        (0..self.cells.len()).map(|i| CellId::new(i as u32))
    }

    /// Iterates over all net ids.
    pub fn net_ids(&self) -> impl Iterator<Item = NetId> + '_ {
        (0..self.nets.len()).map(|i| NetId::new(i as u32))
    }

    /// Iterates over the ids of movable cells only.
    pub fn movable_cell_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind.is_movable())
            .map(|(i, _)| CellId::new(i as u32))
    }

    /// Iterates over the ids of fixed macros.
    pub fn macro_ids(&self) -> impl Iterator<Item = CellId> + '_ {
        self.cells
            .iter()
            .enumerate()
            .filter(|(_, c)| c.kind == CellKind::FixedMacro)
            .map(|(i, _)| CellId::new(i as u32))
    }

    /// Total area of movable cells.
    pub fn movable_area(&self) -> f64 {
        self.cells
            .iter()
            .filter(|c| c.kind.is_movable())
            .map(Cell::area)
            .sum()
    }

    /// Scales the width of `cell` by `factor`, mimicking gate repowering.
    ///
    /// This is the inflation operation the paper uses to create overlap
    /// workloads; pin offsets are scaled along with the width so pins stay
    /// on the cell.
    ///
    /// # Panics
    ///
    /// Panics if `factor` is not finite and positive.
    pub fn inflate_cell_width(&mut self, cell: CellId, factor: f64) {
        assert!(
            factor.is_finite() && factor > 0.0,
            "inflation factor must be positive"
        );
        let c = &mut self.cells[cell.index()];
        c.width *= factor;
        for &p in &c.pins {
            self.pins[p.index()].offset.x *= factor;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Netlist {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 4.0, 12.0, CellKind::Movable);
        let c = b.add_cell("c", 6.0, 12.0, CellKind::Movable);
        let m = b.add_cell("m", 40.0, 48.0, CellKind::FixedMacro);
        let p = b.add_cell("p", 1.0, 1.0, CellKind::Pad);
        let n1 = b.add_net("n1");
        let n2 = b.add_net("n2");
        b.connect(a, n1, PinDir::Output, 2.0, 6.0);
        b.connect(c, n1, PinDir::Input, 0.0, 6.0);
        b.connect(c, n2, PinDir::Output, 6.0, 6.0);
        b.connect(m, n2, PinDir::Input, 0.0, 24.0);
        b.connect(p, n2, PinDir::Input, 0.0, 0.0);
        b.build().expect("valid netlist")
    }

    #[test]
    fn counts() {
        let n = tiny();
        assert_eq!(n.num_cells(), 4);
        assert_eq!(n.num_nets(), 2);
        assert_eq!(n.num_pins(), 5);
    }

    #[test]
    fn movable_iteration_skips_macros_and_pads() {
        let n = tiny();
        assert_eq!(n.movable_cell_ids().count(), 2);
        assert_eq!(n.macro_ids().count(), 1);
    }

    #[test]
    fn driver_lookup() {
        let n = tiny();
        let n1 = NetId::new(0);
        let d = n.driver_of(n1).expect("n1 has a driver");
        assert_eq!(n.pin(d).dir, PinDir::Output);
        assert_eq!(n.cell(n.pin(d).cell).name, "a");
    }

    #[test]
    fn movable_area_excludes_macros() {
        let n = tiny();
        assert_eq!(n.movable_area(), 4.0 * 12.0 + 6.0 * 12.0);
    }

    #[test]
    fn inflation_scales_width_and_pins() {
        let mut n = tiny();
        let c = CellId::new(1);
        let old_pin_x: Vec<f64> = n.cell(c).pins.iter().map(|&p| n.pin(p).offset.x).collect();
        n.inflate_cell_width(c, 1.6);
        assert!((n.cell(c).width - 9.6).abs() < 1e-12);
        for (&p, ox) in n.cell(c).pins.clone().iter().zip(old_pin_x) {
            assert!((n.pin(p).offset.x - ox * 1.6).abs() < 1e-12);
        }
        // Height untouched.
        assert_eq!(n.cell(c).height, 12.0);
    }

    #[test]
    fn cell_kind_predicates() {
        assert!(CellKind::Movable.is_movable());
        assert!(!CellKind::FixedMacro.is_movable());
        assert!(!CellKind::Pad.is_movable());
        assert!(CellKind::Movable.occupies_area());
        assert!(CellKind::FixedMacro.occupies_area());
        assert!(!CellKind::Pad.occupies_area());
    }
}
