//! The `GREED` baseline: sequential nearest-gap (slide-and-spiral)
//! legalization.
//!
//! The paper describes GREED as: sort all the cells, place them
//! sequentially; try the original location first, and if it is occupied
//! perform a spiral search outward for the nearest legal location. Its
//! characteristic failure mode — and the reason diffusion beats it — is
//! that cells processed late find their neighborhoods full and get
//! launched far away, destroying relative order.

use crate::occupancy::{row_segments, RowOccupancy};
use crate::Legalizer;
use dpm_geom::{Point, Rect};
use dpm_netlist::Netlist;
use dpm_place::{Die, Placement};

/// The greedy spiral-search legalizer (`GREED` in the paper's tables).
///
/// # Examples
///
/// ```
/// use dpm_gen::{CircuitSpec, InflationSpec};
/// use dpm_legalize::{GreedyLegalizer, Legalizer};
///
/// let mut bench = CircuitSpec::small(9).generate();
/// bench.inflate(&InflationSpec::random_width(0.1, 1.6, 2));
/// let outcome = GreedyLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
/// assert!(outcome.is_legal);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GreedyLegalizer {
    _private: (),
}

impl GreedyLegalizer {
    /// Creates the legalizer.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Legalizer for GreedyLegalizer {
    fn name(&self) -> &str {
        "GREED"
    }

    fn legalize_in_place(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) {
        let macros: Vec<Rect> = netlist
            .macro_ids()
            .map(|m| placement.cell_rect(netlist, m))
            .collect();
        let mut rows: Vec<RowOccupancy> = row_segments(die, &macros)
            .into_iter()
            .map(RowOccupancy::new)
            .collect();

        // Process cells in x order (stable, deterministic).
        let mut order: Vec<_> = netlist.movable_cell_ids().collect();
        order.sort_by(|&a, &b| {
            let pa = placement.get(a);
            let pb = placement.get(b);
            pa.x.total_cmp(&pb.x)
                .then(pa.y.total_cmp(&pb.y))
                .then(a.cmp(&b))
        });

        for cell in order {
            let w = netlist.cell(cell).width;
            let pos = placement.get(cell);
            let home_row = die.row_of_y(die.snap_y(pos.y) + 1e-9);

            // Spiral over rows by increasing vertical distance; within a
            // row take the nearest horizontal fit. Stop as soon as the
            // best candidate cannot be beaten by rows further out.
            let mut best: Option<(f64, usize, f64)> = None; // (cost, row, x)
            let n_rows = rows.len();
            for radius in 0..n_rows {
                let dy = radius as f64 * die.row_height();
                if let Some((cost, _, _)) = best {
                    if dy > cost {
                        break;
                    }
                }
                let mut candidates = Vec::new();
                if radius == 0 {
                    candidates.push(home_row);
                } else {
                    if home_row >= radius {
                        candidates.push(home_row - radius);
                    }
                    if home_row + radius < n_rows {
                        candidates.push(home_row + radius);
                    }
                }
                for r in candidates {
                    if let Some(x) = rows[r].nearest_fit(pos.x, w) {
                        let cost = dy + (x - pos.x).abs();
                        if best.map(|(c, _, _)| cost < c).unwrap_or(true) {
                            best = Some((cost, r, x));
                        }
                    }
                }
            }

            if let Some((_, r, x)) = best {
                rows[r].insert(x, w);
                placement.set(cell, Point::new(x, die.row(r).y));
            }
            // No fit anywhere: leave the cell; the legality check will
            // report it (only happens on infeasibly full dies).
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util;
    use dpm_place::{check_legality, MovementStats};

    #[test]
    fn legalizes_inflated_benchmark() {
        let mut bench = test_util::inflated_small(31);
        let outcome =
            GreedyLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn legalizes_hotspot_benchmark() {
        let mut bench = test_util::hotspot_small(32);
        let outcome =
            GreedyLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn respects_macros() {
        let mut bench = test_util::with_macros(33);
        let outcome =
            GreedyLegalizer::new().legalize(&bench.netlist, &bench.die, &mut bench.placement);
        assert!(outcome.is_legal, "{outcome}");
        // No cell overlaps any macro.
        let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 0);
        assert_eq!(report.violation_count, 0);
    }

    #[test]
    fn legal_input_is_a_fixpoint_up_to_snapping() {
        let bench = dpm_gen::CircuitSpec::small(34).generate();
        let mut p = bench.placement.clone();
        GreedyLegalizer::new().legalize(&bench.netlist, &bench.die, &mut p);
        let m = MovementStats::between(&bench.netlist, &bench.placement, &p);
        assert_eq!(m.moved, 0, "legal cells moved: {m}");
    }

    #[test]
    fn deterministic() {
        let mut a = test_util::inflated_small(35);
        let mut b = test_util::inflated_small(35);
        GreedyLegalizer::new().legalize(&a.netlist, &a.die, &mut a.placement);
        GreedyLegalizer::new().legalize(&b.netlist, &b.die, &mut b.placement);
        assert_eq!(a.placement, b.placement);
    }
}
