//! Volumetric migration: relieve a 3D-IC hotspot through the tier axis.
//!
//! Generates a 3-tier stack whose middle tier is packed far past
//! capacity while its neighbors have headroom — the situation a planar
//! migrator cannot fix without blowing up wirelength, because the spare
//! area is *above and below* the hotspot, not beside it. Runs the 3D
//! diffusion engine directly, prints the per-tier density before and
//! after, and counts the cells that changed tier. Then routes the same
//! job through a 2-slab [`VolRouter`](diffuplace::serve::VolRouter) and
//! checks the placement is bit-identical — slab count is an operational
//! knob, not a quality knob.
//!
//! Run with: `cargo run --release --example volumetric_hotspot`

use diffuplace::diffusion::{splat_volume, DiffusionConfig, SolverKind, VolumetricDiffusion};
use diffuplace::gen::VolCircuitSpec;
use diffuplace::place::BinGrid;
use diffuplace::serve::wire::{JobKind, JobRequest, VolRequestExt};
use diffuplace::serve::{VolRouter, VolRouterConfig};

/// Max bin density of each tier of a volumetric placement.
fn tier_maxima(
    bench: &diffuplace::gen::VolBenchmark,
    vp: &diffuplace::diffusion::VolPlacement,
    bin_size: f64,
) -> Vec<f64> {
    let grid = BinGrid::new(bench.die.outline(), bin_size);
    let nz = bench.layers();
    let (field, _) = splat_volume(&bench.netlist, vp, &grid, nz);
    let nxy = grid.len();
    (0..nz)
        .map(|t| {
            field[t * nxy..(t + 1) * nxy]
                .iter()
                .fold(0.0f64, |m, &d| m.max(d))
        })
        .collect()
}

fn main() {
    // Three tiers, 400 cells each; tier 1 generated as a dense central
    // pile with staggered depths (a z-symmetric spike would sit at a
    // zero of the vertical gradient and could only spread in-plane).
    let bench = VolCircuitSpec::small(42).with_hotspot(1).generate();
    let cfg = DiffusionConfig::default().with_solver(SolverKind::Ftcs);
    let nz = bench.layers();

    println!(
        "stack: {} tiers, {} cells, die {:.0}x{:.0}",
        nz,
        bench.netlist.num_cells(),
        bench.die.outline().width(),
        bench.die.outline().height()
    );
    let before = tier_maxima(&bench, &bench.placement, cfg.bin_size);
    println!("max bin density per tier before migration:");
    for (t, m) in before.iter().enumerate() {
        println!(
            "  tier {t}: {m:>5.2}{}",
            if *m > cfg.d_max { "  <- overfull" } else { "" }
        );
    }

    // Direct 3D run.
    let mut vp = bench.placement.clone();
    let start_z = vp.z.clone();
    let result = VolumetricDiffusion::new(cfg.clone(), nz).run(&bench.netlist, &bench.die, &mut vp);
    println!(
        "\ndirect 3D run: {} steps, converged: {}",
        result.steps, result.converged
    );

    let after = tier_maxima(&bench, &vp, cfg.bin_size);
    println!("max bin density per tier after migration:");
    for (t, m) in after.iter().enumerate() {
        println!("  tier {t}: {m:>5.2}");
    }
    // Depth is continuous: the splat interpolates a cell between the
    // two tiers its z sits between, so even sub-tier drift offloads
    // real area onto the neighbors (visible above as tiers 0 and 2
    // absorbing density). Count the cells that drifted vertically.
    let (mut drifted, mut max_dz) = (0usize, 0.0f64);
    for c in bench.netlist.movable_cell_ids() {
        let dz = (vp.z[c.index()] - start_z[c.index()]).abs();
        max_dz = max_dz.max(dz);
        if dz > 0.05 {
            drifted += 1;
        }
    }
    println!("cells that migrated vertically (|dz| > 0.05 tiers): {drifted}, max |dz| {max_dz:.2} — the z axis is a real relief valve");

    // The same job through the z-slab router: two slabs, halo-exchange
    // rounds of one exact FTCS step each. Bit-identical by contract.
    let req = JobRequest {
        id: 1,
        deadline_ms: 0,
        progress_stride: 0,
        kind: JobKind::Global,
        design: "volumetric_hotspot".into(),
        config: cfg,
        netlist: bench.netlist.clone(),
        die: bench.die.clone(),
        placement: bench.placement.xy.clone(),
        vol: Some(VolRequestExt {
            nz: nz as u32,
            z0: 0,
            global_nz: nz as u32,
            exact_steps: None,
            z: bench.placement.z.clone(),
            field: None,
        }),
        trace: None,
    };
    let router = VolRouter::in_process(VolRouterConfig {
        slabs: 2,
        ..VolRouterConfig::default()
    });
    let reply = router.route(&req).expect("volumetric job routes");
    let routed_xy = reply.response.positions;
    let routed_z = reply.response.vol.expect("volumetric reply").z;
    assert_eq!(
        routed_xy,
        vp.xy.as_slice().to_vec(),
        "slab routing changed the placement"
    );
    assert_eq!(routed_z, vp.z, "slab routing changed the depths");
    println!(
        "\n2-slab routed run: {} rounds across {} slabs — bit-identical to the direct run",
        reply.rounds, reply.slabs
    );
    let trace = &reply.max_density_trace;
    println!(
        "max live density trace: {:.2} -> {:.2} (monotone non-increasing over {} samples)",
        trace.first().expect("non-empty"),
        trace.last().expect("non-empty"),
        trace.len()
    );
}
