//! Row occupancy tracking shared by the gap-searching legalizers.

use dpm_geom::Rect;
use dpm_place::Die;

/// Occupied intervals of one standard-cell row, kept sorted by start.
///
/// Supports the two queries the greedy/Tetris legalizers need: "where is
/// the free gap of width `w` nearest to `x`?" and "what is the leftmost
/// free position of width `w`?".
#[derive(Debug, Clone, Default)]
pub(crate) struct RowOccupancy {
    /// Sorted, non-overlapping occupied `[start, end)` intervals.
    occupied: Vec<(f64, f64)>,
    /// Usable `[start, end)` segments of the row (die minus macros).
    segments: Vec<(f64, f64)>,
}

impl RowOccupancy {
    pub fn new(segments: Vec<(f64, f64)>) -> Self {
        Self {
            occupied: Vec::new(),
            segments,
        }
    }

    /// Total free width remaining.
    #[allow(dead_code)] // part of the occupancy API; exercised in tests
    pub fn free_width(&self) -> f64 {
        let seg: f64 = self.segments.iter().map(|&(s, e)| e - s).sum();
        let occ: f64 = self.occupied.iter().map(|&(s, e)| e - s).sum();
        seg - occ
    }

    /// Marks `[start, start + w)` occupied.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the interval overlaps an existing one.
    pub fn insert(&mut self, start: f64, w: f64) {
        let end = start + w;
        let idx = self.occupied.partition_point(|&(s, _)| s < start);
        debug_assert!(
            idx == 0 || self.occupied[idx - 1].1 <= start + 1e-9,
            "overlap with previous interval"
        );
        debug_assert!(
            idx == self.occupied.len() || end <= self.occupied[idx].0 + 1e-9,
            "overlap with next interval"
        );
        self.occupied.insert(idx, (start, end));
    }

    /// The legal x-position of width `w` nearest to `x`, or `None` if the
    /// row has no gap that wide.
    pub fn nearest_fit(&self, x: f64, w: f64) -> Option<f64> {
        let mut best: Option<f64> = None;
        let mut best_d = f64::INFINITY;
        for gap in self.gaps() {
            let (gs, ge) = gap;
            if ge - gs < w - 1e-9 {
                continue;
            }
            // Closest position for the cell's left edge within the gap
            // (the upper bound can dip a hair below `gs` when the gap
            // width equals `w` up to float noise).
            let pos = x.clamp(gs, (ge - w).max(gs));
            let d = (pos - x).abs();
            if d < best_d {
                best_d = d;
                best = Some(pos);
            }
        }
        best
    }

    /// The leftmost position with at least `w` free, at or after `from`.
    #[allow(dead_code)] // part of the occupancy API; exercised in tests
    pub fn leftmost_fit(&self, from: f64, w: f64) -> Option<f64> {
        for (gs, ge) in self.gaps() {
            let start = gs.max(from);
            if ge - start >= w - 1e-9 {
                return Some(start);
            }
        }
        None
    }

    /// Iterates over free gaps (segment minus occupied), in x order.
    fn gaps(&self) -> Vec<(f64, f64)> {
        let mut gaps = Vec::new();
        for &(ss, se) in &self.segments {
            let mut cursor = ss;
            for &(os, oe) in &self.occupied {
                if oe <= ss || os >= se {
                    continue;
                }
                if os > cursor {
                    gaps.push((cursor, os.min(se)));
                }
                cursor = cursor.max(oe);
                if cursor >= se {
                    break;
                }
            }
            if cursor < se {
                gaps.push((cursor, se));
            }
        }
        gaps
    }
}

/// Builds the usable segments of every row: the die span minus macro
/// footprints.
pub(crate) fn row_segments(die: &Die, macros: &[Rect]) -> Vec<Vec<(f64, f64)>> {
    let mut out = Vec::with_capacity(die.num_rows());
    for row in die.rows() {
        let row_rect = Rect::new(row.llx, row.y, row.urx, row.y + die.row_height());
        let mut segs = vec![(row.llx, row.urx)];
        for mr in macros {
            if !mr.intersects(&row_rect) {
                continue;
            }
            let mut next = Vec::new();
            for (s, e) in segs {
                let cut_lo = mr.llx.max(s);
                let cut_hi = mr.urx.min(e);
                if cut_lo >= e || cut_hi <= s {
                    next.push((s, e));
                    continue;
                }
                if cut_lo - s > 1e-9 {
                    next.push((s, cut_lo));
                }
                if e - cut_hi > 1e-9 {
                    next.push((cut_hi, e));
                }
            }
            segs = next;
        }
        out.push(segs);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> RowOccupancy {
        RowOccupancy::new(vec![(0.0, 100.0)])
    }

    #[test]
    fn empty_row_fits_anywhere() {
        let r = row();
        assert_eq!(r.nearest_fit(40.0, 10.0), Some(40.0));
        assert_eq!(r.leftmost_fit(0.0, 10.0), Some(0.0));
        assert_eq!(r.free_width(), 100.0);
    }

    #[test]
    fn nearest_fit_avoids_occupied() {
        let mut r = row();
        r.insert(40.0, 20.0); // occupies 40..60
                              // Asking for x=45: nearest valid left edge is 30 (ends at 40).
        let pos = r.nearest_fit(45.0, 10.0).expect("fits");
        assert_eq!(pos, 30.0);
        // Asking for x=58 prefers the right side (60).
        let pos = r.nearest_fit(58.0, 10.0).expect("fits");
        assert_eq!(pos, 60.0);
    }

    #[test]
    fn gap_too_small_is_skipped() {
        let mut r = RowOccupancy::new(vec![(0.0, 30.0)]);
        r.insert(0.0, 12.0);
        r.insert(20.0, 10.0);
        // Gap 12..20 is 8 wide; a 10-wide cell cannot fit anywhere.
        assert_eq!(r.nearest_fit(14.0, 10.0), None);
        assert_eq!(r.nearest_fit(14.0, 8.0), Some(12.0));
    }

    #[test]
    fn leftmost_fit_respects_from() {
        let mut r = row();
        r.insert(0.0, 10.0);
        assert_eq!(r.leftmost_fit(0.0, 5.0), Some(10.0));
        assert_eq!(r.leftmost_fit(50.0, 5.0), Some(50.0));
    }

    #[test]
    fn segments_split_by_macro() {
        let die = Die::new(100.0, 36.0, 12.0);
        let macros = vec![Rect::new(40.0, 0.0, 60.0, 24.0)];
        let segs = row_segments(&die, &macros);
        assert_eq!(segs[0], vec![(0.0, 40.0), (60.0, 100.0)]);
        assert_eq!(segs[1], vec![(0.0, 40.0), (60.0, 100.0)]);
        assert_eq!(segs[2], vec![(0.0, 100.0)]);
    }

    #[test]
    fn occupancy_with_segments() {
        let mut r = RowOccupancy::new(vec![(0.0, 40.0), (60.0, 100.0)]);
        // A 50-wide cell fits nowhere (no segment is wide enough).
        assert_eq!(r.nearest_fit(10.0, 50.0), None);
        r.insert(0.0, 40.0);
        // First segment full; nearest fit lands in the second.
        assert_eq!(r.nearest_fit(10.0, 10.0), Some(60.0));
        assert_eq!(r.free_width(), 40.0);
    }
}
