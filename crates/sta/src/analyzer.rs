//! Topological arrival/required-time propagation.

use crate::DelayModel;
use dpm_netlist::{levelize, CellId, Netlist, PinDir};
use dpm_place::Placement;
use std::fmt;

/// Timing metrics of a placement.
#[derive(Debug, Clone, PartialEq)]
pub struct TimingReport {
    /// Worst slack over all endpoints (negative = failing).
    pub wns: f64,
    /// Figure of merit: the sum of negative endpoint slacks (≤ 0). The
    /// paper's FOM — "weighted area under the timing histogram of the
    /// paths with negative slack".
    pub fom: f64,
    /// Number of endpoints analyzed.
    pub endpoints: usize,
    /// Number of endpoints with negative slack.
    pub failing_endpoints: usize,
    /// Arrival time per cell (output of its driver stage); `f64::NAN` for
    /// cells on combinational cycles.
    pub arrival: Vec<f64>,
    /// Slack per endpoint (same order as
    /// [`TimingAnalyzer::endpoints`]).
    pub slacks: Vec<f64>,
}

impl TimingReport {
    /// Endpoint slack histogram: `bins` equal-width buckets spanning
    /// `[wns, 0)`, counting failing endpoints per bucket — the "timing
    /// histogram of the paths with negative slack" under which the
    /// paper's FOM is the weighted area. Returns the bucket counts and
    /// the bucket width; empty when nothing fails.
    ///
    /// # Examples
    ///
    /// ```
    /// # use dpm_sta::TimingReport;
    /// let report = TimingReport {
    ///     wns: -2.0,
    ///     fom: -3.0,
    ///     endpoints: 3,
    ///     failing_endpoints: 2,
    ///     arrival: vec![],
    ///     slacks: vec![-2.0, -1.0, 0.5],
    /// };
    /// let (hist, width) = report.slack_histogram(4);
    /// assert_eq!(hist.iter().sum::<usize>(), 2);
    /// assert!((width - 0.5).abs() < 1e-12);
    /// ```
    pub fn slack_histogram(&self, bins: usize) -> (Vec<usize>, f64) {
        if self.wns >= 0.0 || bins == 0 {
            return (vec![0; bins], 0.0);
        }
        let width = -self.wns / bins as f64;
        let mut hist = vec![0usize; bins];
        for &s in &self.slacks {
            if s < 0.0 {
                let b = (((s - self.wns) / width) as usize).min(bins - 1);
                hist[b] += 1;
            }
        }
        (hist, width)
    }
}

impl fmt::Display for TimingReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "WNS {:.3}, FOM {:.3}, {}/{} endpoints failing",
            self.wns, self.fom, self.failing_endpoints, self.endpoints
        )
    }
}

/// A static timing analyzer bound to a netlist's topology.
///
/// Construction levelizes the netlist once; [`analyze`](Self::analyze)
/// can then be called repeatedly against different placements (as the
/// benchmark harness does when comparing legalizers).
///
/// Endpoints are cells with no fanout (typically output pads). Start
/// points are cells with no fanin (input pads); their arrival time is 0.
/// Cells trapped on combinational cycles are skipped with NAN arrival.
#[derive(Debug, Clone)]
pub struct TimingAnalyzer {
    order: Vec<CellId>,
    endpoints: Vec<CellId>,
    model: DelayModel,
}

impl TimingAnalyzer {
    /// Builds an analyzer for `netlist` with the given delay model.
    pub fn new(netlist: &Netlist, model: DelayModel) -> Self {
        let lv = levelize(netlist);
        // Endpoints: cells that drive no net with sinks.
        let mut has_fanout = vec![false; netlist.num_cells()];
        for net in netlist.net_ids() {
            let Some(d) = netlist.driver_of(net) else {
                continue;
            };
            let sinks = netlist
                .net(net)
                .pins
                .iter()
                .any(|&p| netlist.pin(p).dir == PinDir::Input);
            if sinks {
                has_fanout[netlist.pin(d).cell.index()] = true;
            }
        }
        let endpoints = lv
            .order
            .iter()
            .copied()
            .filter(|c| !has_fanout[c.index()])
            .collect();
        Self {
            order: lv.order,
            endpoints,
            model,
        }
    }

    /// The delay model in use.
    pub fn model(&self) -> &DelayModel {
        &self.model
    }

    /// Endpoint cells (no fanout).
    pub fn endpoints(&self) -> &[CellId] {
        &self.endpoints
    }

    /// Propagates arrival times through the DAG for `placement` and
    /// compares every endpoint against the `clock_period` required time.
    ///
    /// Endpoint slack is `clock_period − arrival`; WNS is the minimum
    /// slack, FOM the sum of negative slacks.
    pub fn analyze(
        &self,
        netlist: &Netlist,
        placement: &Placement,
        clock_period: f64,
    ) -> TimingReport {
        let mut arrival = vec![f64::NAN; netlist.num_cells()];
        for &c in &self.order {
            let a = if arrival[c.index()].is_nan() {
                0.0
            } else {
                arrival[c.index()]
            };
            // Output-of-cell time: arrival at inputs + intrinsic delay.
            let out_time = a + netlist.cell(c).delay;
            for &p in &netlist.cell(c).pins {
                let pin = netlist.pin(p);
                if pin.dir != PinDir::Output {
                    continue;
                }
                for &q in &netlist.net(pin.net).pins {
                    let sink = netlist.pin(q);
                    if sink.dir != PinDir::Input {
                        continue;
                    }
                    let wire = self.model.net_delay(netlist, placement, pin.net, p, q);
                    let t = out_time + wire;
                    let slot = &mut arrival[sink.cell.index()];
                    if slot.is_nan() || *slot < t {
                        *slot = t;
                    }
                }
            }
            if arrival[c.index()].is_nan() {
                arrival[c.index()] = a;
            }
        }

        let mut wns = f64::INFINITY;
        let mut fom = 0.0;
        let mut failing = 0;
        let mut slacks = Vec::with_capacity(self.endpoints.len());
        for &e in &self.endpoints {
            let a = arrival[e.index()];
            if a.is_nan() {
                continue;
            }
            let slack = clock_period - (a + netlist.cell(e).delay);
            slacks.push(slack);
            wns = wns.min(slack);
            if slack < 0.0 {
                fom += slack;
                failing += 1;
            }
        }
        if self.endpoints.is_empty() {
            wns = 0.0;
        }
        TimingReport {
            wns,
            fom,
            endpoints: self.endpoints.len(),
            failing_endpoints: failing,
            arrival,
            slacks,
        }
    }

    /// Finds the smallest clock period at which the placement has zero
    /// failing endpoints (the critical-path delay). Useful for choosing a
    /// clock that leaves the paper's "Base" placements slightly critical.
    pub fn critical_path_delay(&self, netlist: &Netlist, placement: &Placement) -> f64 {
        let report = self.analyze(netlist, placement, 0.0);
        // With clock 0 every endpoint slack is -arrival; the worst is the
        // critical path.
        -report.wns
    }

    /// Extracts the critical path: the cells from a start point to the
    /// worst endpoint, in signal order. Returns an empty path for
    /// netlists without endpoints.
    ///
    /// Each cell's arrival time comes from exactly one worst fan-in; the
    /// path is recovered by walking those predecessors backwards from the
    /// worst endpoint.
    pub fn critical_path(&self, netlist: &Netlist, placement: &Placement) -> Vec<CellId> {
        let report = self.analyze(netlist, placement, 0.0);
        let Some(&worst) = self.endpoints.iter().min_by(|&&a, &&b| {
            let sa = -(report.arrival[a.index()] + netlist.cell(a).delay);
            let sb = -(report.arrival[b.index()] + netlist.cell(b).delay);
            sa.total_cmp(&sb)
        }) else {
            return Vec::new();
        };

        let mut path = vec![worst];
        let mut cur = worst;
        // Walk back: find the fan-in whose (arrival + cell delay + wire)
        // equals our arrival.
        'outer: loop {
            let target = report.arrival[cur.index()];
            if target <= 1e-12 {
                break;
            }
            for net in netlist.net_ids() {
                let Some(d) = netlist.driver_of(net) else {
                    continue;
                };
                let driver_pin = netlist.pin(d);
                let driver = driver_pin.cell;
                if driver == cur {
                    continue;
                }
                for &q in &netlist.net(net).pins {
                    let sink = netlist.pin(q);
                    if sink.dir != PinDir::Input || sink.cell != cur {
                        continue;
                    }
                    let wire = self.model.net_delay(netlist, placement, net, d, q);
                    let t = report.arrival[driver.index()] + netlist.cell(driver).delay + wire;
                    if (t - target).abs() < 1e-9 {
                        path.push(driver);
                        cur = driver;
                        continue 'outer;
                    }
                }
            }
            break; // no matching predecessor (start point reached)
        }
        path.reverse();
        path
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Point;
    use dpm_netlist::{CellKind, NetlistBuilder};

    /// pad → g1 → g2 → ... → gN (chain), cells at increasing x.
    fn chain(n: usize, spacing: f64) -> (Netlist, Placement) {
        let mut b = NetlistBuilder::new();
        let mut cells = vec![b.add_cell("pi", 1.0, 1.0, CellKind::Pad)];
        for i in 0..n {
            cells.push(b.add_cell(format!("g{i}"), 4.0, 12.0, CellKind::Movable));
        }
        for (i, w) in cells.windows(2).enumerate() {
            let net = b.add_net(format!("n{i}"));
            b.connect(w[0], net, PinDir::Output, 0.0, 0.0);
            b.connect(w[1], net, PinDir::Input, 0.0, 0.0);
        }
        let nl = b.build().expect("valid");
        let mut p = Placement::new(nl.num_cells());
        for (i, &c) in cells.iter().enumerate() {
            p.set(c, Point::new(i as f64 * spacing, 0.0));
        }
        (nl, p)
    }

    #[test]
    fn chain_arrival_accumulates() {
        let (nl, p) = chain(3, 10.0);
        let sta = TimingAnalyzer::new(&nl, DelayModel::new(0.1, 0.0));
        let r = sta.analyze(&nl, &p, 1000.0);
        // Each stage: cell delay 1.0 + wire 0.1 * 10 = 2.0 per hop after
        // the pad (pad delay 1.0 as well).
        // arrival(g2 end) = pad(1) + wire(1) + g1(1) + wire(1) + g2... —
        // just check monotonicity and positivity.
        assert!(r.wns > 0.0);
        assert_eq!(r.endpoints, 1);
        assert_eq!(r.failing_endpoints, 0);
        let cp = sta.critical_path_delay(&nl, &p);
        assert!((cp - (4.0 + 3.0)).abs() < 1e-9, "critical path {cp}");
        // 4 cell delays (pad + 3 gates) + 3 wire hops of 1.0 each.
    }

    #[test]
    fn stretching_the_chain_degrades_slack() {
        let (nl, p1) = chain(5, 10.0);
        let (_, p2) = chain(5, 50.0);
        let sta = TimingAnalyzer::new(&nl, DelayModel::default());
        let clock = 10.0;
        let near = sta.analyze(&nl, &p1, clock);
        let far = sta.analyze(&nl, &p2, clock);
        assert!(far.wns < near.wns);
    }

    #[test]
    fn tight_clock_produces_negative_fom() {
        let (nl, p) = chain(4, 20.0);
        let sta = TimingAnalyzer::new(&nl, DelayModel::default());
        let cp = sta.critical_path_delay(&nl, &p);
        let r = sta.analyze(&nl, &p, cp * 0.5);
        assert!(r.wns < 0.0);
        assert!(r.fom < 0.0);
        assert_eq!(r.failing_endpoints, 1);
        assert!((r.fom - r.wns).abs() < 1e-12, "single endpoint: fom == wns");
    }

    #[test]
    fn fom_sums_over_endpoints() {
        // One driver fanning out to two endpoint gates at different
        // distances.
        let mut b = NetlistBuilder::new();
        let pi = b.add_cell("pi", 1.0, 1.0, CellKind::Pad);
        let e1 = b.add_cell("e1", 4.0, 12.0, CellKind::Movable);
        let e2 = b.add_cell("e2", 4.0, 12.0, CellKind::Movable);
        let n = b.add_net("n");
        b.connect(pi, n, PinDir::Output, 0.0, 0.0);
        b.connect(e1, n, PinDir::Input, 0.0, 0.0);
        b.connect(e2, n, PinDir::Input, 0.0, 0.0);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(3);
        p.set(e1, Point::new(100.0, 0.0));
        p.set(e2, Point::new(200.0, 0.0));
        let sta = TimingAnalyzer::new(&nl, DelayModel::new(0.01, 0.0));
        let r = sta.analyze(&nl, &p, 2.0);
        assert_eq!(r.endpoints, 2);
        assert_eq!(r.failing_endpoints, 2);
        assert!(
            r.fom < r.wns,
            "fom {} aggregates both failures (wns {})",
            r.fom,
            r.wns
        );
    }

    #[test]
    fn cyclic_cells_are_skipped() {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 1.0, 1.0, CellKind::Movable);
        let c = b.add_cell("c", 1.0, 1.0, CellKind::Movable);
        let n1 = b.add_net("n1");
        let n2 = b.add_net("n2");
        b.connect(a, n1, PinDir::Output, 0.0, 0.0);
        b.connect(c, n1, PinDir::Input, 0.0, 0.0);
        b.connect(c, n2, PinDir::Output, 0.0, 0.0);
        b.connect(a, n2, PinDir::Input, 0.0, 0.0);
        let nl = b.build().expect("valid");
        let p = Placement::new(2);
        let sta = TimingAnalyzer::new(&nl, DelayModel::default());
        let r = sta.analyze(&nl, &p, 10.0);
        assert_eq!(r.endpoints, 0);
        assert_eq!(r.wns, 0.0);
        assert!(r.arrival.iter().all(|a| a.is_nan()));
    }

    #[test]
    fn critical_path_walks_the_chain() {
        let (nl, p) = chain(4, 10.0);
        let sta = TimingAnalyzer::new(&nl, DelayModel::new(0.1, 0.0));
        let path = sta.critical_path(&nl, &p);
        // The chain is the only path: pad plus all four gates, in order.
        assert_eq!(path.len(), 5);
        for w in path.windows(2) {
            assert!(w[0].index() < w[1].index(), "path out of order: {path:?}");
        }
        // Path delay equals the critical-path delay.
        let cp = sta.critical_path_delay(&nl, &p);
        let manual: f64 = path.iter().map(|&c| nl.cell(c).delay).sum::<f64>()
            + 0.1 * 10.0 * (path.len() - 1) as f64;
        assert!((cp - manual).abs() < 1e-9, "cp {cp} vs path sum {manual}");
    }

    #[test]
    fn critical_path_picks_the_slower_branch() {
        // Diamond: pad → {fast, slow} → sink; the path must go through
        // the slow branch.
        let mut b = NetlistBuilder::new();
        let pad = b.add_cell_with_delay("pad", 1.0, 1.0, CellKind::Pad, 0.1);
        let fast = b.add_cell_with_delay("fast", 4.0, 12.0, CellKind::Movable, 0.5);
        let slow = b.add_cell_with_delay("slow", 4.0, 12.0, CellKind::Movable, 5.0);
        let sink = b.add_cell_with_delay("sink", 4.0, 12.0, CellKind::Movable, 1.0);
        let n0 = b.add_net("n0");
        b.connect(pad, n0, PinDir::Output, 0.0, 0.0);
        b.connect(fast, n0, PinDir::Input, 0.0, 0.0);
        b.connect(slow, n0, PinDir::Input, 0.0, 0.0);
        for (i, c) in [fast, slow].into_iter().enumerate() {
            let n = b.add_net(format!("m{i}"));
            b.connect(c, n, PinDir::Output, 0.0, 0.0);
            b.connect(sink, n, PinDir::Input, 0.0, 0.0);
        }
        let nl = b.build().expect("valid");
        let p = Placement::new(4);
        let sta = TimingAnalyzer::new(&nl, DelayModel::new(0.0, 0.0));
        let path = sta.critical_path(&nl, &p);
        assert_eq!(path, vec![pad, slow, sink]);
    }

    #[test]
    fn histogram_buckets_failing_endpoints() {
        // Two endpoints at different distances -> two distinct slacks.
        let mut b = NetlistBuilder::new();
        let pi = b.add_cell("pi", 1.0, 1.0, CellKind::Pad);
        let e1 = b.add_cell("e1", 4.0, 12.0, CellKind::Movable);
        let e2 = b.add_cell("e2", 4.0, 12.0, CellKind::Movable);
        let n = b.add_net("n");
        b.connect(pi, n, PinDir::Output, 0.0, 0.0);
        b.connect(e1, n, PinDir::Input, 0.0, 0.0);
        b.connect(e2, n, PinDir::Input, 0.0, 0.0);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(3);
        p.set(e1, Point::new(100.0, 0.0));
        p.set(e2, Point::new(300.0, 0.0));
        let sta = TimingAnalyzer::new(&nl, DelayModel::new(0.01, 0.0));
        let r = sta.analyze(&nl, &p, 2.5);
        assert_eq!(r.failing_endpoints, 2);
        let (hist, width) = r.slack_histogram(4);
        assert_eq!(hist.iter().sum::<usize>(), 2);
        assert!(width > 0.0);
        // The histogram's weighted area approximates |FOM|.
        let area: f64 = hist
            .iter()
            .enumerate()
            .map(|(i, &c)| c as f64 * (-r.wns - (i as f64 + 0.5) * width))
            .sum();
        assert!(
            (area - (-r.fom)).abs() < 2.0 * width,
            "area {area} vs fom {}",
            -r.fom
        );
    }

    #[test]
    fn histogram_empty_when_timing_met() {
        let (nl, p) = chain(2, 5.0);
        let sta = TimingAnalyzer::new(&nl, DelayModel::default());
        let r = sta.analyze(&nl, &p, 1e6);
        let (hist, width) = r.slack_histogram(8);
        assert!(hist.iter().all(|&c| c == 0));
        assert_eq!(width, 0.0);
    }

    #[test]
    fn report_display() {
        let (nl, p) = chain(2, 5.0);
        let sta = TimingAnalyzer::new(&nl, DelayModel::default());
        let r = sta.analyze(&nl, &p, 100.0);
        assert!(r.to_string().contains("WNS"));
    }
}
