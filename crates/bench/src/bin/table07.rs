//! Table VII — density overflow (max/total) of DIFF(G) vs DIFF(L),
//! measured on the diffusion output before final legalization.

use dpm_bench::suite::run_diffusion_comparison;
use dpm_bench::{fnum, print_table, scale_from_env, TextTable, CKT_DEFAULT_SCALE};

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Table VII at scale {scale}.");
    let rows = run_diffusion_comparison(scale);
    let mut t = TextTable::new(["testcase", "G max", "G total", "L max", "L total"]);
    let mut sums = [0.0f64; 4];
    for row in &rows {
        sums[0] += row.global_overflow.0;
        sums[1] += row.global_overflow.1;
        sums[2] += row.local_overflow.0;
        sums[3] += row.local_overflow.1;
        t.row([
            row.name.clone(),
            fnum(row.global_overflow.0),
            fnum(row.global_overflow.1),
            fnum(row.local_overflow.0),
            fnum(row.local_overflow.1),
        ]);
    }
    let impr_max = if sums[0] > 0.0 {
        (1.0 - sums[2] / sums[0]) * 100.0
    } else {
        0.0
    };
    let impr_tot = if sums[1] > 0.0 {
        (1.0 - sums[3] / sums[1]) * 100.0
    } else {
        0.0
    };
    t.row([
        "improvement".to_string(),
        String::new(),
        String::new(),
        format!("{}%", fnum(impr_max)),
        format!("{}%", fnum(impr_tot)),
    ]);
    print_table(
        "Table VII: density overflow (paper improvements: 78% max, 58% total)",
        &t,
    );
}
