//! Wire-version compatibility: a legacy v2 client against a v3 server.
//!
//! The v3 codec added control-plane frame kinds but changed nothing
//! about the v2 ones, and servers echo the codec version each request
//! arrived with. These tests pin both halves from the *client's* byte
//! perspective: every reply a hand-rolled v2 client reads — response,
//! stats, progress, error — carries a version-2 header and a payload
//! that re-encodes byte for byte under the v2 stamp, so a client
//! compiled against the old codec can never observe v3 on its wire.

use std::io::Read;
use std::net::TcpStream;

use dpm_diffusion::DiffusionConfig;
use dpm_gen::{CircuitSpec, InflationSpec};
use dpm_serve::wire::{
    decode_error, decode_progress, decode_response, decode_stats, encode_error, encode_progress,
    encode_request, encode_response, encode_stats, write_frame_versioned, FrameKind, JobKind,
    JobRequest, PayloadEncoding,
};
use dpm_serve::{ServeConfig, Server};

/// Reads one raw frame (header + payload) off a blocking stream.
fn read_raw_frame(stream: &mut TcpStream) -> (u16, u8, Vec<u8>) {
    let mut header = [0u8; 11];
    stream.read_exact(&mut header).expect("frame header");
    assert_eq!(&header[..4], b"DPMS", "magic");
    let version = u16::from_le_bytes([header[4], header[5]]);
    let kind = header[6];
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    let mut payload = vec![0u8; len];
    stream.read_exact(&mut payload).expect("frame payload");
    (version, kind, payload)
}

/// Asserts `payload` re-encodes to the identical bytes via `reencode`,
/// i.e. nothing in the v2 payload shape drifted under the v3 codec.
fn assert_reencodes(payload: &[u8], reencode: impl FnOnce(&[u8]) -> Vec<u8>) {
    let again = reencode(payload);
    assert_eq!(again, payload, "payload must re-encode byte for byte");
}

fn v2_request(id: u64, progress_stride: u32) -> JobRequest {
    let mut bench = CircuitSpec::with_size("compat_v2", 160, 7).generate();
    bench.inflate(&InflationSpec::centered(0.3, 0.25, 0xD1E));
    JobRequest {
        id,
        deadline_ms: 0,
        progress_stride,
        kind: JobKind::Local,
        design: format!("compat_v2_{id}"),
        config: DiffusionConfig::default(),
        netlist: bench.netlist,
        die: bench.die,
        placement: bench.placement,
        vol: None,
        trace: None,
    }
}

#[test]
fn v2_frames_round_trip_byte_for_byte_against_a_v3_server() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server starts");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.set_nodelay(true).expect("nodelay");

    // Job request, stamped v2 on the wire.
    let req = v2_request(1, 0);
    let payload = encode_request(&req, PayloadEncoding::Binary);
    write_frame_versioned(&mut stream, 2, FrameKind::Request, &payload).expect("send v2 request");
    let (version, kind, reply) = read_raw_frame(&mut stream);
    assert_eq!(version, 2, "reply header must echo the request's v2");
    assert_eq!(kind, 2, "Response frame kind byte");
    let resp = decode_response(&reply).expect("v2 client can decode the response");
    assert_eq!(resp.id, 1);
    assert!(resp.steps > 0, "the job must do real work");
    assert_reencodes(&reply, |p| encode_response(&decode_response(p).unwrap()));

    // Stats request on the same connection: also echoed at v2.
    write_frame_versioned(&mut stream, 2, FrameKind::StatsRequest, &[]).expect("send v2 stats");
    let (version, kind, stats) = read_raw_frame(&mut stream);
    assert_eq!(version, 2);
    assert_eq!(kind, 6, "Stats frame kind byte");
    let snap = decode_stats(&stats).expect("v2 client can decode stats");
    assert_eq!(snap.served, 1);
    assert_reencodes(&stats, |p| encode_stats(&decode_stats(p).unwrap()));

    server.shutdown();
}

#[test]
fn v2_progress_and_error_frames_are_echoed_at_v2() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server starts");
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");

    // A streaming request: progress frames must arrive v2-stamped too,
    // since a v2 client reads them with the old header check.
    let req = v2_request(2, 1);
    let payload = encode_request(&req, PayloadEncoding::Binary);
    write_frame_versioned(&mut stream, 2, FrameKind::Request, &payload).expect("send");
    let mut saw_progress = false;
    loop {
        let (version, kind, body) = read_raw_frame(&mut stream);
        assert_eq!(version, 2, "every frame on a v2 conversation is v2");
        match kind {
            4 => {
                saw_progress = true;
                assert_reencodes(&body, |p| encode_progress(&decode_progress(p).unwrap()));
            }
            2 => {
                assert_eq!(decode_response(&body).expect("response").id, 2);
                break;
            }
            other => panic!("unexpected frame kind {other}"),
        }
    }
    assert!(saw_progress, "stride-1 request must stream progress");

    // A malformed payload gets its error reply at v2 as well.
    write_frame_versioned(&mut stream, 2, FrameKind::Request, &[0xFF; 3]).expect("send junk");
    let (version, kind, err) = read_raw_frame(&mut stream);
    assert_eq!(version, 2);
    assert_eq!(kind, 3, "Error frame kind byte");
    let decoded = decode_error(&err).expect("typed error");
    assert_reencodes(&err, |p| encode_error(&decode_error(p).unwrap()));
    assert_eq!(decoded.id, 0, "undecodable request has no id to echo");

    server.shutdown();
}
