//! Property-based tests over the workload generator: every spec in a
//! realistic parameter box must yield a legal, DAG-structured, on-target
//! benchmark — the foundation the whole evaluation rests on.

use diffuplace::bookshelf::{load_design, BookshelfDesign};
use diffuplace::gen::{CircuitSpec, InflationSpec, WorkloadStats};
use diffuplace::netlist::levelize;
use diffuplace::place::{check_legality, hpwl};
use proptest::prelude::*;

fn arb_spec() -> impl Strategy<Value = CircuitSpec> {
    (
        200usize..800,
        0.4..0.85f64,
        prop_oneof![Just(0usize), Just(1), Just(2)],
        10usize..80,
        1usize..8,
        0..1000u64,
    )
        .prop_map(|(cells, util, macros, cluster, gap, seed)| {
            CircuitSpec::with_size("prop", cells, seed)
                .with_utilization(util)
                .with_local_utilization(util.max(0.88))
                .with_clusters_per_gap(gap)
                .with_macros(macros)
                .prop_cluster(cluster)
        })
}

trait SpecExt {
    fn prop_cluster(self, cluster: usize) -> Self;
}
impl SpecExt for CircuitSpec {
    fn prop_cluster(mut self, cluster: usize) -> Self {
        self.cluster_size = cluster;
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn every_spec_generates_a_legal_dag(spec in arb_spec()) {
        let bench = spec.generate();
        let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 3);
        prop_assert!(report.is_legal(), "{report}");
        prop_assert!(levelize(&bench.netlist).is_acyclic());
        let stats = WorkloadStats::measure(&bench);
        prop_assert!(stats.utilization <= 0.95);
        prop_assert!(stats.peak_density <= 1.1, "peak {}", stats.peak_density);
    }

    #[test]
    fn inflation_monotone_in_target(seed in 0..500u64) {
        let mk = || CircuitSpec::with_size("mono", 400, seed).generate();
        let mut light = mk();
        let mut heavy = mk();
        let a = light.inflate(&InflationSpec::distributed(0.1, seed ^ 1));
        let b = heavy.inflate(&InflationSpec::distributed(0.4, seed ^ 1));
        prop_assert!(b > a, "heavier target must add more area: {a} vs {b}");
        let sa = WorkloadStats::measure(&light);
        let sb = WorkloadStats::measure(&heavy);
        prop_assert!(sb.overlap_fraction >= sa.overlap_fraction);
    }

    #[test]
    fn bookshelf_round_trip_for_any_spec(spec in arb_spec()) {
        let bench = spec.generate();
        let d = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
        let loaded = load_design(
            &d.write_nodes(),
            &d.write_nets(),
            &d.write_pl(),
            &d.write_scl(),
        ).expect("round trip parses");
        let a = hpwl(&bench.netlist, &bench.placement);
        let b = hpwl(&loaded.netlist, &loaded.placement);
        prop_assert!((a - b).abs() < 1e-6 * a.max(1.0), "HPWL drift {a} -> {b}");
        prop_assert_eq!(loaded.netlist.num_pins(), bench.netlist.num_pins());
    }
}
