//! Thermal-driven migration — the paper's "heat distribution"
//! application.
//!
//! Cells carry power; a coarse thermal map is the power density smoothed
//! by (what else) a few diffusion steps, since heat spreads diffusively
//! through the substrate. Cells in hot regions are then migrated down
//! the blended density+temperature gradient, and the placement is
//! re-legalized.
//!
//! Run with: `cargo run --release --example thermal_spreading`

use diffuplace::diffusion::{DiffusionConfig, DiffusionEngine, FieldMigration};
use diffuplace::gen::CircuitSpec;
use diffuplace::legalize::{run_legalizer, DetailedLegalizer};
use diffuplace::place::{hpwl, BinGrid, MovementStats, Placement};

fn main() {
    let bench = CircuitSpec::with_size("thermal", 2_000, 91).generate();
    let cfg = DiffusionConfig::default().with_bin_size(2.5 * bench.die.row_height());
    let grid = BinGrid::new(bench.die.outline(), cfg.bin_size);

    // Power model: wider cells burn more; one cluster is a hot block
    // (imagine a multiplier array) with 8x the power density.
    let hot_cells: Vec<_> = bench
        .netlist
        .movable_cell_ids()
        .skip(400)
        .take(120)
        .collect();
    let power_map = |placement: &Placement| -> Vec<f64> {
        let mut power = vec![0.0; grid.len()];
        for c in bench.netlist.movable_cell_ids() {
            let cell = bench.netlist.cell(c);
            let watts = cell.width * if hot_cells.contains(&c) { 8.0 } else { 1.0 };
            let b = grid.bin_of_point(placement.cell_center(&bench.netlist, c));
            power[grid.flat(b)] += watts;
        }
        // Heat spreads through the substrate: smooth the power map with a
        // few diffusion steps on its own grid.
        let mut heat = DiffusionEngine::from_raw(grid.nx(), grid.ny(), power, None);
        for _ in 0..8 {
            heat.step_density(0.25);
        }
        heat.densities().to_vec()
    };

    let t_before = power_map(&bench.placement);
    let peak_before = t_before.iter().cloned().fold(0.0f64, f64::max);
    println!(
        "before: TWL {:.0}, peak temperature {:.1} (arbitrary units)",
        hpwl(&bench.netlist, &bench.placement),
        peak_before
    );

    let mut placement = bench.placement.clone();
    FieldMigration::new(cfg)
        .with_weight(1.2)
        .with_steps(40)
        .run(&bench.netlist, &bench.die, &mut placement, &t_before);
    run_legalizer(
        &DetailedLegalizer::new(),
        &bench.netlist,
        &bench.die,
        &mut placement,
    );

    let t_after = power_map(&placement);
    let peak_after = t_after.iter().cloned().fold(0.0f64, f64::max);
    let moves = MovementStats::between(&bench.netlist, &bench.placement, &placement);
    println!(
        "after:  TWL {:.0}, peak temperature {:.1} ({:+.1}%)",
        hpwl(&bench.netlist, &placement),
        peak_after,
        (peak_after / peak_before - 1.0) * 100.0
    );
    println!(
        "perturbation: moved {} cells, max {:.1}, avg {:.2}",
        moves.moved, moves.max, moves.avg
    );
}
