//! Open-loop load generator for the `dpm-serve` migration service.
//!
//! Starts a server on an ephemeral port, replays a deterministic
//! arrival schedule (exponential inter-arrivals from `dpm-rng`) from a
//! pool of sender threads, and reports throughput plus p50/p95/p99/max
//! latency, split into queue wait and service time as measured by the
//! server and end-to-end wall time as seen by the client.
//!
//! Open-loop means arrivals do not wait for earlier replies: if the
//! server falls behind, requests pile into its bounded queue and the
//! `Overloaded` rejections are counted rather than hidden — the honest
//! way to measure a service under offered load.
//!
//! Usage: `cargo run --release --bin perf_serve [-- <output-path>] [--smoke]`
//!
//! `--smoke` runs a seconds-scale schedule (used by `scripts/ci.sh`) and
//! applies the same acceptance checks: every request answered, clean
//! shutdown, valid JSON written.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpm_diffusion::DiffusionConfig;
use dpm_gen::{Benchmark, CircuitSpec, InflationSpec};
use dpm_rng::Rng;
use dpm_serve::wire::{JobKind, JobRequest, PayloadEncoding, Reply};
use dpm_serve::{ServeClient, ServeConfig, Server};

struct LoadSpec {
    /// Concurrent sender threads (each with its own connection).
    senders: usize,
    /// Total requests in the schedule.
    requests: usize,
    /// Mean offered arrival rate, requests per second.
    rate_per_sec: f64,
    /// Cells per circuit preset (requests cycle through these).
    circuit_cells: &'static [usize],
    /// Server worker threads.
    workers: usize,
    /// Server queue capacity.
    queue_capacity: usize,
}

const FULL: LoadSpec = LoadSpec {
    senders: 4,
    requests: 48,
    rate_per_sec: 24.0,
    circuit_cells: &[200, 400],
    workers: 2,
    queue_capacity: 16,
};

const SMOKE: LoadSpec = LoadSpec {
    senders: 2,
    requests: 8,
    rate_per_sec: 16.0,
    circuit_cells: &[120],
    workers: 2,
    queue_capacity: 8,
};

/// One completed request as seen by its sender.
struct Observation {
    outcome: &'static str,
    queue_ns: u64,
    service_ns: u64,
    e2e_ns: u64,
}

fn bench_for(cells: usize, seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("serve", cells, seed).generate();
    b.inflate(&InflationSpec::distributed(0.12, seed ^ 0x51EE));
    b
}

/// Builds the whole request set up front so generation cost never
/// pollutes the measured window.
fn build_requests(spec: &LoadSpec) -> Vec<JobRequest> {
    (0..spec.requests)
        .map(|i| {
            let cells = spec.circuit_cells[i % spec.circuit_cells.len()];
            let b = bench_for(cells, 0xC0FFEE + i as u64);
            JobRequest {
                id: i as u64 + 1,
                deadline_ms: 0,
                kind: if i % 2 == 0 {
                    JobKind::Local
                } else {
                    JobKind::Global
                },
                config: DiffusionConfig::default(),
                netlist: b.netlist,
                die: b.die,
                placement: b.placement,
            }
        })
        .collect()
}

/// Deterministic exponential inter-arrival schedule: absolute offsets
/// from the load start, one per request.
fn arrival_schedule(spec: &LoadSpec, seed: u64) -> Vec<Duration> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..spec.requests)
        .map(|_| {
            // Inverse-CDF sample; (0,1] keeps ln() finite.
            let u = 1.0 - rng.random_f64();
            t += -u.ln() / spec.rate_per_sec;
            Duration::from_secs_f64(t)
        })
        .collect()
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

fn latency_json(name: &str, mut ns: Vec<u64>) -> String {
    ns.sort_unstable();
    format!(
        "\"{name}\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}}}",
        percentile(&ns, 50.0) as f64 / 1e3,
        percentile(&ns, 95.0) as f64 / 1e3,
        percentile(&ns, 99.0) as f64 / 1e3,
        ns.last().copied().unwrap_or(0) as f64 / 1e3,
    )
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let spec = if smoke { &SMOKE } else { &FULL };
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    eprintln!(
        "perf_serve{}: {} requests, {} senders, {:.0} req/s offered, {cores} hardware thread(s)",
        if smoke { " (smoke)" } else { "" },
        spec.requests,
        spec.senders,
        spec.rate_per_sec
    );

    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            queue_capacity: spec.queue_capacity,
            workers: spec.workers,
            ..ServeConfig::default()
        },
    )
    .expect("server binds an ephemeral port");
    let addr = server.local_addr();

    let requests = build_requests(spec);
    let schedule = arrival_schedule(spec, 0xA1157);
    let started = Arc::new(AtomicU64::new(0));

    // Sender k owns arrivals k, k+senders, k+2*senders, ... — open-loop
    // within the sender pool's ability to keep up.
    let t0 = Instant::now();
    let handles: Vec<_> = (0..spec.senders)
        .map(|k| {
            let mine: Vec<(Duration, JobRequest)> = requests
                .iter()
                .zip(&schedule)
                .skip(k)
                .step_by(spec.senders)
                .map(|(r, &d)| (d, r.clone()))
                .collect();
            let started = Arc::clone(&started);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                let mut obs = Vec::with_capacity(mine.len());
                for (offset, req) in mine {
                    if let Some(wait) = offset.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    started.fetch_add(1, Ordering::Relaxed);
                    let sent = Instant::now();
                    let reply = client
                        .request(&req, PayloadEncoding::Binary)
                        .expect("transport stays healthy");
                    let e2e_ns = sent.elapsed().as_nanos() as u64;
                    obs.push(match reply {
                        Reply::Ok(resp) => Observation {
                            outcome: "ok",
                            queue_ns: resp.queue_ns,
                            service_ns: resp.service_ns,
                            e2e_ns,
                        },
                        Reply::Rejected(e) => Observation {
                            outcome: e.code.as_str(),
                            queue_ns: 0,
                            service_ns: 0,
                            e2e_ns,
                        },
                    });
                }
                obs
            })
        })
        .collect();

    let observations: Vec<Observation> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("sender thread finishes"))
        .collect();
    let wall = t0.elapsed();
    let stats = server.shutdown();

    // Every scheduled request must have been answered one way or the
    // other, and the server must account for each admitted job.
    assert_eq!(observations.len(), spec.requests, "lost replies");
    assert_eq!(
        stats.admitted,
        stats.served + stats.deadline_expired,
        "shutdown left jobs unaccounted"
    );

    let ok: Vec<&Observation> = observations.iter().filter(|o| o.outcome == "ok").collect();
    let rejected = observations.len() - ok.len();
    let throughput = ok.len() as f64 / wall.as_secs_f64();
    eprintln!(
        "  {} ok / {} rejected in {:.2}s ({throughput:.1} req/s served)",
        ok.len(),
        rejected,
        wall.as_secs_f64()
    );

    let mut outcome_counts: Vec<(&'static str, usize)> = Vec::new();
    for o in &observations {
        match outcome_counts
            .iter_mut()
            .find(|(name, _)| *name == o.outcome)
        {
            Some((_, n)) => *n += 1,
            None => outcome_counts.push((o.outcome, 1)),
        }
    }
    let mut outcomes_json = String::new();
    for (i, (name, n)) in outcome_counts.iter().enumerate() {
        let sep = if i + 1 == outcome_counts.len() {
            ""
        } else {
            ", "
        };
        let _ = write!(outcomes_json, "\"{name}\": {n}{sep}");
    }

    let json = format!(
        "{{\n  \"bench\": \"perf_serve\",\n  \"mode\": \"{mode}\",\n  \"hardware_threads\": {cores},\n  \"config\": {{\"senders\": {senders}, \"requests\": {requests}, \"offered_rate_per_sec\": {rate:.1}, \"server_workers\": {workers}, \"queue_capacity\": {cap}, \"circuit_cells\": {cells:?}}},\n  \"wall_seconds\": {wall:.3},\n  \"served_per_sec\": {throughput:.2},\n  \"outcomes\": {{{outcomes}}},\n  \"latency\": {{\n    {queue},\n    {service},\n    {e2e}\n  }},\n  \"note\": \"Open-loop exponential arrivals from a fixed dpm-rng seed; queue/service split measured server-side, e2e client-side. Overloaded rejections are counted, not retried.\"\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        senders = spec.senders,
        requests = spec.requests,
        rate = spec.rate_per_sec,
        workers = spec.workers,
        cap = spec.queue_capacity,
        cells = spec.circuit_cells,
        wall = wall.as_secs_f64(),
        outcomes = outcomes_json,
        queue = latency_json("queue", ok.iter().map(|o| o.queue_ns).collect()),
        service = latency_json("service", ok.iter().map(|o| o.service_ns).collect()),
        e2e = latency_json("e2e", observations.iter().map(|o| o.e2e_ns).collect()),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
