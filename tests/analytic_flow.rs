//! The paper's fourth application as an asserted pipeline: quadratic
//! placement → diffusion spreading → detailed legalization, compared
//! against packing the analytic solution directly.

use diffuplace::diffusion::{DiffusionConfig, GlobalDiffusion};
use diffuplace::gen::CircuitSpec;
use diffuplace::legalize::{run_legalizer, DetailedLegalizer, TetrisLegalizer};
use diffuplace::netlist::CellId;
use diffuplace::place::{check_legality, hpwl, Placement};
use diffuplace::qplace::quadratic_place;

struct Flow {
    bench: diffuplace::gen::Benchmark,
    analytic: Placement,
    pairs: Vec<(CellId, CellId)>,
}

fn flow() -> Flow {
    let bench = CircuitSpec::with_size("analytic_it", 1_500, 401).generate();
    let analytic = quadratic_place(&bench.netlist, &bench.die, &bench.placement);
    let cells: Vec<CellId> = bench.netlist.movable_cell_ids().collect();
    let pairs = cells
        .windows(5)
        .map(|w| (w[0], w[4]))
        .filter(|&(a, b)| {
            (analytic.cell_center(&bench.netlist, a).x - analytic.cell_center(&bench.netlist, b).x)
                .abs()
                > 6.0
        })
        .take(400)
        .collect();
    Flow {
        bench,
        analytic,
        pairs,
    }
}

fn violations(f: &Flow, p: &Placement) -> usize {
    f.pairs
        .iter()
        .filter(|&&(a, b)| {
            (f.analytic.cell_center(&f.bench.netlist, a).x
                < f.analytic.cell_center(&f.bench.netlist, b).x)
                != (p.cell_center(&f.bench.netlist, a).x < p.cell_center(&f.bench.netlist, b).x)
        })
        .count()
}

fn spread_with_diffusion(f: &Flow) -> Placement {
    let mut p = f.analytic.clone();
    let cfg = DiffusionConfig::default()
        .with_bin_size(2.5 * f.bench.die.row_height())
        .with_delta(0.05);
    GlobalDiffusion::new(cfg).run(&f.bench.netlist, &f.bench.die, &mut p);
    run_legalizer(
        &DetailedLegalizer::new(),
        &f.bench.netlist,
        &f.bench.die,
        &mut p,
    );
    p
}

#[test]
fn diffusion_legalizes_the_analytic_pileup() {
    let f = flow();
    let p = spread_with_diffusion(&f);
    let report = check_legality(&f.bench.netlist, &f.bench.die, &p, 3);
    assert!(report.is_legal(), "{report}");
}

#[test]
fn diffusion_preserves_analytic_order_better_than_packing() {
    let f = flow();
    let p_diff = spread_with_diffusion(&f);

    let mut p_tetris = f.analytic.clone();
    run_legalizer(
        &TetrisLegalizer::new(),
        &f.bench.netlist,
        &f.bench.die,
        &mut p_tetris,
    );

    let v_diff = violations(&f, &p_diff);
    let v_tetris = violations(&f, &p_tetris);
    assert!(
        v_diff < v_tetris,
        "diffusion violations ({v_diff}) must beat packing ({v_tetris})"
    );
    assert!(
        hpwl(&f.bench.netlist, &p_diff) < hpwl(&f.bench.netlist, &p_tetris),
        "diffusion TWL must beat packing"
    );
}

#[test]
fn diffused_analytic_placement_is_competitive_with_constructive() {
    // Spreading the quadratic optimum smoothly yields a placement whose
    // wirelength is in the same league as (here: better than) the
    // cluster-constructive one — evidence the spreading really preserves
    // the analytic solution's quality.
    let f = flow();
    let p = spread_with_diffusion(&f);
    let constructive = hpwl(&f.bench.netlist, &f.bench.placement);
    let diffused = hpwl(&f.bench.netlist, &p);
    assert!(
        diffused < constructive * 1.2,
        "diffused analytic TWL {diffused} vs constructive {constructive}"
    );
}
