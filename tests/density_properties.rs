//! Randomized tests of the density-map machinery the diffusion engine
//! consumes, driven by the deterministic [`diffuplace::rng::Rng`].

use diffuplace::geom::{Point, Rect};
use diffuplace::netlist::{CellKind, Netlist, NetlistBuilder};
use diffuplace::place::{BinGrid, DensityMap, Placement};
use diffuplace::rng::Rng;

/// Random set of cells inside a 100×100 region.
fn random_cells(rng: &mut Rng) -> Vec<(f64, f64, f64, f64)> {
    let n = rng.random_range(1usize..40);
    (0..n)
        .map(|_| {
            (
                rng.random_range(0.0..88.0),
                rng.random_range(0.0..88.0),
                rng.random_range(2.0..12.0),
                rng.random_range(2.0..12.0),
            )
        })
        .collect()
}

fn build(cells: &[(f64, f64, f64, f64)]) -> (Netlist, Placement) {
    let mut b = NetlistBuilder::new();
    for (i, &(_, _, w, h)) in cells.iter().enumerate() {
        b.add_cell(format!("c{i}"), w, h, CellKind::Movable);
    }
    let nl = b.build().expect("valid");
    let mut p = Placement::new(nl.num_cells());
    for (i, &(x, y, _, _)) in cells.iter().enumerate() {
        p.set(diffuplace::netlist::CellId::new(i as u32), Point::new(x, y));
    }
    (nl, p)
}

/// Mass accounting: total density × bin area equals the total cell area
/// inside the region, for any placement (overlapping or not).
#[test]
fn density_conserves_area() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0xD1 ^ case);
        let cells = random_cells(&mut rng);
        let (nl, p) = build(&cells);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let d = DensityMap::from_placement(&nl, &p, grid.clone());
        let total_density: f64 = d.densities().iter().sum::<f64>() * grid.bin_area();
        let total_area: f64 = cells.iter().map(|&(_, _, w, h)| w * h).sum();
        assert!(
            (total_density - total_area).abs() < 1e-6 * total_area.max(1.0),
            "case {case}: density mass {total_density} vs cell area {total_area}"
        );
    }
}

/// The windowed average lies between the neighborhood's min and max raw
/// densities, and window 0 is the identity.
#[test]
fn windowed_average_bounds() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0xD2 ^ case);
        let cells = random_cells(&mut rng);
        let w = rng.random_range(0usize..4);
        let (nl, p) = build(&cells);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let d = DensityMap::from_placement(&nl, &p, grid.clone());
        let avg = d.windowed_average(w);
        if w == 0 {
            assert_eq!(avg.as_slice(), d.densities());
        }
        let nx = grid.nx();
        for (i, &a) in avg.iter().enumerate() {
            let (j, k) = (i % nx, i / nx);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for kk in k.saturating_sub(w)..=(k + w).min(grid.ny() - 1) {
                for jj in j.saturating_sub(w)..=(j + w).min(nx - 1) {
                    let v = d.densities()[kk * nx + jj];
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            assert!(
                a >= lo - 1e-9 && a <= hi + 1e-9,
                "case {case}: avg {a} outside [{lo}, {hi}]"
            );
        }
    }
}

/// Incremental move_cell equals a fresh recompute for any sequence of
/// moves.
#[test]
fn incremental_updates_match_recompute() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0xD3 ^ case);
        let cells = random_cells(&mut rng);
        let n_moves = rng.random_range(1usize..10);
        let (nl, mut p) = build(&cells);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let mut map = DensityMap::from_placement(&nl, &p, grid.clone());
        for _ in 0..n_moves {
            let raw = rng.random_range(0usize..40);
            let x = rng.random_range(0.0..88.0);
            let y = rng.random_range(0.0..88.0);
            let cell = diffuplace::netlist::CellId::new((raw % cells.len()) as u32);
            let old = p.cell_rect(&nl, cell);
            p.set(cell, Point::new(x, y));
            map.move_cell(&old, &p.cell_rect(&nl, cell));
        }
        let fresh = DensityMap::from_placement(&nl, &p, grid);
        for (a, b) in map.densities().iter().zip(fresh.densities()) {
            assert!(
                (a - b).abs() < 1e-9,
                "case {case}: incremental {a} vs fresh {b}"
            );
        }
    }
}

/// Overflow metrics: total overflow is monotone non-increasing in d_max,
/// and zero once d_max exceeds the peak.
#[test]
fn overflow_monotone_in_target() {
    for case in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0xD4 ^ case);
        let cells = random_cells(&mut rng);
        let (nl, p) = build(&cells);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let d = DensityMap::from_placement(&nl, &p, grid);
        let mut prev = f64::INFINITY;
        for dmax in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let o = d.total_overflow(dmax);
            assert!(o <= prev + 1e-12, "case {case}");
            prev = o;
        }
        assert_eq!(d.total_overflow(d.max_density() + 1e-9), 0.0, "case {case}");
    }
}
