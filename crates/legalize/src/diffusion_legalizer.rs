//! Diffusion-based legalization: the paper's `DIFF(G)` and `DIFF(L)`.
//!
//! This is the glue between the diffusion engine (the paper's
//! contribution, crate [`dpm_diffusion`]) and a complete legalizer:
//! diffusion spreads the placement until every bin is at the target
//! density, then the shared [detailed legalizer](crate::DetailedLegalizer)
//! snaps cells to rows and removes the small residual overlaps — exactly
//! the two-phase flow of the paper's Algorithm 1/3 plus "final
//! legalization".

use crate::detailed::detailed_legalize;
use crate::Legalizer;
use dpm_diffusion::{DiffusionConfig, DiffusionResult, GlobalDiffusion, LocalDiffusion};
use dpm_netlist::Netlist;
use dpm_place::{Die, Placement};

/// Which diffusion algorithm drives the spreading phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Global,
    Local,
}

/// Diffusion-based legalizer (`DIFF(G)` / `DIFF(L)`).
///
/// If no [`DiffusionConfig`] is supplied, a per-die default is derived at
/// run time: bins of 2.5 row heights (inside the paper's 2–4 row-height
/// sweet spot, Fig. 11), windows `W1 = 1, W2 = 2`, and
/// update period `N_U = 10` — shorter than the paper's 30 because on
/// concentrated hotspots the computed density diverges from the real
/// placement quickly, and our Table IX reproduction shows the measured
/// optimum at the shorter period.
///
/// # Examples
///
/// ```
/// use dpm_gen::{CircuitSpec, InflationSpec};
/// use dpm_legalize::{DiffusionLegalizer, Legalizer};
///
/// let mut bench = CircuitSpec::small(29).generate();
/// bench.inflate(&InflationSpec::centered(0.12, 0.3, 8));
/// let outcome = DiffusionLegalizer::local_default()
///     .legalize(&bench.netlist, &bench.die, &mut bench.placement);
/// assert!(outcome.is_legal);
/// ```
#[derive(Debug, Clone)]
pub struct DiffusionLegalizer {
    cfg: Option<DiffusionConfig>,
    mode: Mode,
}

impl DiffusionLegalizer {
    /// Global diffusion (`DIFF(G)`) with per-die default parameters.
    pub fn global_default() -> Self {
        Self {
            cfg: None,
            mode: Mode::Global,
        }
    }

    /// Robust local diffusion (`DIFF(L)`) with per-die default
    /// parameters.
    pub fn local_default() -> Self {
        Self {
            cfg: None,
            mode: Mode::Local,
        }
    }

    /// Global diffusion with an explicit configuration.
    pub fn global(cfg: DiffusionConfig) -> Self {
        Self {
            cfg: Some(cfg),
            mode: Mode::Global,
        }
    }

    /// Robust local diffusion with an explicit configuration.
    pub fn local(cfg: DiffusionConfig) -> Self {
        Self {
            cfg: Some(cfg),
            mode: Mode::Local,
        }
    }

    /// The effective configuration for a given die.
    pub fn effective_config(&self, die: &Die) -> DiffusionConfig {
        self.cfg.clone().unwrap_or_else(|| {
            DiffusionConfig::default()
                .with_bin_size(2.5 * die.row_height())
                .with_windows(1, 2)
                .with_update_period(10)
        })
    }

    /// Runs the diffusion phase *and* final legalization, returning the
    /// diffusion telemetry alongside (used by the benchmark harness to
    /// regenerate the paper's Figs. 9–10 and Tables VII–VIII).
    pub fn legalize_with_telemetry(
        &self,
        netlist: &Netlist,
        die: &Die,
        placement: &mut Placement,
    ) -> DiffusionResult {
        let cfg = self.effective_config(die);
        let result = match self.mode {
            Mode::Global => GlobalDiffusion::new(cfg).run(netlist, die, placement),
            Mode::Local => LocalDiffusion::new(cfg).run(netlist, die, placement),
        };
        detailed_legalize(netlist, die, placement);
        result
    }
}

impl Legalizer for DiffusionLegalizer {
    fn name(&self) -> &str {
        match self.mode {
            Mode::Global => "DIFF(G)",
            Mode::Local => "DIFF(L)",
        }
    }

    fn legalize_in_place(&self, netlist: &Netlist, die: &Die, placement: &mut Placement) {
        let _ = self.legalize_with_telemetry(netlist, die, placement);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_util;
    use dpm_place::MovementStats;

    #[test]
    fn global_legalizes_inflated_benchmark() {
        let mut bench = test_util::inflated_small(81);
        let outcome = DiffusionLegalizer::global_default().legalize(
            &bench.netlist,
            &bench.die,
            &mut bench.placement,
        );
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn local_legalizes_inflated_benchmark() {
        let mut bench = test_util::inflated_small(82);
        let outcome = DiffusionLegalizer::local_default().legalize(
            &bench.netlist,
            &bench.die,
            &mut bench.placement,
        );
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn local_legalizes_hotspot() {
        let mut bench = test_util::hotspot_small(83);
        let outcome = DiffusionLegalizer::local_default().legalize(
            &bench.netlist,
            &bench.die,
            &mut bench.placement,
        );
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn global_respects_macros() {
        let mut bench = test_util::with_macros(84);
        let outcome = DiffusionLegalizer::global_default().legalize(
            &bench.netlist,
            &bench.die,
            &mut bench.placement,
        );
        assert!(outcome.is_legal, "{outcome}");
    }

    #[test]
    fn local_moves_less_than_greedy_on_hotspot() {
        // The paper's headline: diffusion preserves the placement better
        // than discrete methods. Compare max movement against GREED.
        let bench0 = test_util::hotspot_small(85);

        let mut p_diff = bench0.placement.clone();
        DiffusionLegalizer::local_default().legalize(&bench0.netlist, &bench0.die, &mut p_diff);
        let m_diff = MovementStats::between(&bench0.netlist, &bench0.placement, &p_diff);

        let mut p_greed = bench0.placement.clone();
        crate::GreedyLegalizer::new().legalize(&bench0.netlist, &bench0.die, &mut p_greed);
        let m_greed = MovementStats::between(&bench0.netlist, &bench0.placement, &p_greed);

        assert!(
            m_diff.avg_sq <= m_greed.avg_sq * 2.0,
            "diffusion avg² movement {} should be comparable or better than GREED {}",
            m_diff.avg_sq,
            m_greed.avg_sq
        );
    }

    #[test]
    fn telemetry_is_returned() {
        let mut bench = test_util::hotspot_small(86);
        let r = DiffusionLegalizer::local_default().legalize_with_telemetry(
            &bench.netlist,
            &bench.die,
            &mut bench.placement,
        );
        assert!(r.steps > 0 || r.converged);
    }

    #[test]
    fn names_distinguish_modes() {
        assert_eq!(DiffusionLegalizer::global_default().name(), "DIFF(G)");
        assert_eq!(DiffusionLegalizer::local_default().name(), "DIFF(L)");
    }
}
