//! Explicit start/stop spans with a bounded ring-buffer recorder.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{Counter, Registry};
use crate::trace::TraceContext;

struct RecorderInner {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<VecDeque<SpanRecord>>,
    dropped: AtomicU64,
    /// Mirrors `dropped` into a scrapeable registry counter when the
    /// recorder was built with [`SpanRecorder::with_registry`].
    dropped_counter: Option<Counter>,
}

/// A completed span: a named wall-clock interval relative to the
/// recorder's creation instant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name, as passed to [`SpanRecorder::start`].
    pub name: String,
    /// Nanoseconds from recorder creation to span start.
    pub start_ns: u64,
    /// Nanoseconds from recorder creation to span end; `>= start_ns`.
    pub end_ns: u64,
    /// Distributed-trace correlation id; 0 for untraced spans.
    pub trace_id: u64,
    /// This span's id within the trace; 0 for untraced spans.
    pub span_id: u64,
    /// Parent span id; 0 at the root (or untraced).
    pub parent_id: u64,
}

impl SpanRecord {
    /// Span duration in nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns - self.start_ns
    }

    /// The span's position in its distributed trace, if traced.
    pub fn context(&self) -> Option<TraceContext> {
        (self.trace_id != 0).then_some(TraceContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_id: self.parent_id,
        })
    }
}

/// Collects completed [`Span`]s into a bounded ring buffer.
///
/// The newest `capacity` spans are retained; when a new span would
/// exceed the capacity, the oldest is discarded and counted in
/// [`SpanRecorder::dropped`]. Memory use is therefore bounded no matter
/// how long a server runs. Clones share the same buffer.
#[derive(Clone)]
pub struct SpanRecorder {
    inner: Arc<RecorderInner>,
}

impl SpanRecorder {
    /// Creates a recorder retaining at most `capacity` spans.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        Self::build(capacity, None)
    }

    /// Creates a recorder whose drop count is also exposed as the
    /// `spans_dropped` counter in `registry`'s text exposition.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn with_registry(capacity: usize, registry: &Registry) -> Self {
        Self::build(capacity, Some(registry.counter("spans_dropped")))
    }

    fn build(capacity: usize, dropped_counter: Option<Counter>) -> Self {
        assert!(capacity > 0, "span recorder capacity must be nonzero");
        Self {
            inner: Arc::new(RecorderInner {
                epoch: Instant::now(),
                capacity,
                ring: Mutex::new(VecDeque::with_capacity(capacity)),
                dropped: AtomicU64::new(0),
                dropped_counter,
            }),
        }
    }

    /// Starts a span; it is recorded when finished or dropped.
    pub fn start(&self, name: &str) -> Span {
        Span {
            recorder: self.clone(),
            name: name.to_string(),
            start_ns: self.now_ns(),
            ctx: None,
            finished: false,
        }
    }

    /// Starts a span carrying a distributed-trace context.
    pub fn start_traced(&self, name: &str, ctx: TraceContext) -> Span {
        Span {
            recorder: self.clone(),
            name: name.to_string(),
            start_ns: self.now_ns(),
            ctx: Some(ctx),
            finished: false,
        }
    }

    /// Records an already-measured interval under a trace context.
    ///
    /// For events observed only after the fact (e.g. a kernel reporting
    /// its elapsed time): the caller supplies both endpoints, in this
    /// recorder's epoch. `end_ns` is clamped to `>= start_ns`.
    pub fn record_traced(&self, name: &str, start_ns: u64, end_ns: u64, ctx: TraceContext) {
        self.push(SpanRecord {
            name: name.to_string(),
            start_ns,
            end_ns: end_ns.max(start_ns),
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
        });
    }

    /// Nanoseconds elapsed since the recorder was created.
    pub fn now_ns(&self) -> u64 {
        u64::try_from(self.inner.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Number of spans discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.dropped.load(Ordering::Relaxed)
    }

    /// Copies out the retained spans, oldest first.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.inner.ring.lock().unwrap().iter().cloned().collect()
    }

    /// Removes and returns all retained spans of one trace, oldest
    /// first. Spans of other traces (and untraced spans) stay in the
    /// ring untouched.
    pub fn drain_trace(&self, trace_id: u64) -> Vec<SpanRecord> {
        let mut ring = self.inner.ring.lock().unwrap();
        let mut taken = Vec::new();
        ring.retain(|r| {
            if r.trace_id == trace_id {
                taken.push(r.clone());
                false
            } else {
                true
            }
        });
        taken
    }

    fn push(&self, record: SpanRecord) {
        let mut ring = self.inner.ring.lock().unwrap();
        if ring.len() == self.inner.capacity {
            ring.pop_front();
            self.inner.dropped.fetch_add(1, Ordering::Relaxed);
            if let Some(c) = &self.inner.dropped_counter {
                c.inc();
            }
        }
        ring.push_back(record);
    }
}

impl std::fmt::Debug for SpanRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SpanRecorder")
            .field("capacity", &self.inner.capacity)
            .field("len", &self.inner.ring.lock().unwrap().len())
            .field("dropped", &self.dropped())
            .finish()
    }
}

/// An in-flight span. Call [`Span::finish`] to record it explicitly;
/// dropping an unfinished span records it at the drop instant, so early
/// returns and panics still produce a timing.
pub struct Span {
    recorder: SpanRecorder,
    name: String,
    start_ns: u64,
    ctx: Option<TraceContext>,
    finished: bool,
}

impl Span {
    /// Nanoseconds from the recorder's epoch to this span's start.
    pub fn start_ns(&self) -> u64 {
        self.start_ns
    }

    /// The trace context this span carries, if any.
    pub fn context(&self) -> Option<TraceContext> {
        self.ctx
    }

    /// Ends the span now and records it.
    pub fn finish(mut self) {
        self.finish_inner();
    }

    fn finish_inner(&mut self) {
        if self.finished {
            return;
        }
        self.finished = true;
        let end_ns = self.recorder.now_ns();
        let ctx = self.ctx.unwrap_or(TraceContext {
            trace_id: 0,
            span_id: 0,
            parent_id: 0,
        });
        self.recorder.push(SpanRecord {
            name: std::mem::take(&mut self.name),
            start_ns: self.start_ns,
            end_ns: end_ns.max(self.start_ns),
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
        });
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        self.finish_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finished_span_is_recorded_with_ordered_timestamps() {
        let rec = SpanRecorder::new(8);
        let span = rec.start("work");
        std::thread::sleep(std::time::Duration::from_millis(2));
        span.finish();
        let records = rec.records();
        assert_eq!(records.len(), 1);
        assert_eq!(records[0].name, "work");
        assert!(records[0].end_ns >= records[0].start_ns);
        assert!(records[0].duration_ns() >= 1_000_000, "slept ~2ms");
        assert_eq!(records[0].trace_id, 0, "untraced span has zero ids");
        assert_eq!(records[0].context(), None);
    }

    #[test]
    fn dropping_a_span_records_it() {
        let rec = SpanRecorder::new(8);
        {
            let _span = rec.start("implicit");
        }
        assert_eq!(rec.records().len(), 1);
        assert_eq!(rec.records()[0].name, "implicit");
    }

    #[test]
    fn ring_keeps_newest_and_counts_dropped() {
        let rec = SpanRecorder::new(2);
        for i in 0..5 {
            rec.start(&format!("s{i}")).finish();
        }
        let names: Vec<_> = rec.records().into_iter().map(|r| r.name).collect();
        assert_eq!(names, vec!["s3", "s4"]);
        assert_eq!(rec.dropped(), 3);
    }

    #[test]
    fn registry_backed_recorder_exposes_spans_dropped() {
        let registry = Registry::new();
        let rec = SpanRecorder::with_registry(2, &registry);
        for i in 0..5 {
            rec.start(&format!("s{i}")).finish();
        }
        assert_eq!(rec.dropped(), 3);
        let text = registry.snapshot().to_text();
        assert!(
            text.contains("spans_dropped 3"),
            "exposition missing spans_dropped: {text}"
        );
    }

    #[test]
    fn traced_spans_carry_context_and_drain_by_trace() {
        let rec = SpanRecorder::new(16);
        let ctx = TraceContext {
            trace_id: 10,
            span_id: 7,
            parent_id: 0,
        };
        rec.start_traced("a", ctx).finish();
        rec.start_traced("b", ctx.child(8)).finish();
        rec.start("untraced").finish();
        rec.start_traced(
            "other",
            TraceContext {
                trace_id: 11,
                span_id: 9,
                parent_id: 0,
            },
        )
        .finish();
        let taken = rec.drain_trace(10);
        assert_eq!(
            taken.iter().map(|r| r.name.as_str()).collect::<Vec<_>>(),
            vec!["a", "b"]
        );
        assert_eq!(taken[0].context().unwrap(), ctx);
        assert_eq!(taken[1].parent_id, 7);
        let left: Vec<_> = rec.records().into_iter().map(|r| r.name).collect();
        assert_eq!(left, vec!["untraced", "other"]);
    }

    #[test]
    fn record_traced_clamps_and_stores_interval() {
        let rec = SpanRecorder::new(4);
        let ctx = TraceContext {
            trace_id: 5,
            span_id: 6,
            parent_id: 2,
        };
        rec.record_traced("kernel", 100, 400, ctx);
        rec.record_traced("clamped", 400, 100, ctx.child(9));
        let records = rec.records();
        assert_eq!(records[0].duration_ns(), 300);
        assert_eq!(records[0].trace_id, 5);
        assert_eq!(records[1].start_ns, 400);
        assert_eq!(records[1].end_ns, 400, "end clamped to start");
    }

    #[test]
    fn spans_overlap_freely_across_threads() {
        let rec = SpanRecorder::new(64);
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    for i in 0..8 {
                        rec.start(&format!("t{t}.{i}")).finish();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(rec.records().len(), 32);
        assert_eq!(rec.dropped(), 0);
    }
}
