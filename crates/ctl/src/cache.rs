//! Content-addressed baseline cache with deterministic LRU eviction.
//!
//! The control plane's reason to exist: an ECO loop re-migrates almost
//! the same design over and over, so the full netlist crosses the wire
//! once ([`PutDesign`](dpm_serve::PutDesign)) and every later request
//! names it by content hash and ships only the delta. The cache maps
//! [`design_hash`](dpm_serve::design_hash) values to decoded designs,
//! accounted by their *encoded* byte size (what the client actually
//! uploaded), and evicts in strict least-recently-used order.
//!
//! Determinism matters here more than hit rate: two control planes fed
//! the same request stream must hold the same residents, so a failover
//! or replay produces the same `NeedDesign` misses. Recency is a plain
//! queue updated on `get`/`insert` — no clocks, no randomization.

use std::collections::HashMap;
use std::sync::Arc;

use dpm_netlist::Netlist;
use dpm_place::{Die, Placement};

/// A decoded baseline design, shared between the cache and any worker
/// currently migrating a delta against it. Evicting a design does not
/// invalidate in-flight jobs — they keep their [`Arc`].
#[derive(Debug)]
pub struct CachedDesign {
    /// The baseline netlist.
    pub netlist: Netlist,
    /// The die the baseline was placed on.
    pub die: Die,
    /// The baseline placement deltas are applied to.
    pub placement: Placement,
}

struct Entry {
    design: Arc<CachedDesign>,
    bytes: usize,
}

/// What [`DesignCache::insert`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InsertOutcome {
    /// Whether the design is resident after the call. `false` means it
    /// was larger than the whole budget and was deliberately not cached
    /// (the caller can still run the job from its own [`Arc`]).
    pub cached: bool,
    /// Number of older designs evicted to make room.
    pub evicted: u32,
}

/// Point-in-time cache counters, exported into `BENCH_serve.json` and
/// the metrics registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// `get` calls that found the design resident.
    pub hits: u64,
    /// `get` calls that missed (each one turns into a `NeedDesign`).
    pub misses: u64,
    /// Designs evicted to stay under the byte budget.
    pub evictions: u64,
    /// Bytes currently resident (encoded sizes).
    pub resident_bytes: u64,
    /// Designs currently resident.
    pub entries: u64,
}

/// A bounded, byte-accounted LRU of baseline designs keyed by content
/// hash. Not thread-safe on its own — the control plane wraps it in a
/// mutex; the hot path (workers) only touches it long enough to clone
/// an [`Arc`].
pub struct DesignCache {
    budget: usize,
    resident: usize,
    entries: HashMap<u64, Entry>,
    /// Recency queue, least-recently-used first. Touched entries are
    /// moved to the back; eviction pops the front. Linear moves are
    /// fine — the cache holds tens of designs, not millions.
    order: Vec<u64>,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl DesignCache {
    /// Creates a cache that will keep at most `budget_bytes` of encoded
    /// design bytes resident.
    pub fn new(budget_bytes: usize) -> Self {
        Self {
            budget: budget_bytes,
            resident: 0,
            entries: HashMap::new(),
            order: Vec::new(),
            hits: 0,
            misses: 0,
            evictions: 0,
        }
    }

    /// Looks up a baseline by content hash, marking it most recently
    /// used. Counts a hit or a miss.
    pub fn get(&mut self, hash: u64) -> Option<Arc<CachedDesign>> {
        match self.entries.get(&hash) {
            Some(e) => {
                let design = Arc::clone(&e.design);
                self.hits += 1;
                self.touch(hash);
                Some(design)
            }
            None => {
                self.misses += 1;
                None
            }
        }
    }

    /// Like [`get`](Self::get) but without touching recency or the
    /// hit/miss counters — for introspection and tests.
    pub fn peek(&self, hash: u64) -> Option<Arc<CachedDesign>> {
        self.entries.get(&hash).map(|e| Arc::clone(&e.design))
    }

    /// Inserts a design under its content hash, evicting
    /// least-recently-used residents until the byte budget holds. A
    /// design larger than the entire budget is not cached at all
    /// (`cached: false`) rather than flushing everything else for a
    /// tenant that will miss next time anyway. Re-inserting a resident
    /// hash refreshes its recency and returns `cached: true` with no
    /// evictions.
    pub fn insert(&mut self, hash: u64, bytes: usize, design: Arc<CachedDesign>) -> InsertOutcome {
        if self.entries.contains_key(&hash) {
            self.touch(hash);
            return InsertOutcome {
                cached: true,
                evicted: 0,
            };
        }
        if bytes > self.budget {
            return InsertOutcome {
                cached: false,
                evicted: 0,
            };
        }
        let mut evicted = 0u32;
        while self.resident + bytes > self.budget {
            let victim = self.order[0];
            self.order.remove(0);
            let e = self.entries.remove(&victim).expect("order tracks entries");
            self.resident -= e.bytes;
            self.evictions += 1;
            evicted += 1;
        }
        self.resident += bytes;
        self.entries.insert(hash, Entry { design, bytes });
        self.order.push(hash);
        InsertOutcome {
            cached: true,
            evicted,
        }
    }

    /// Current counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            resident_bytes: self.resident as u64,
            entries: self.entries.len() as u64,
        }
    }

    /// Resident hashes in eviction order (least recently used first) —
    /// the observable the determinism tests pin.
    pub fn eviction_order(&self) -> &[u64] {
        &self.order
    }

    fn touch(&mut self, hash: u64) {
        if let Some(pos) = self.order.iter().position(|&h| h == hash) {
            self.order.remove(pos);
            self.order.push(hash);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn design() -> Arc<CachedDesign> {
        Arc::new(CachedDesign {
            netlist: dpm_netlist::NetlistBuilder::new().build().unwrap(),
            die: Die::new(10.0, 10.0, 1.0),
            placement: Placement::new(0),
        })
    }

    #[test]
    fn lru_evicts_in_deterministic_access_order() {
        let mut c = DesignCache::new(100);
        assert_eq!(c.insert(1, 40, design()).evicted, 0);
        assert_eq!(c.insert(2, 40, design()).evicted, 0);
        // Touch 1 so 2 becomes the LRU victim.
        assert!(c.get(1).is_some());
        let out = c.insert(3, 40, design());
        assert_eq!(
            out,
            InsertOutcome {
                cached: true,
                evicted: 1
            }
        );
        assert!(c.peek(2).is_none(), "2 was least recently used");
        assert_eq!(c.eviction_order(), &[1, 3]);
        let s = c.stats();
        assert_eq!((s.hits, s.misses, s.evictions), (1, 0, 1));
        assert_eq!(s.resident_bytes, 80);
    }

    #[test]
    fn one_insert_can_evict_many() {
        let mut c = DesignCache::new(100);
        c.insert(1, 30, design());
        c.insert(2, 30, design());
        c.insert(3, 30, design());
        let out = c.insert(4, 90, design());
        assert_eq!(out.evicted, 3);
        assert_eq!(c.eviction_order(), &[4]);
        assert_eq!(c.stats().resident_bytes, 90);
    }

    #[test]
    fn oversized_designs_are_not_cached() {
        let mut c = DesignCache::new(100);
        c.insert(1, 60, design());
        let out = c.insert(2, 101, design());
        assert_eq!(
            out,
            InsertOutcome {
                cached: false,
                evicted: 0
            }
        );
        assert!(c.peek(1).is_some(), "resident set untouched");
        assert!(c.get(2).is_none());
        assert_eq!(c.stats().entries, 1);
    }

    #[test]
    fn reinsert_refreshes_recency_without_double_counting() {
        let mut c = DesignCache::new(100);
        c.insert(1, 50, design());
        c.insert(2, 50, design());
        c.insert(1, 50, design()); // refresh, not re-account
        assert_eq!(c.stats().resident_bytes, 100);
        assert_eq!(c.eviction_order(), &[2, 1]);
        c.insert(3, 50, design());
        assert!(c.peek(2).is_none(), "refreshed 1 outlived 2");
    }

    #[test]
    fn evicted_designs_survive_in_flight_arcs() {
        let mut c = DesignCache::new(10);
        let d = design();
        c.insert(1, 10, Arc::clone(&d));
        c.insert(2, 10, design());
        assert!(c.peek(1).is_none());
        // The worker's handle is still valid.
        assert_eq!(d.placement.len(), 0);
    }
}
