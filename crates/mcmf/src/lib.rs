#![warn(missing_docs)]

//! Minimum-cost maximum-flow solver.
//!
//! This crate is the substrate behind the `FLOW` baseline legalizer: the
//! bin grid becomes a flow network (overfull bins are sources, free space
//! is the sink) and the min-cost flow decides how placement area migrates
//! between bins, as in Brenner/Pauli/Vygen (ISPD 2004).
//!
//! The solver is successive shortest augmenting paths with Johnson
//! potentials: Bellman–Ford once to establish potentials when negative
//! costs are present, then Dijkstra per augmentation. Capacities and costs
//! are `i64`; the caller scales real quantities to integers.
//!
//! # Examples
//!
//! ```
//! use dpm_mcmf::FlowNetwork;
//!
//! // A path 0 → 1 → 2 of capacity 5 plus a direct, pricier edge 0 → 2.
//! let mut net = FlowNetwork::new(3);
//! net.add_edge(0, 1, 5, 1);
//! net.add_edge(1, 2, 5, 0);
//! net.add_edge(0, 2, 5, 4);
//! let flow = net.min_cost_max_flow(0, 2)?;
//! assert_eq!(flow.amount, 10);
//! assert_eq!(flow.cost, 5 * 1 + 5 * 4);
//! # Ok::<(), dpm_mcmf::FlowError>(())
//! ```

mod solver;

pub use solver::{EdgeId, EdgeState, FlowError, FlowNetwork, FlowResult};
