//! Fig. 13 — total movement and WNS vs W2 with W1 = 2, ckt2.

use dpm_bench::suite::diffusion_cfg;
use dpm_bench::{fnum, print_table, scale_from_env, Experiment, TextTable, CKT_DEFAULT_SCALE};
use dpm_gen::suites::ckt_suite;
use dpm_legalize::DiffusionLegalizer;

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Fig. 13 at scale {scale} (ckt2, W2 sweep at W1 = 2).");
    let entry = &ckt_suite(scale)[1];
    let base = entry.spec.generate();
    let (bench, _) = entry.generate_inflated();
    let cfg0 = diffusion_cfg(&bench);
    let exp = Experiment::new(bench, &base);

    let mut t = TextTable::new(["W2", "movement", "WNS"]);
    for w2 in 2..=7usize {
        let r = exp.run(&DiffusionLegalizer::local(cfg0.clone().with_windows(2, w2)));
        t.row([w2.to_string(), fnum(r.movement.total), fnum(r.metrics.wns)]);
        eprintln!("  W2 = {w2} done");
    }
    print_table(
        "Fig. 13: W2 sweep at W1 = 2 (paper: larger W2 spreads faster but further)",
        &t,
    );
}
