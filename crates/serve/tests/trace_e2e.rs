//! End-to-end tests for wire-propagated tracing at the serve layer: a
//! traced job against a single server exports a span tree and changes
//! nothing about the placement; traced shard routing stays bit-identical
//! to untraced routing at K = 1 and stitches remote spans at K = 2.

use std::collections::HashSet;

use dpm_diffusion::{DiffusionConfig, LocalDiffusion};
use dpm_gen::{Benchmark, CircuitSpec, InflationSpec};
use dpm_obs::{SpanRecord, TraceContext};
use dpm_serve::shard::{ShardBackend, ShardRouter, ShardRouterConfig};
use dpm_serve::wire::{JobKind, JobRequest, PayloadEncoding, Reply};
use dpm_serve::{ServeClient, ServeConfig, Server};

fn hot_bench(cells: usize, seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("trace_e2e", cells, seed).generate();
    b.inflate(&InflationSpec::centered(0.3, 0.25, seed ^ 0xD1E));
    b
}

fn request(bench: &Benchmark, id: u64) -> JobRequest {
    JobRequest {
        id,
        deadline_ms: 0,
        progress_stride: 0,
        kind: JobKind::Local,
        design: format!("trace_e2e_{id}"),
        config: DiffusionConfig::default(),
        netlist: bench.netlist.clone(),
        die: bench.die.clone(),
        placement: bench.placement.clone(),
        vol: None,
        trace: None,
    }
}

/// Asserts the records form one tree: unique nonzero span ids, every
/// parent link landing on another record or on `graft`, all sharing
/// `trace_id`.
fn assert_tree(spans: &[SpanRecord], trace_id: u64, graft: u64) {
    let ids: HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    assert_eq!(ids.len(), spans.len(), "span ids must be unique");
    for s in spans {
        assert_eq!(s.trace_id, trace_id, "foreign trace id: {s:?}");
        assert_ne!(s.span_id, 0);
        assert!(s.end_ns >= s.start_ns, "inverted interval: {s:?}");
        assert!(
            s.parent_id == graft || ids.contains(&s.parent_id),
            "dangling parent link: {s:?}"
        );
    }
}

#[test]
fn traced_server_job_exports_spans_and_changes_nothing() {
    let bench = hot_bench(160, 51);
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server starts");

    let mut plain_client = ServeClient::connect(server.local_addr()).expect("connect");
    let Reply::Ok(plain) = plain_client
        .request(&request(&bench, 1), PayloadEncoding::Binary)
        .expect("untraced request")
    else {
        panic!("untraced job rejected");
    };
    assert!(plain.spans.is_empty(), "untraced reply must carry no spans");

    let mut client = ServeClient::connect(server.local_addr())
        .expect("connect")
        .with_tracing(0xBEEF);
    let mut req = request(&bench, 2);
    let root_ctx = client.begin_trace(&mut req).expect("tracing armed");
    let Reply::Ok(traced) = client
        .request(&req, PayloadEncoding::Binary)
        .expect("traced request")
    else {
        panic!("traced job rejected");
    };
    assert_eq!(
        traced.positions, plain.positions,
        "tracing must not perturb the placement"
    );

    let spans = client.take_trace_spans();
    assert!(!spans.is_empty());
    assert_tree(&spans, root_ctx.trace_id, 0);
    let names: Vec<&str> = spans.iter().map(|s| s.name.as_str()).collect();
    assert!(names.contains(&"client.request"), "{names:?}");
    assert!(names.contains(&"queue.wait"), "{names:?}");
    assert!(names.contains(&"job.local"), "{names:?}");
    assert!(names.iter().any(|n| n.starts_with("kernel.")), "{names:?}");

    // The export *drained* the trace: the server's ring no longer holds
    // any span of it, so a later stats scrape cannot double-report.
    assert!(
        server
            .spans()
            .iter()
            .all(|s| s.trace_id != root_ctx.trace_id),
        "drained spans must leave the server ring"
    );
    server.shutdown();
}

#[test]
fn traced_k1_shard_route_is_bit_identical_to_untraced() {
    let bench = hot_bench(180, 53);
    let untraced_req = request(&bench, 3);

    let mut direct = bench.placement.clone();
    LocalDiffusion::new(untraced_req.config.clone()).run(&bench.netlist, &bench.die, &mut direct);

    let router = ShardRouter::in_process(ShardRouterConfig {
        shards: 1,
        ..ShardRouterConfig::default()
    });
    let untraced = router.route(&untraced_req);
    assert!(untraced.response.spans.is_empty());

    let mut traced_req = request(&bench, 3);
    let ctx = TraceContext {
        trace_id: 0xCAFE,
        span_id: 0xF00D,
        parent_id: 0,
    };
    traced_req.trace = Some(ctx);
    let traced = router.route(&traced_req);

    assert_eq!(
        traced.response.positions,
        direct.as_slice().to_vec(),
        "traced K=1 route must stay bit-identical to the direct engine"
    );
    assert_eq!(traced.response.positions, untraced.response.positions);
    assert_eq!(traced.response.steps, untraced.response.steps);

    let spans = &traced.response.spans;
    assert!(!spans.is_empty(), "traced route must export spans");
    // The router grafts its subtree under the inherited span id.
    assert_tree(spans, ctx.trace_id, ctx.span_id);
    assert!(spans.iter().any(|s| s.name == "shard.dispatch"));
    assert!(spans.iter().any(|s| s.name == "halo.round"));
    // Normalized for the next hop: earliest start is zero.
    assert_eq!(spans.iter().map(|s| s.start_ns).min(), Some(0));
}

#[test]
fn traced_k2_tcp_shard_route_stitches_remote_spans() {
    let bench = hot_bench(170, 57);
    let server_a = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server a");
    let server_b = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server b");
    let router = ShardRouter::new(
        ShardRouterConfig {
            shards: 2,
            ..ShardRouterConfig::default()
        },
        vec![
            ShardBackend::Tcp(server_a.local_addr()),
            ShardBackend::Tcp(server_b.local_addr()),
        ],
    );

    let untraced = router.route(&request(&bench, 4));
    assert!(untraced.outcomes.iter().all(|o| o.error.is_none()));

    let mut traced_req = request(&bench, 4);
    let ctx = TraceContext {
        trace_id: 0xD15_7A7C,
        span_id: 0x40_07,
        parent_id: 0,
    };
    traced_req.trace = Some(ctx);
    let traced = router.route(&traced_req);
    server_a.shutdown();
    server_b.shutdown();

    assert_eq!(
        traced.response.positions, untraced.response.positions,
        "tracing must not perturb a sharded TCP run"
    );

    let spans = &traced.response.spans;
    assert_tree(spans, ctx.trace_id, ctx.span_id);
    let count = |name: &str| spans.iter().filter(|s| s.name == name).count();
    assert!(count("shard.dispatch") >= 2, "one dispatch per shard");
    assert!(count("halo.round") >= 1);
    // The remote engines' own spans came back over the wire and were
    // stitched into the same tree.
    assert!(count("job.local") >= 2, "both backends contribute");
    assert!(count("queue.wait") >= 2);
    assert!(spans.iter().any(|s| s.name.starts_with("kernel.")));
}
