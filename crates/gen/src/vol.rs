//! Volumetric (3D-IC) benchmark generation.
//!
//! A volumetric benchmark stacks `layers` tiers of the same die outline:
//! every tier carries its own row-packed standard cells, fixed macros cut
//! **through the whole stack** (TSV keep-out columns — the diffusion
//! engine turns them into walls in every tier), and a configurable
//! *hotspot tier* can be generated overfull so the volumetric migration
//! actually has work to do. Consecutive tiers are packed with a
//! configurable **row phase** — tier `t` starts filling at row
//! `t · row_phase` — so the per-tier density structure is deliberately
//! not z-symmetric (a perfectly symmetric stack sits at a zero of the
//! z-gradient and would never exercise tier migration).

use dpm_diffusion::VolPlacement;
use dpm_geom::{Point, Rect};
use dpm_netlist::{CellId, CellKind, Netlist, NetlistBuilder, PinDir};
use dpm_place::Die;
use dpm_rng::Rng;

/// Parameters of a synthetic volumetric circuit.
///
/// Cell ids are tier-major: tier `t` owns the contiguous id range
/// `[t · cells_per_tier, (t+1) · cells_per_tier)`, which keeps inter-tier
/// (TSV) nets DAG-oriented for free.
#[derive(Debug, Clone, PartialEq)]
pub struct VolCircuitSpec {
    /// Benchmark name (used in reports).
    pub name: String,
    /// Number of tiers in the stack.
    pub layers: usize,
    /// Movable standard cells per tier.
    pub cells_per_tier: usize,
    /// Standard-cell row height (tracks).
    pub row_height: f64,
    /// Minimum cell width (tracks).
    pub min_cell_width: f64,
    /// Maximum cell width (tracks).
    pub max_cell_width: f64,
    /// Fraction of each tier's area occupied by its movable cells.
    pub target_utilization: f64,
    /// Packing density inside a row run (1.0 abuts cells).
    pub local_utilization: f64,
    /// Rows of stagger between consecutive tiers' packing start: tier
    /// `t` begins at row `(t · row_phase) mod num_rows` and wraps.
    pub row_phase: usize,
    /// When set, this tier's cells are piled into a dense central block
    /// instead of packed legally — the volumetric migration workload.
    pub hotspot_tier: Option<usize>,
    /// Number of fixed through-stack macro blocks.
    pub num_macros: usize,
    /// Number of I/O pads along the tier-0 die boundary.
    pub num_pads: usize,
    /// Inter-tier (TSV) nets generated per tier boundary.
    pub tsvs_per_tier: usize,
    /// RNG seed — everything derived from the spec is deterministic.
    pub seed: u64,
}

impl VolCircuitSpec {
    /// A 3-tier stack of ~400 cells per tier, handy in tests and
    /// examples.
    pub fn small(seed: u64) -> Self {
        Self::with_size("vol-small", 3, 400, seed)
    }

    /// A named stack with explicit tier and per-tier cell counts and
    /// otherwise default parameters.
    ///
    /// # Panics
    ///
    /// Panics if `layers` or `cells_per_tier` is zero.
    pub fn with_size(
        name: impl Into<String>,
        layers: usize,
        cells_per_tier: usize,
        seed: u64,
    ) -> Self {
        assert!(layers > 0, "a stack needs at least one tier");
        assert!(cells_per_tier > 0, "tiers need cells");
        Self {
            name: name.into(),
            layers,
            cells_per_tier,
            row_height: 12.0,
            min_cell_width: 3.0,
            max_cell_width: 9.0,
            target_utilization: 0.7,
            local_utilization: 0.88,
            row_phase: 2,
            hotspot_tier: None,
            num_macros: 0,
            num_pads: 16,
            tsvs_per_tier: 8,
            seed,
        }
    }

    /// Same spec with through-stack macros added.
    pub fn with_macros(mut self, num_macros: usize) -> Self {
        self.num_macros = num_macros;
        self
    }

    /// Same spec with tier `tier` generated as an overfull hotspot.
    ///
    /// # Panics
    ///
    /// Panics if `tier` is outside the stack.
    pub fn with_hotspot(mut self, tier: usize) -> Self {
        assert!(tier < self.layers, "hotspot tier outside the stack");
        self.hotspot_tier = Some(tier);
        self
    }

    /// Generates the netlist, die, and volumetric placement.
    pub fn generate(&self) -> VolBenchmark {
        let mut rng = Rng::seed_from_u64(self.seed);
        let n_cells = self.layers * self.cells_per_tier;

        // --- Cells, tier-major -----------------------------------------
        let mut b = NetlistBuilder::with_capacity(
            n_cells + self.num_macros + self.num_pads,
            n_cells / 2 + self.layers * self.tsvs_per_tier + self.num_pads,
            n_cells * 2,
        );
        let mut cells = Vec::with_capacity(n_cells);
        let mut tier_width = vec![0.0f64; self.layers];
        for (t, total_width) in tier_width.iter_mut().enumerate() {
            for i in 0..self.cells_per_tier {
                let width = rng
                    .random_range(self.min_cell_width..=self.max_cell_width)
                    .round()
                    .max(1.0);
                let delay = rng.random_range(0.5..1.5);
                let id = b.add_cell_with_delay(
                    format!("t{t}c{i}"),
                    width,
                    self.row_height,
                    CellKind::Movable,
                    delay,
                );
                *total_width += width;
                cells.push(id);
            }
        }

        // --- Die sized for the busiest tier ----------------------------
        let max_tier_area = tier_width
            .iter()
            .map(|w| w * self.row_height)
            .fold(0.0, f64::max);
        let die_area = max_tier_area / self.target_utilization;
        let side = die_area.sqrt();
        let rows = ((side / self.row_height).ceil() as usize).max(4);
        let height = rows as f64 * self.row_height;
        let width = (die_area / height).ceil();
        let mut die = Die::new(width, height, self.row_height);

        // --- Through-stack macros --------------------------------------
        let mut macros: Vec<(CellId, Rect)> = Vec::new();
        for m in 0..self.num_macros {
            let o = die.outline();
            let mw = (o.width() * rng.random_range(0.06..0.12)).max(2.0 * self.row_height);
            let mh = (rng.random_range(4..10) as f64) * self.row_height;
            let id = b.add_cell(format!("macro{m}"), mw, mh, CellKind::FixedMacro);
            let mut placed = None;
            for _ in 0..64 {
                let mx = rng.random_range(0.1..0.8) * (o.width() - mw);
                let row = rng.random_range(
                    1..rows
                        .saturating_sub((mh / self.row_height) as usize + 1)
                        .max(2),
                );
                let rect =
                    Rect::from_origin_size(Point::new(mx, row as f64 * self.row_height), mw, mh);
                if macros
                    .iter()
                    .all(|&(_, other)| !rect.inflated(1.0).intersects(&other))
                {
                    placed = Some(rect);
                    break;
                }
            }
            let rect = placed.unwrap_or_else(|| {
                Rect::from_origin_size(
                    Point::new(0.0, self.row_height),
                    mw.min(o.width() / 4.0),
                    mh,
                )
            });
            macros.push((id, rect));
        }

        // --- Pads on the tier-0 boundary -------------------------------
        let mut pads = Vec::new();
        for p in 0..self.num_pads {
            let id = b.add_cell(format!("pad{p}"), 1.0, 1.0, CellKind::Pad);
            pads.push(id);
        }

        // --- Nets: intra-tier chains plus TSVs -------------------------
        // Intra-tier locality: every fourth cell drives its neighbors.
        let mut n_net = 0usize;
        for t in 0..self.layers {
            let base = t * self.cells_per_tier;
            let mut i = 0;
            while i + 1 < self.cells_per_tier {
                let net = b.add_net(format!("n{n_net}"));
                n_net += 1;
                b.connect(
                    cells[base + i],
                    net,
                    PinDir::Output,
                    0.0,
                    self.row_height / 2.0,
                );
                let sinks = (rng.random_range(1..=3usize)).min(self.cells_per_tier - i - 1);
                for s in 1..=sinks {
                    b.connect(
                        cells[base + i + s],
                        net,
                        PinDir::Input,
                        0.0,
                        self.row_height / 2.0,
                    );
                }
                i += 4;
            }
        }
        // TSV nets: a driver in tier t sinks one tier up. Tier-major ids
        // keep these DAG-oriented by construction.
        for t in 0..self.layers.saturating_sub(1) {
            for _ in 0..self.tsvs_per_tier {
                let net = b.add_net(format!("n{n_net}"));
                n_net += 1;
                let d = t * self.cells_per_tier + rng.random_range(0..self.cells_per_tier);
                let s = (t + 1) * self.cells_per_tier + rng.random_range(0..self.cells_per_tier);
                b.connect(cells[d], net, PinDir::Output, 0.0, self.row_height / 2.0);
                b.connect(cells[s], net, PinDir::Input, 0.0, self.row_height / 2.0);
            }
        }
        // Pad nets drive tier-0 cells.
        for (p, &pad) in pads.iter().enumerate() {
            let net = b.add_net(format!("pn{p}"));
            let c = cells[rng.random_range(0..self.cells_per_tier)];
            if p % 2 == 0 {
                b.connect(pad, net, PinDir::Output, 0.5, 0.5);
                b.connect(c, net, PinDir::Input, 0.0, self.row_height / 2.0);
            } else {
                b.connect(c, net, PinDir::Output, 0.0, self.row_height / 2.0);
                b.connect(pad, net, PinDir::Input, 0.5, 0.5);
            }
        }

        let netlist = b.build().expect("generated netlist is structurally valid");

        // --- Volumetric placement, growing the die until tiers fit -----
        let mut placement = None;
        for _ in 0..12 {
            if let Some(p) = self.place_tiers(&netlist, &die, &macros, &pads, &cells) {
                placement = Some(p);
                break;
            }
            let o = die.outline();
            die = Die::new(
                o.width() * 1.1,
                o.height() + self.row_height * 2.0,
                self.row_height,
            );
        }
        let placement = placement.expect("die growth must eventually fit the cells");

        VolBenchmark {
            name: self.name.clone(),
            spec: self.clone(),
            netlist,
            die,
            placement,
        }
    }

    /// Packs every tier's cells into rows (hotspot tier: a dense central
    /// pile), or `None` if some tier does not fit this die.
    fn place_tiers(
        &self,
        netlist: &Netlist,
        die: &Die,
        macros: &[(CellId, Rect)],
        pads: &[CellId],
        cells: &[CellId],
    ) -> Option<VolPlacement> {
        let mut vp = VolPlacement::new(netlist.num_cells());
        let outline = die.outline();

        // Macros centered in the stack (walls are through-stack anyway);
        // pads live on the tier-0 boundary.
        for &(id, r) in macros {
            vp.set(id, r.origin(), self.layers as f64 / 2.0);
        }
        for (i, &pad) in pads.iter().enumerate() {
            let t = i as f64 / pads.len().max(1) as f64;
            let peri = 2.0 * (outline.width() + outline.height());
            let d = t * peri;
            let pos = if d < outline.width() {
                Point::new(outline.llx + d, outline.lly)
            } else if d < outline.width() + outline.height() {
                Point::new(outline.urx - 1.0, outline.lly + (d - outline.width()))
            } else if d < 2.0 * outline.width() + outline.height() {
                Point::new(
                    outline.urx - (d - outline.width() - outline.height()) - 1.0,
                    outline.ury - 1.0,
                )
            } else {
                Point::new(
                    outline.llx,
                    outline.ury - (d - 2.0 * outline.width() - outline.height()) - 1.0,
                )
            };
            vp.set(
                pad,
                pos.clamped(
                    outline.llx,
                    outline.urx - 1.0,
                    outline.lly,
                    outline.ury - 1.0,
                ),
                0.5,
            );
        }

        // Free segments per row (through-stack macro spans removed —
        // identical for every tier).
        let mut segments: Vec<Vec<(f64, f64)>> = Vec::with_capacity(die.num_rows());
        for row in die.rows() {
            let row_rect = Rect::new(row.llx, row.y, row.urx, row.y + die.row_height());
            let mut segs = vec![(row.llx, row.urx)];
            for &(_, mr) in macros {
                if !mr.intersects(&row_rect) {
                    continue;
                }
                let mut next = Vec::new();
                for (s, e) in segs {
                    if mr.llx <= s && mr.urx >= e {
                        continue;
                    } else if mr.llx > s && mr.urx < e {
                        next.push((s, mr.llx));
                        next.push((mr.urx, e));
                    } else if mr.llx > s && mr.llx < e {
                        next.push((s, mr.llx));
                    } else if mr.urx > s && mr.urx < e {
                        next.push((mr.urx, e));
                    } else {
                        next.push((s, e));
                    }
                }
                segs = next;
            }
            segments.push(segs);
        }

        let pitch_factor = (1.0 / self.local_utilization).max(1.0);
        for t in 0..self.layers {
            let tier_cells = &cells[t * self.cells_per_tier..(t + 1) * self.cells_per_tier];
            if self.hotspot_tier == Some(t) {
                self.pile_tier(netlist, die, tier_cells, t, &mut vp);
                continue;
            }
            let start_row = (t * self.row_phase) % die.num_rows();
            if !pack_tier(
                netlist,
                die,
                &segments,
                tier_cells,
                t,
                start_row,
                pitch_factor,
                &mut vp,
            ) {
                return None;
            }
        }
        Some(vp)
    }

    /// Piles a tier's cells into a dense central block, depths staggered
    /// within the tier (a z-symmetric pile sits at a zero of the
    /// z-gradient; the stagger lets the velocity field bite).
    fn pile_tier(
        &self,
        netlist: &Netlist,
        die: &Die,
        tier_cells: &[CellId],
        tier: usize,
        vp: &mut VolPlacement,
    ) {
        let outline = die.outline();
        let cols = (tier_cells.len() as f64).sqrt().ceil().max(1.0) as usize;
        let pitch = 3.0;
        let ox = outline.llx + (outline.width() - cols as f64 * pitch) / 2.0;
        let oy =
            outline.lly + (outline.height() - tier_cells.len().div_ceil(cols) as f64 * pitch) / 2.0;
        for (i, &c) in tier_cells.iter().enumerate() {
            let x = ox + (i % cols) as f64 * pitch;
            let y = oy + (i / cols) as f64 * pitch;
            let p = Point::new(
                x.clamp(outline.llx, outline.urx - netlist.cell(c).width),
                y.clamp(outline.lly, outline.ury - netlist.cell(c).height),
            );
            let z = tier as f64 + 0.3 + 0.2 * (i % 3) as f64;
            vp.set(c, p, z);
        }
    }
}

/// Packs one tier's cells into rows starting at `start_row`, wrapping
/// cyclically through the die. Returns `false` if the tier does not fit.
#[allow(clippy::too_many_arguments)]
fn pack_tier(
    netlist: &Netlist,
    die: &Die,
    segments: &[Vec<(f64, f64)>],
    tier_cells: &[CellId],
    tier: usize,
    start_row: usize,
    pitch_factor: f64,
    vp: &mut VolPlacement,
) -> bool {
    let n_rows = die.num_rows();
    let z = tier as f64 + 0.5;
    let mut visit = 0usize; // rows consumed, in cyclic order
    let mut seg_idx = 0usize;
    let row_at = |visit: usize| (start_row + visit) % n_rows;
    let mut cursor = segments[row_at(0)].first().map(|&(s, _)| s).unwrap_or(0.0);

    for &cell in tier_cells {
        let w = netlist.cell(cell).width;
        let pitch = w * pitch_factor;
        loop {
            if visit >= n_rows {
                return false;
            }
            let row = row_at(visit);
            let segs = &segments[row];
            if seg_idx >= segs.len() {
                visit += 1;
                seg_idx = 0;
                cursor = segments[row_at(visit.min(n_rows - 1))]
                    .first()
                    .map(|&(s, _)| s)
                    .unwrap_or(0.0);
                continue;
            }
            let (s, e) = segs[seg_idx];
            if cursor < s {
                cursor = s;
            }
            if cursor + w <= e {
                vp.set(cell, Point::new(cursor, die.row(row).y), z);
                cursor += pitch;
                break;
            }
            seg_idx += 1;
            if let Some(&(ns, _)) = segs.get(seg_idx) {
                cursor = ns;
            }
        }
    }
    true
}

/// A generated volumetric circuit: netlist, die, and tiered placement.
#[derive(Debug, Clone)]
pub struct VolBenchmark {
    /// Benchmark name.
    pub name: String,
    /// The spec this benchmark was generated from.
    pub spec: VolCircuitSpec,
    /// The circuit (tier-major cell ids).
    pub netlist: Netlist,
    /// Die geometry, shared by every tier.
    pub die: Die,
    /// Volumetric placement (legal per tier, except a hotspot tier).
    pub placement: VolPlacement,
}

impl VolBenchmark {
    /// Number of tiers in the stack.
    pub fn layers(&self) -> usize {
        self.spec.layers
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_diffusion::splat_volume;
    use dpm_place::BinGrid;

    #[test]
    fn generation_is_deterministic() {
        let a = VolCircuitSpec::small(7).generate();
        let b = VolCircuitSpec::small(7).generate();
        assert_eq!(a.netlist.num_cells(), b.netlist.num_cells());
        assert_eq!(a.placement, b.placement);
        let c = VolCircuitSpec::small(8).generate();
        assert!(a.placement != c.placement);
    }

    #[test]
    fn cells_are_tier_major_with_centered_depths() {
        let bench = VolCircuitSpec::small(11).generate();
        let cpt = bench.spec.cells_per_tier;
        for t in 0..bench.layers() {
            for i in 0..cpt {
                let z = bench.placement.z[t * cpt + i];
                assert_eq!(z, t as f64 + 0.5, "cell {i} of tier {t} at depth {z}");
            }
        }
    }

    #[test]
    fn row_phase_staggers_consecutive_tiers() {
        let bench = VolCircuitSpec::small(11).generate();
        assert!(bench.spec.row_phase > 0);
        let cpt = bench.spec.cells_per_tier;
        let y0 = bench
            .placement
            .xy
            .get(bench.netlist.cell_ids().next().unwrap())
            .y;
        let first_of_tier1 = dpm_netlist::CellId::new(cpt as u32);
        let y1 = bench.placement.xy.get(first_of_tier1).y;
        assert_eq!(y0, bench.die.row(0).y);
        assert_eq!(y1, bench.die.row(bench.spec.row_phase).y);
    }

    #[test]
    fn tiers_are_individually_legalish_without_hotspot() {
        let bench = VolCircuitSpec::small(42).generate();
        let grid = BinGrid::new(bench.die.outline(), 4.0 * bench.spec.row_height);
        let (d, _) = splat_volume(&bench.netlist, &bench.placement, &grid, bench.layers());
        let nxy = grid.len();
        for t in 0..bench.layers() {
            let max = d[t * nxy..(t + 1) * nxy]
                .iter()
                .cloned()
                .fold(0.0f64, f64::max);
            assert!(max <= 1.05, "tier {t} overfull at {max}");
        }
    }

    #[test]
    fn hotspot_tier_is_overfull_and_others_stay_legal() {
        let bench = VolCircuitSpec::small(42).with_hotspot(1).generate();
        let grid = BinGrid::new(bench.die.outline(), 4.0 * bench.spec.row_height);
        let (d, _) = splat_volume(&bench.netlist, &bench.placement, &grid, bench.layers());
        let nxy = grid.len();
        let tier_max = |t: usize| {
            d[t * nxy..(t + 1) * nxy]
                .iter()
                .cloned()
                .fold(0.0f64, f64::max)
        };
        assert!(tier_max(1) > 1.5, "hotspot tier only at {}", tier_max(1));
        assert!(tier_max(0) <= 1.05, "tier 0 overfull at {}", tier_max(0));
        assert!(tier_max(2) <= 1.05, "tier 2 overfull at {}", tier_max(2));
    }

    #[test]
    fn through_stack_macros_wall_every_tier() {
        let bench = VolCircuitSpec::small(5).with_macros(2).generate();
        let grid = BinGrid::new(bench.die.outline(), 2.0 * bench.spec.row_height);
        let (_, wall) = splat_volume(&bench.netlist, &bench.placement, &grid, bench.layers());
        let nxy = grid.len();
        let per_tier: Vec<usize> = (0..bench.layers())
            .map(|t| wall[t * nxy..(t + 1) * nxy].iter().filter(|&&w| w).count())
            .collect();
        assert!(per_tier[0] > 0, "macros raised no walls");
        assert!(per_tier.windows(2).all(|w| w[0] == w[1]), "{per_tier:?}");
    }

    #[test]
    fn tsv_nets_cross_tiers_and_netlist_is_a_dag() {
        let bench = VolCircuitSpec::small(42).generate();
        let cpt = bench.spec.cells_per_tier;
        let tier_of = |c: dpm_netlist::CellId| c.index() / cpt;
        let mut crossing = 0usize;
        for net in bench.netlist.net_ids() {
            let tiers: Vec<usize> = bench
                .netlist
                .net(net)
                .pins
                .iter()
                .map(|&p| bench.netlist.pin(p).cell)
                .filter(|&c| bench.netlist.cell(c).kind == CellKind::Movable)
                .map(tier_of)
                .collect();
            if tiers.windows(2).any(|w| w[0] != w[1]) {
                crossing += 1;
            }
        }
        assert!(
            crossing >= bench.spec.tsvs_per_tier,
            "only {crossing} TSV nets"
        );
        assert!(dpm_netlist::levelize(&bench.netlist).is_acyclic());
    }
}
