//! Uniform bin grids over the die.
//!
//! The diffusion formulation (paper Section IV) works in *bin coordinates*:
//! the die is divided into equal bins of size `bin × bin`, coordinates are
//! scaled so each bin has unit width/height, and a continuous location
//! `(x, y)` lies in bin `(⌊x⌋, ⌊y⌋)`. [`BinGrid`] owns that coordinate
//! transform and the `(j, k) ↔ flat index` arithmetic every grid-shaped
//! buffer in the workspace shares.

use dpm_geom::{Point, Rect};

/// Integer coordinates of a bin: column `j` (x) and row `k` (y).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BinIdx {
    /// Column (x) index.
    pub j: usize,
    /// Row (y) index.
    pub k: usize,
}

impl BinIdx {
    /// Creates a bin index.
    #[inline]
    pub const fn new(j: usize, k: usize) -> Self {
        Self { j, k }
    }

    /// Chebyshev (L∞) distance between two bins — the paper's notion of a
    /// bin being "within a distance of W" of another (Algorithm 2).
    #[inline]
    pub fn chebyshev_distance(self, other: BinIdx) -> usize {
        let dj = self.j.abs_diff(other.j);
        let dk = self.k.abs_diff(other.k);
        dj.max(dk)
    }
}

/// A uniform grid of `nx × ny` square-ish bins covering a region.
///
/// # Examples
///
/// ```
/// use dpm_geom::{Point, Rect};
/// use dpm_place::{BinGrid, BinIdx};
///
/// let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 60.0), 20.0);
/// assert_eq!((grid.nx(), grid.ny()), (5, 3));
/// assert_eq!(grid.bin_of_point(Point::new(45.0, 25.0)), BinIdx::new(2, 1));
/// assert_eq!(grid.bin_rect(BinIdx::new(2, 1)), Rect::new(40.0, 20.0, 60.0, 40.0));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinGrid {
    region: Rect,
    bin_w: f64,
    bin_h: f64,
    nx: usize,
    ny: usize,
}

impl BinGrid {
    /// Creates a grid over `region` with bins of (approximately) the given
    /// size.
    ///
    /// The bin count per axis is `ceil(extent / bin_size)` (at least 1) and
    /// the actual bin dimensions are stretched so the bins exactly tile the
    /// region.
    ///
    /// # Panics
    ///
    /// Panics if `bin_size` is not positive or the region is degenerate.
    pub fn new(region: Rect, bin_size: f64) -> Self {
        assert!(bin_size > 0.0, "bin size must be positive");
        assert!(
            region.width() > 0.0 && region.height() > 0.0,
            "region must have area"
        );
        let nx = (region.width() / bin_size).ceil().max(1.0) as usize;
        let ny = (region.height() / bin_size).ceil().max(1.0) as usize;
        Self {
            region,
            bin_w: region.width() / nx as f64,
            bin_h: region.height() / ny as f64,
            nx,
            ny,
        }
    }

    /// Creates a grid with an exact number of bins per axis.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or the region is degenerate.
    pub fn with_counts(region: Rect, nx: usize, ny: usize) -> Self {
        assert!(nx > 0 && ny > 0, "bin counts must be positive");
        assert!(
            region.width() > 0.0 && region.height() > 0.0,
            "region must have area"
        );
        Self {
            region,
            bin_w: region.width() / nx as f64,
            bin_h: region.height() / ny as f64,
            nx,
            ny,
        }
    }

    /// The covered region.
    #[inline]
    pub fn region(&self) -> Rect {
        self.region
    }

    /// Bin width in world units.
    #[inline]
    pub fn bin_width(&self) -> f64 {
        self.bin_w
    }

    /// Bin height in world units.
    #[inline]
    pub fn bin_height(&self) -> f64 {
        self.bin_h
    }

    /// Area of one bin.
    #[inline]
    pub fn bin_area(&self) -> f64 {
        self.bin_w * self.bin_h
    }

    /// Number of bin columns.
    #[inline]
    pub fn nx(&self) -> usize {
        self.nx
    }

    /// Number of bin rows.
    #[inline]
    pub fn ny(&self) -> usize {
        self.ny
    }

    /// Total number of bins.
    #[inline]
    pub fn len(&self) -> usize {
        self.nx * self.ny
    }

    /// `true` if the grid has no bins (never happens for constructed grids).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Flat index of bin `(j, k)`, row-major.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the index is out of range.
    #[inline]
    pub fn flat(&self, idx: BinIdx) -> usize {
        debug_assert!(
            idx.j < self.nx && idx.k < self.ny,
            "bin {idx:?} out of range"
        );
        idx.k * self.nx + idx.j
    }

    /// Bin coordinates for a flat index.
    #[inline]
    pub fn unflat(&self, flat: usize) -> BinIdx {
        BinIdx::new(flat % self.nx, flat / self.nx)
    }

    /// The bin containing a world point, clamped to the grid.
    pub fn bin_of_point(&self, p: Point) -> BinIdx {
        let bx = ((p.x - self.region.llx) / self.bin_w).floor();
        let by = ((p.y - self.region.lly) / self.bin_h).floor();
        BinIdx::new(
            (bx.max(0.0) as usize).min(self.nx - 1),
            (by.max(0.0) as usize).min(self.ny - 1),
        )
    }

    /// The world rectangle of bin `(j, k)`.
    pub fn bin_rect(&self, idx: BinIdx) -> Rect {
        let llx = self.region.llx + idx.j as f64 * self.bin_w;
        let lly = self.region.lly + idx.k as f64 * self.bin_h;
        Rect::new(llx, lly, llx + self.bin_w, lly + self.bin_h)
    }

    /// The world center of bin `(j, k)`.
    pub fn bin_center(&self, idx: BinIdx) -> Point {
        Point::new(
            self.region.llx + (idx.j as f64 + 0.5) * self.bin_w,
            self.region.lly + (idx.k as f64 + 0.5) * self.bin_h,
        )
    }

    /// Converts a world point into continuous *bin coordinates* where each
    /// bin has unit size and bin `(j, k)` spans `[j, j+1) × [k, k+1)`.
    ///
    /// This is the scaling the paper assumes ("the coordinate system is
    /// scaled so that the width and height of each bin is one").
    #[inline]
    pub fn to_bin_coords(&self, p: Point) -> Point {
        Point::new(
            (p.x - self.region.llx) / self.bin_w,
            (p.y - self.region.lly) / self.bin_h,
        )
    }

    /// Converts continuous bin coordinates back into world coordinates.
    #[inline]
    pub fn to_world_coords(&self, p: Point) -> Point {
        Point::new(
            self.region.llx + p.x * self.bin_w,
            self.region.lly + p.y * self.bin_h,
        )
    }

    /// Iterates over all bin indices, row-major.
    pub fn iter(&self) -> impl Iterator<Item = BinIdx> + '_ {
        let nx = self.nx;
        (0..self.len()).map(move |f| BinIdx::new(f % nx, f / nx))
    }

    /// The range of bins overlapped by a world rectangle (inclusive on both
    /// ends), clamped to the grid; `None` if the rectangle lies fully
    /// outside.
    pub fn bins_overlapping(&self, r: &Rect) -> Option<(BinIdx, BinIdx)> {
        if !self.region.intersects(r) {
            return None;
        }
        let lo = self.bin_of_point(Point::new(r.llx, r.lly));
        // Subtract a hair so a rect ending exactly on a bin edge does not
        // claim the next bin.
        let hi = self.bin_of_point(Point::new(
            (r.urx - 1e-12).max(r.llx),
            (r.ury - 1e-12).max(r.lly),
        ));
        Some((lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid() -> BinGrid {
        BinGrid::new(Rect::new(0.0, 0.0, 100.0, 60.0), 20.0)
    }

    #[test]
    fn construction_counts() {
        let g = grid();
        assert_eq!(g.nx(), 5);
        assert_eq!(g.ny(), 3);
        assert_eq!(g.len(), 15);
        assert_eq!(g.bin_area(), 400.0);
    }

    #[test]
    fn uneven_region_stretches_bins() {
        let g = BinGrid::new(Rect::new(0.0, 0.0, 90.0, 50.0), 20.0);
        assert_eq!(g.nx(), 5); // ceil(90/20)
        assert_eq!(g.ny(), 3); // ceil(50/20)
        assert!((g.bin_width() - 18.0).abs() < 1e-12);
        assert!((g.bin_height() - 50.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn flat_round_trip() {
        let g = grid();
        for k in 0..g.ny() {
            for j in 0..g.nx() {
                let idx = BinIdx::new(j, k);
                assert_eq!(g.unflat(g.flat(idx)), idx);
            }
        }
    }

    #[test]
    fn bin_of_point_clamps() {
        let g = grid();
        assert_eq!(g.bin_of_point(Point::new(-5.0, -5.0)), BinIdx::new(0, 0));
        assert_eq!(g.bin_of_point(Point::new(500.0, 500.0)), BinIdx::new(4, 2));
        assert_eq!(g.bin_of_point(Point::new(20.0, 0.0)), BinIdx::new(1, 0));
    }

    #[test]
    fn bin_rect_and_center() {
        let g = grid();
        let idx = BinIdx::new(3, 2);
        assert_eq!(g.bin_rect(idx), Rect::new(60.0, 40.0, 80.0, 60.0));
        assert_eq!(g.bin_center(idx), Point::new(70.0, 50.0));
    }

    #[test]
    fn coordinate_transform_round_trips() {
        let g = grid();
        let p = Point::new(37.0, 44.0);
        let b = g.to_bin_coords(p);
        assert!((b.x - 1.85).abs() < 1e-12);
        assert!((b.y - 2.2).abs() < 1e-12);
        let back = g.to_world_coords(b);
        assert!((back.x - p.x).abs() < 1e-9);
        assert!((back.y - p.y).abs() < 1e-9);
    }

    #[test]
    fn overlap_range() {
        let g = grid();
        let (lo, hi) = g
            .bins_overlapping(&Rect::new(15.0, 5.0, 45.0, 25.0))
            .expect("overlaps");
        assert_eq!(lo, BinIdx::new(0, 0));
        assert_eq!(hi, BinIdx::new(2, 1));
        // Rect ending exactly on bin edge does not spill into next bin.
        let (lo, hi) = g
            .bins_overlapping(&Rect::new(0.0, 0.0, 20.0, 20.0))
            .expect("overlaps");
        assert_eq!(lo, BinIdx::new(0, 0));
        assert_eq!(hi, BinIdx::new(0, 0));
        assert!(g
            .bins_overlapping(&Rect::new(200.0, 200.0, 300.0, 300.0))
            .is_none());
    }

    #[test]
    fn chebyshev_distance() {
        assert_eq!(BinIdx::new(2, 2).chebyshev_distance(BinIdx::new(4, 1)), 2);
        assert_eq!(BinIdx::new(0, 0).chebyshev_distance(BinIdx::new(0, 0)), 0);
        assert_eq!(BinIdx::new(5, 5).chebyshev_distance(BinIdx::new(2, 9)), 4);
    }

    #[test]
    fn iter_visits_all_bins_once() {
        let g = grid();
        let all: Vec<BinIdx> = g.iter().collect();
        assert_eq!(all.len(), g.len());
        assert_eq!(all[0], BinIdx::new(0, 0));
        assert_eq!(all[g.len() - 1], BinIdx::new(4, 2));
    }
}
