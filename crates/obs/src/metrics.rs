//! Atomic metric instruments and the named registry.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// A monotonically increasing counter.
///
/// Cloning is cheap and clones share the same underlying value, so a
/// handle can be fetched from the [`Registry`] once and kept on a hot
/// path.
#[derive(Clone, Debug, Default)]
pub struct Counter {
    value: Arc<AtomicU64>,
}

impl Counter {
    /// Creates a standalone counter starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n` (wrapping on overflow, which at u64 scale is theoretical).
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A gauge: a signed value that can go up and down.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    value: Arc<AtomicI64>,
}

impl Gauge {
    /// Creates a standalone gauge starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    pub fn add(&self, d: i64) {
        self.value.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.value.load(Ordering::Relaxed)
    }
}

struct HistogramInner {
    /// Strictly increasing upper bounds (inclusive) of the regular buckets.
    bounds: Vec<u64>,
    /// One slot per bound plus a trailing overflow bucket.
    counts: Vec<AtomicU64>,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

/// A fixed-bucket histogram of `u64` samples (typically nanoseconds).
///
/// Bucket bounds are chosen at construction and never change, which is
/// what makes snapshots from different threads or hosts mergeable: the
/// merge of two snapshots with equal bounds is exactly the snapshot you
/// would have taken after recording the union of their samples.
///
/// A sample `v` lands in the first bucket whose bound satisfies
/// `v <= bound`; samples above the last bound land in an implicit
/// overflow bucket. `record` is wait-free: two relaxed atomic adds, an
/// atomic max and one bucket increment.
#[derive(Clone)]
pub struct Histogram {
    inner: Arc<HistogramInner>,
}

impl Histogram {
    /// Creates a histogram with the given strictly increasing bucket
    /// upper bounds.
    ///
    /// # Panics
    ///
    /// Panics if `bounds` is empty or not strictly increasing.
    pub fn new(bounds: &[u64]) -> Self {
        assert!(!bounds.is_empty(), "histogram needs at least one bucket");
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        let counts = (0..bounds.len() + 1).map(|_| AtomicU64::new(0)).collect();
        Self {
            inner: Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                counts,
                count: AtomicU64::new(0),
                sum: AtomicU64::new(0),
                max: AtomicU64::new(0),
            }),
        }
    }

    /// Default latency bounds in nanoseconds: 1 µs doubling up to ~64 s
    /// (27 buckets plus overflow). Fine enough for queue/service/e2e
    /// latencies, coarse enough to stay cheap on the wire.
    pub fn latency_bounds() -> Vec<u64> {
        (0..27).map(|i| 1_000u64 << i).collect()
    }

    /// Creates a histogram with [`Histogram::latency_bounds`].
    pub fn latency_default() -> Self {
        Self::new(&Self::latency_bounds())
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        let inner = &self.inner;
        let idx = match inner.bounds.iter().position(|&b| v <= b) {
            Some(i) => i,
            None => inner.bounds.len(),
        };
        inner.counts[idx].fetch_add(1, Ordering::Relaxed);
        inner.count.fetch_add(1, Ordering::Relaxed);
        inner.sum.fetch_add(v, Ordering::Relaxed);
        inner.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Records a duration as nanoseconds (saturating at `u64::MAX`).
    pub fn record_duration(&self, d: Duration) {
        let ns = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        self.record(ns);
    }

    /// Takes a consistent-enough snapshot for reporting.
    ///
    /// Individual loads are relaxed, so a snapshot taken while another
    /// thread records may be off by in-flight samples; it is exact once
    /// recording has quiesced, which is the only time reports are read.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let inner = &self.inner;
        HistogramSnapshot {
            bounds: inner.bounds.clone(),
            counts: inner
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            count: inner.count.load(Ordering::Relaxed),
            sum: inner.sum.load(Ordering::Relaxed),
            max: inner.max.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.snapshot();
        f.debug_struct("Histogram")
            .field("buckets", &s.bounds.len())
            .field("count", &s.count)
            .field("sum", &s.sum)
            .field("max", &s.max)
            .finish()
    }
}

/// A point-in-time copy of a [`Histogram`], safe to serialize, merge
/// and query.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds, strictly increasing.
    pub bounds: Vec<u64>,
    /// Per-bucket sample counts; `counts.len() == bounds.len() + 1`,
    /// the last entry being the overflow bucket.
    pub counts: Vec<u64>,
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample recorded (0 when empty).
    pub max: u64,
}

impl HistogramSnapshot {
    /// An empty snapshot with the given bounds.
    pub fn empty(bounds: &[u64]) -> Self {
        Self {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Estimated value at quantile `p` in `[0.0, 1.0]`.
    ///
    /// Returns the upper bound of the bucket containing the p-th
    /// sample, the recorded max for samples in the overflow bucket, and
    /// 0 for an empty histogram. The estimate therefore never
    /// undershoots the true quantile by more than one bucket width and
    /// never exceeds the largest recorded sample.
    pub fn percentile(&self, p: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let p = p.clamp(0.0, 1.0);
        // Rank of the target sample, 1-based, at least 1.
        let rank = ((p * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return if i < self.bounds.len() {
                    self.bounds[i].min(self.max)
                } else {
                    self.max
                };
            }
        }
        self.max
    }

    /// Mean of the recorded samples (0.0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges `other` into `self`.
    ///
    /// Equivalent to having recorded the union of both sample sets into
    /// one histogram, which is what makes per-worker or per-host
    /// snapshots aggregatable.
    ///
    /// # Panics
    ///
    /// Panics if the bucket bounds differ — merging histograms with
    /// different resolutions would silently lose information.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        assert_eq!(
            self.bounds, other.bounds,
            "cannot merge histograms with different bucket bounds"
        );
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

/// One named metric inside a [`RegistrySnapshot`].
#[derive(Clone, Debug)]
pub enum MetricSnapshot {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A histogram snapshot.
    Histogram(HistogramSnapshot),
}

#[derive(Clone)]
enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// Formats a metric name with `{key="value"}` labels in the canonical
/// exposition form, e.g. `jobs_ok{tenant="acme"}`. The result is meant
/// to be used as a [`Registry`] instrument name, so one registry can
/// hold per-tenant (or per-shard, per-solver, …) variants of a metric
/// side by side and `to_text` output stays grep-able.
///
/// Label values are escaped (`\` → `\\`, `"` → `\"`, newline → `\n`);
/// an empty label slice returns the bare name. Labels are emitted in
/// the order given — pass them in a fixed order so names are stable.
///
/// # Examples
///
/// ```
/// use dpm_obs::labeled;
///
/// assert_eq!(labeled("jobs_ok", &[]), "jobs_ok");
/// assert_eq!(
///     labeled("jobs_ok", &[("tenant", "acme"), ("solver", "ftcs")]),
///     r#"jobs_ok{tenant="acme",solver="ftcs"}"#
/// );
/// ```
pub fn labeled(name: &str, labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return name.to_string();
    }
    let mut out = String::with_capacity(name.len() + 16 * labels.len());
    out.push_str(name);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        for ch in v.chars() {
            match ch {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                _ => out.push(ch),
            }
        }
        out.push('"');
    }
    out.push('}');
    out
}

/// A named collection of instruments.
///
/// `counter`/`gauge`/`histogram` are get-or-register: the first call
/// for a name creates the instrument, later calls return handles to the
/// same one. Handles are cheap clones; fetch them once and keep them,
/// the registry lock is only taken at registration and snapshot time.
#[derive(Clone, Default)]
pub struct Registry {
    instruments: Arc<Mutex<BTreeMap<String, Instrument>>>,
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the counter registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter::new()))
        {
            Instrument::Counter(c) => c.clone(),
            _ => panic!("metric {name:?} already registered as a different kind"),
        }
    }

    /// Returns the gauge registered under `name`, creating it if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge::new()))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => panic!("metric {name:?} already registered as a different kind"),
        }
    }

    /// Returns the histogram registered under `name`, creating it with
    /// the given bounds if new.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind, or
    /// as a histogram with different bounds.
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        let mut map = self.instruments.lock().unwrap();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Histogram(Histogram::new(bounds)))
        {
            Instrument::Histogram(h) => {
                assert_eq!(
                    h.inner.bounds, bounds,
                    "histogram {name:?} already registered with different bounds"
                );
                h.clone()
            }
            _ => panic!("metric {name:?} already registered as a different kind"),
        }
    }

    /// Takes a deterministic snapshot of every instrument, sorted by
    /// name.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let map = self.instruments.lock().unwrap();
        RegistrySnapshot {
            metrics: map
                .iter()
                .map(|(name, inst)| {
                    let snap = match inst {
                        Instrument::Counter(c) => MetricSnapshot::Counter(c.get()),
                        Instrument::Gauge(g) => MetricSnapshot::Gauge(g.get()),
                        Instrument::Histogram(h) => MetricSnapshot::Histogram(h.snapshot()),
                    };
                    (name.clone(), snap)
                })
                .collect(),
        }
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let map = self.instruments.lock().unwrap();
        f.debug_struct("Registry").field("len", &map.len()).finish()
    }
}

/// A deterministic point-in-time copy of a [`Registry`].
#[derive(Clone, Debug, Default)]
pub struct RegistrySnapshot {
    /// Name → metric, sorted by name.
    pub metrics: BTreeMap<String, MetricSnapshot>,
}

impl RegistrySnapshot {
    /// Renders the snapshot in a stable, line-oriented text format.
    ///
    /// Counters and gauges print as `name value`. Histograms print
    /// cumulative buckets (`name_bucket{le="..."} n`, ending with
    /// `le="+Inf"`) followed by `name_count` and `name_sum` — the
    /// Prometheus text flavour, minus types and help lines. Output is
    /// byte-stable for equal snapshots, so it can be diffed in tests.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            match metric {
                MetricSnapshot::Counter(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricSnapshot::Gauge(v) => {
                    let _ = writeln!(out, "{name} {v}");
                }
                MetricSnapshot::Histogram(h) => {
                    let mut cum = 0u64;
                    for (i, &c) in h.counts.iter().enumerate() {
                        cum += c;
                        if i < h.bounds.len() {
                            let _ = writeln!(out, "{name}_bucket{{le=\"{}\"}} {cum}", h.bounds[i]);
                        } else {
                            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {cum}");
                        }
                    }
                    let _ = writeln!(out, "{name}_count {}", h.count);
                    let _ = writeln!(out, "{name}_sum {}", h.sum);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labeled_names_format_and_escape() {
        assert_eq!(labeled("up", &[]), "up");
        assert_eq!(labeled("up", &[("tenant", "a")]), "up{tenant=\"a\"}");
        assert_eq!(
            labeled("up", &[("t", "a\"b"), ("u", "c\\d"), ("v", "e\nf")]),
            "up{t=\"a\\\"b\",u=\"c\\\\d\",v=\"e\\nf\"}"
        );
        // Labeled variants are distinct registry entries that show up in
        // the text exposition.
        let reg = Registry::new();
        reg.counter(&labeled("jobs_ok", &[("tenant", "acme")]))
            .inc();
        reg.counter(&labeled("jobs_ok", &[("tenant", "zeta")]))
            .add(2);
        let text = reg.snapshot().to_text();
        assert!(text.contains("jobs_ok{tenant=\"acme\"} 1"), "{text}");
        assert!(text.contains("jobs_ok{tenant=\"zeta\"} 2"), "{text}");
    }

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 6, "clones share the underlying value");

        let g = Gauge::new();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn empty_histogram_percentiles_are_zero() {
        let h = Histogram::new(&[10, 100, 1000]);
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile(0.0), 0);
        assert_eq!(s.percentile(0.5), 0);
        assert_eq!(s.percentile(0.99), 0);
        assert_eq!(s.percentile(1.0), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn single_sample_dominates_every_percentile() {
        let h = Histogram::new(&[10, 100, 1000]);
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 42);
        assert_eq!(s.max, 42);
        // 42 lands in the (10, 100] bucket; the estimate is capped at
        // the recorded max, so every percentile is exactly 42.
        for p in [0.0, 0.01, 0.5, 0.99, 1.0] {
            assert_eq!(s.percentile(p), 42, "p={p}");
        }
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn overflow_bucket_reports_recorded_max() {
        let h = Histogram::new(&[10, 100]);
        h.record(5);
        h.record(50_000);
        h.record(70_000);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 0, 2]);
        assert_eq!(s.max, 70_000);
        // p100 and p67 both land in the overflow bucket → the max.
        assert_eq!(s.percentile(1.0), 70_000);
        assert_eq!(s.percentile(0.67), 70_000);
        // p33 is the in-range sample: reported as its bucket's upper bound.
        assert_eq!(s.percentile(0.33), 10);
    }

    #[test]
    fn boundary_sample_lands_in_its_bucket_inclusively() {
        let h = Histogram::new(&[10, 100]);
        h.record(10);
        h.record(11);
        let s = h.snapshot();
        assert_eq!(s.counts, vec![1, 1, 0]);
    }

    #[test]
    fn merge_equals_recording_the_union_of_samples() {
        let bounds = [10u64, 100, 1000, 10_000];
        let a = Histogram::new(&bounds);
        let b = Histogram::new(&bounds);
        let union = Histogram::new(&bounds);

        let sa = [3u64, 15, 99, 12_000, 500];
        let sb = [1u64, 1, 2_000, 10_000, 77_777, 10];
        for &v in &sa {
            a.record(v);
            union.record(v);
        }
        for &v in &sb {
            b.record(v);
            union.record(v);
        }

        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, union.snapshot());
    }

    #[test]
    fn merge_is_commutative() {
        let bounds = [10u64, 100];
        let a = Histogram::new(&bounds);
        let b = Histogram::new(&bounds);
        a.record(5);
        a.record(500);
        b.record(50);
        let mut ab = a.snapshot();
        ab.merge(&b.snapshot());
        let mut ba = b.snapshot();
        ba.merge(&a.snapshot());
        assert_eq!(ab, ba);
    }

    #[test]
    #[should_panic(expected = "different bucket bounds")]
    fn merge_rejects_mismatched_bounds() {
        let mut a = Histogram::new(&[10, 100]).snapshot();
        let b = Histogram::new(&[10, 200]).snapshot();
        a.merge(&b);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn non_increasing_bounds_are_rejected() {
        let _ = Histogram::new(&[10, 10]);
    }

    #[test]
    fn empty_snapshot_helper_matches_fresh_histogram() {
        let bounds = Histogram::latency_bounds();
        assert_eq!(
            HistogramSnapshot::empty(&bounds),
            Histogram::new(&bounds).snapshot()
        );
    }

    #[test]
    fn registry_get_or_register_returns_shared_handles() {
        let r = Registry::new();
        let c1 = r.counter("jobs");
        let c2 = r.counter("jobs");
        c1.inc();
        c2.inc();
        assert_eq!(c1.get(), 2);

        let h1 = r.histogram("lat", &[10, 100]);
        let h2 = r.histogram("lat", &[10, 100]);
        h1.record(5);
        h2.record(50);
        assert_eq!(h1.snapshot().count, 2);
    }

    #[test]
    #[should_panic(expected = "different kind")]
    fn registry_rejects_kind_conflicts() {
        let r = Registry::new();
        let _ = r.counter("x");
        let _ = r.gauge("x");
    }

    #[test]
    fn exposition_format_is_stable_and_sorted() {
        let r = Registry::new();
        r.counter("b_requests").add(3);
        r.gauge("a_depth").set(-2);
        let h = r.histogram("c_lat", &[10, 100]);
        h.record(5);
        h.record(5_000);

        let text = r.snapshot().to_text();
        let expected = "a_depth -2\n\
                        b_requests 3\n\
                        c_lat_bucket{le=\"10\"} 1\n\
                        c_lat_bucket{le=\"100\"} 1\n\
                        c_lat_bucket{le=\"+Inf\"} 2\n\
                        c_lat_count 2\n\
                        c_lat_sum 5005\n";
        assert_eq!(text, expected);
        // Byte-stable: a second snapshot renders identically.
        assert_eq!(r.snapshot().to_text(), text);
    }

    #[test]
    fn histogram_is_safe_under_concurrent_recording() {
        let h = Histogram::latency_default();
        let threads: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.record(t * 1_000_000 + i);
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let s = h.snapshot();
        assert_eq!(s.count, 4000);
        assert_eq!(s.counts.iter().sum::<u64>(), 4000);
    }
}
