#![warn(missing_docs)]

//! Lightweight static timing analysis for placement-quality metrics.
//!
//! The paper evaluates legalizers with IBM's Einstimer; this crate is the
//! workspace's stand-in: a topological static timing analyzer over the
//! netlist DAG with a *linear* wire-delay model (net delay proportional to
//! the source-to-sink Manhattan distance, plus a half-perimeter fanout
//! term). Timing here is a **quality metric of placement perturbation** —
//! any monotone delay model that worsens when connected cells move apart
//! preserves the comparisons the paper makes, which is exactly what this
//! model does.
//!
//! Reported metrics match the paper's:
//!
//! - **WNS** (worst negative slack) — Tables III, IX, Figs. 11–13;
//! - **FOM** — the sum of negative endpoint slacks (the paper's "weighted
//!   area under the timing histogram of paths with negative slack").
//!
//! # Examples
//!
//! ```
//! use dpm_geom::Point;
//! use dpm_netlist::{NetlistBuilder, CellKind, PinDir};
//! use dpm_place::Placement;
//! use dpm_sta::{DelayModel, TimingAnalyzer};
//!
//! // pad → g1 → g2 (chain), unit cell delays.
//! let mut b = NetlistBuilder::new();
//! let pi = b.add_cell("pi", 1.0, 1.0, CellKind::Pad);
//! let g1 = b.add_cell("g1", 4.0, 12.0, CellKind::Movable);
//! let g2 = b.add_cell("g2", 4.0, 12.0, CellKind::Movable);
//! let n0 = b.add_net("n0");
//! let n1 = b.add_net("n1");
//! b.connect(pi, n0, PinDir::Output, 0.0, 0.0);
//! b.connect(g1, n0, PinDir::Input, 0.0, 6.0);
//! b.connect(g1, n1, PinDir::Output, 4.0, 6.0);
//! b.connect(g2, n1, PinDir::Input, 0.0, 6.0);
//! let nl = b.build()?;
//!
//! let mut p = Placement::new(nl.num_cells());
//! p.set(g1, Point::new(10.0, 0.0));
//! p.set(g2, Point::new(30.0, 0.0));
//!
//! let sta = TimingAnalyzer::new(&nl, DelayModel::default());
//! let report = sta.analyze(&nl, &p, 100.0);
//! assert!(report.wns > 0.0); // generous clock: everything meets timing
//! assert_eq!(report.fom, 0.0);
//! # Ok::<(), dpm_netlist::BuildNetlistError>(())
//! ```

mod analyzer;
mod delay;

pub use analyzer::{TimingAnalyzer, TimingReport};
pub use delay::DelayModel;
