//! Hotspot spreading: watch the diffusion process work.
//!
//! Builds a congestion hotspot, runs global diffusion step by step, traces
//! one cell's migration trajectory (the paper's Fig. 3 — a smooth,
//! non-direct route around obstacles), and writes before/after density
//! SVGs to `results/`.
//!
//! Run with: `cargo run --release --example hotspot_spreading`

use diffuplace::diffusion::{DiffusionConfig, GlobalDiffusion};
use diffuplace::gen::{CircuitSpec, InflationSpec};
use diffuplace::place::{BinGrid, DensityMap};
use diffuplace::viz::SvgScene;

fn main() {
    let mut bench = CircuitSpec::with_size("hotspot", 1_500, 5)
        .with_macros(2)
        .generate();
    bench.inflate(&InflationSpec::centered(0.18, 0.25, 6));

    let cfg = DiffusionConfig::default()
        .with_bin_size(2.5 * bench.die.row_height())
        .with_windows(1, 2);
    let grid = BinGrid::new(bench.die.outline(), cfg.bin_size);

    let before = DensityMap::from_placement(&bench.netlist, &bench.placement, grid.clone());
    println!(
        "before diffusion: max density {:.2}, overflow {:.2}",
        before.max_density(),
        before.total_overflow(1.0)
    );
    save_svg("hotspot_before.svg", &bench, &before);

    // Pick a cell near the hotspot center and trace its trajectory by
    // running diffusion in bounded chunks.
    let center = bench.die.outline().center();
    let traced = bench
        .netlist
        .movable_cell_ids()
        .min_by(|&a, &b| {
            let da = bench
                .placement
                .cell_center(&bench.netlist, a)
                .distance(center);
            let db = bench
                .placement
                .cell_center(&bench.netlist, b)
                .distance(center);
            da.total_cmp(&db)
        })
        .expect("cells exist");

    let mut placement = bench.placement.clone();
    let mut trajectory = vec![placement.cell_center(&bench.netlist, traced)];
    let mut total_steps = 0;
    for chunk in 0..20 {
        let runner = GlobalDiffusion::new(cfg.clone().with_max_steps(25));
        let r = runner.run(&bench.netlist, &bench.die, &mut placement);
        total_steps += r.steps;
        trajectory.push(placement.cell_center(&bench.netlist, traced));
        if r.converged {
            println!(
                "converged after {} steps ({} chunks)",
                total_steps,
                chunk + 1
            );
            break;
        }
    }

    println!("\ntrajectory of cell {traced} (paper Fig. 3 — smooth, shrinking steps):");
    for (i, p) in trajectory.iter().enumerate() {
        let step = if i == 0 {
            0.0
        } else {
            (*p - trajectory[i - 1]).length()
        };
        println!(
            "  chunk {i:>2}: ({:>7.2}, {:>7.2})  moved {step:>6.2}",
            p.x, p.y
        );
    }

    let after = DensityMap::from_placement(&bench.netlist, &placement, grid);
    println!(
        "\nafter diffusion: max density {:.2}, overflow {:.2}",
        after.max_density(),
        after.total_overflow(1.0)
    );
    let mut after_bench = bench.clone();
    after_bench.placement = placement;
    save_svg("hotspot_after.svg", &after_bench, &after);
    println!("wrote results/hotspot_before.svg and results/hotspot_after.svg");
}

fn save_svg(name: &str, bench: &diffuplace::gen::Benchmark, density: &DensityMap) {
    let svg = SvgScene::new(bench.die.outline())
        .with_placement(&bench.netlist, &bench.placement)
        .with_density(density, 1.0)
        .render();
    std::fs::create_dir_all("results").expect("create results dir");
    std::fs::write(format!("results/{name}"), svg).expect("write svg");
}
