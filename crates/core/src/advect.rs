//! Cell advection through the diffusion velocity field (paper Eq. 7).

use crate::{DiffusionConfig, DiffusionEngine};
use dpm_geom::{clamp, Point};
use dpm_netlist::{CellId, Netlist};
use dpm_par::{chunk_ranges, parallel_for_chunks, tree_reduce};
use dpm_place::{BinGrid, Placement};

/// Movable cells per parallel advection chunk. Fixed (independent of the
/// thread count) so partial `AdvectOutcome` sums fold identically at any
/// parallelism — the bit-identical guarantee of the kernel runtime.
///
/// Sized so the per-chunk overhead (a move-list `Vec` allocation plus a
/// pool dispatch) stays small against the per-cell work: at 2048 the
/// chunks were fine enough that 4 threads ran *slower* than 1 on a
/// 256×256 / 100k-cell advect (0.982×); 4096 keeps dozens of chunks in
/// flight on realistic designs while halving the fixed costs.
const CELL_CHUNK: usize = 4096;

/// Result of advecting all cells through one time step.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AdvectOutcome {
    /// Sum of world-space displacements this step.
    pub total_movement: f64,
    /// Number of cells that moved.
    pub moved_cells: usize,
}

/// Moves every movable cell one step along the velocity field:
/// `x(n+1) = x(n) + v(x(n), y(n)) · Δt` (Eq. 7), with the velocity taken
/// at the cell *center*, bilinearly interpolated when
/// [`DiffusionConfig::interpolate`] is set.
///
/// Rules enforced, in order:
///
/// 1. cells whose center sits in a wall or (when `respect_frozen`) frozen
///    bin do not move;
/// 2. the per-step displacement is clamped to
///    [`DiffusionConfig::max_step_displacement`] bins (CFL);
/// 3. a move whose destination bin is a wall is projected onto the axis
///    that stays outside the wall (cells slide around macros, never onto
///    them);
/// 4. the cell is clamped so its outline stays inside the grid region.
///
/// Each cell's step depends only on its *own* position and the (fixed)
/// velocity field, so cells advect in parallel on the engine's worker
/// pool. Every chunk *owns* a slice of one preallocated plan buffer —
/// slot `i` is cell `ids[i]`'s move — so the parallel pass allocates
/// nothing and there is no per-chunk move list to merge; the serial
/// tail just applies the planned moves in cell order and folds the
/// per-chunk partials in a fixed-shape tree. Chunks are fixed-size
/// (independent of the thread count), so results are bit-identical at
/// every parallelism.
pub(crate) fn advect_cells(
    engine: &DiffusionEngine,
    grid: &BinGrid,
    netlist: &Netlist,
    placement: &mut Placement,
    cfg: &DiffusionConfig,
    respect_frozen: bool,
) -> AdvectOutcome {
    let ids: Vec<CellId> = netlist.movable_cell_ids().collect();
    let frozen_placement: &Placement = placement;
    let mut planned: Vec<Option<(Point, f64)>> = vec![None; ids.len()];
    parallel_for_chunks(engine.pool(), &mut planned, CELL_CHUNK, |_, range, out| {
        for (slot, &cell_id) in out.iter_mut().zip(&ids[range]) {
            *slot = advect_one(
                engine,
                grid,
                netlist,
                frozen_placement,
                cfg,
                respect_frozen,
                cell_id,
            );
        }
    });

    // Serial apply + partial-outcome accumulation, chunked exactly like
    // the historical per-chunk sums so the tree fold sees the same
    // addition order.
    let mut partials = Vec::new();
    for range in chunk_ranges(ids.len(), CELL_CHUNK) {
        let mut partial = AdvectOutcome::default();
        for (plan, &cell_id) in planned[range.clone()].iter().zip(&ids[range]) {
            if let Some((new_pos, dist)) = plan {
                placement.set(cell_id, *new_pos);
                partial.total_movement += dist;
                partial.moved_cells += 1;
            }
        }
        partials.push(partial);
    }
    tree_reduce(partials, |a, b| AdvectOutcome {
        total_movement: a.total_movement + b.total_movement,
        moved_cells: a.moved_cells + b.moved_cells,
    })
    .unwrap_or_default()
}

/// One cell's advection step: the new position and the distance moved, or
/// `None` if the cell stays put. Pure in the placement — reads only the
/// cell's own position — which is what makes the parallel map sound.
fn advect_one(
    engine: &DiffusionEngine,
    grid: &BinGrid,
    netlist: &Netlist,
    placement: &Placement,
    cfg: &DiffusionConfig,
    respect_frozen: bool,
    cell_id: CellId,
) -> Option<(Point, f64)> {
    let nx = engine.nx() as f64;
    let ny = engine.ny() as f64;
    let cell = netlist.cell(cell_id);
    let old_pos = placement.get(cell_id);
    let center_world = Point::new(old_pos.x + cell.width / 2.0, old_pos.y + cell.height / 2.0);
    let c = grid.to_bin_coords(center_world);

    let (j, k) = bin_of(c, engine);
    if engine.is_wall(j, k) {
        return None;
    }
    if respect_frozen && engine.is_frozen(j, k) {
        return None;
    }

    let v = if cfg.interpolate {
        engine.velocity_at(c)
    } else {
        engine.bin_velocity(j, k)
    };
    let disp = (v * cfg.dt).clamped_linf(cfg.max_step_displacement);
    if disp.linf_length() == 0.0 {
        return None;
    }

    // Keep the cell outline inside the region (all in bin coords).
    let half_w = cell.width / (2.0 * grid.bin_width());
    let half_h = cell.height / (2.0 * grid.bin_height());
    let lim = |v: f64, half: f64, n: f64| {
        if 2.0 * half >= n {
            n / 2.0 // cell wider than region: pin to the middle
        } else {
            clamp(v, half, n - half)
        }
    };
    let mut target = Point::new(lim(c.x + disp.x, half_w, nx), lim(c.y + disp.y, half_h, ny));

    // Never step onto a macro: project the move axis-wise.
    let (tj, tk) = bin_of(target, engine);
    if engine.is_wall(tj, tk) {
        let x_only = Point::new(target.x, c.y);
        let (xj, xk) = bin_of(x_only, engine);
        let y_only = Point::new(c.x, target.y);
        let (yj, yk) = bin_of(y_only, engine);
        if !engine.is_wall(xj, xk) {
            target = x_only;
        } else if !engine.is_wall(yj, yk) {
            target = y_only;
        } else {
            return None;
        }
    }

    let new_center_world = grid.to_world_coords(target);
    let new_pos = Point::new(
        new_center_world.x - cell.width / 2.0,
        new_center_world.y - cell.height / 2.0,
    );
    let dist = (new_pos - old_pos).length();
    if dist > 0.0 {
        Some((new_pos, dist))
    } else {
        None
    }
}

/// The (clamped) bin containing a point in bin coordinates.
fn bin_of(p: Point, engine: &DiffusionEngine) -> (usize, usize) {
    let j = (p.x.floor().max(0.0) as usize).min(engine.nx() - 1);
    let k = (p.y.floor().max(0.0) as usize).min(engine.ny() - 1);
    (j, k)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Rect;
    use dpm_netlist::{CellKind, NetlistBuilder};

    /// One 2×2 cell on a 4×4 grid of 10-unit bins.
    fn setup(at_world: Point) -> (Netlist, Placement, BinGrid) {
        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", 2.0, 2.0, CellKind::Movable);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(1);
        p.set(c, at_world);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
        (nl, p, grid)
    }

    fn engine_with_uniform_velocity(vx: f64, vy: f64) -> DiffusionEngine {
        let mut e = DiffusionEngine::from_raw(4, 4, vec![1.0; 16], None);
        for k in 0..4 {
            for j in 0..4 {
                e.set_bin_velocity(j, k, dpm_geom::Vector::new(vx, vy));
            }
        }
        e
    }

    #[test]
    fn cell_moves_along_field() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0));
        let e = engine_with_uniform_velocity(1.0, 0.0);
        let cfg = DiffusionConfig::default();
        let out = advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        assert_eq!(out.moved_cells, 1);
        // v = 1 bin per unit time, dt = 0.2 → 0.2 bins = 2 world units.
        let np = p.get(dpm_netlist::CellId::new(0));
        assert!((np.x - 16.0).abs() < 1e-9, "x = {}", np.x);
        assert!((np.y - 14.0).abs() < 1e-9);
        assert!((out.total_movement - 2.0).abs() < 1e-9);
    }

    #[test]
    fn displacement_is_cfl_clamped() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0));
        let e = engine_with_uniform_velocity(100.0, 0.0); // absurd speed
        let cfg = DiffusionConfig::default();
        advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        let np = p.get(dpm_netlist::CellId::new(0));
        // At most 1 bin = 10 world units.
        assert!(np.x - 14.0 <= 10.0 + 1e-9);
    }

    #[test]
    fn cell_never_leaves_region() {
        let (nl, mut p, grid) = setup(Point::new(36.0, 36.0));
        let e = engine_with_uniform_velocity(5.0, 5.0);
        let cfg = DiffusionConfig::default();
        for _ in 0..20 {
            advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        }
        let r = p.cell_rect(&nl, dpm_netlist::CellId::new(0));
        assert!(grid.region().contains_rect(&r), "cell escaped: {r}");
    }

    #[test]
    fn cell_slides_around_wall() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0)); // center (15,15), bin (1,1)
        let mut d = vec![1.0; 16];
        d[4 + 2] = 1.0;
        let mut wall = vec![false; 16];
        wall[4 + 2] = true; // bin (2,1) east of the cell
        let mut e = DiffusionEngine::from_raw(4, 4, d, Some(wall));
        for k in 0..4 {
            for j in 0..4 {
                e.set_bin_velocity(j, k, dpm_geom::Vector::new(5.0, 5.0));
            }
        }
        let cfg = DiffusionConfig::default();
        advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        let center = p.cell_center(&nl, dpm_netlist::CellId::new(0));
        let b = grid.bin_of_point(center);
        assert!(!(b.j == 2 && b.k == 1), "cell moved onto the macro");
        // It still moved (slid north).
        assert!(center.y > 15.0);
    }

    #[test]
    fn frozen_bin_pins_cells_when_respected() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0));
        let mut e = engine_with_uniform_velocity(1.0, 1.0);
        let mut frozen = vec![false; 16];
        frozen[4 + 1] = true; // the cell's own bin
        e.set_frozen_mask(&frozen);
        let cfg = DiffusionConfig::default();
        let out = advect_cells(&e, &grid, &nl, &mut p, &cfg, true);
        assert_eq!(out.moved_cells, 0);
        assert_eq!(p.get(dpm_netlist::CellId::new(0)), Point::new(14.0, 14.0));
        // Without respect_frozen the cell moves.
        let out2 = advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        assert_eq!(out2.moved_cells, 1);
    }

    #[test]
    fn parallel_advection_is_bit_identical_to_serial() {
        // ~10000 cells (3 advection chunks at CELL_CHUNK = 4096) on a
        // bumpy 64x64 field with a wall block and a frozen stripe; every
        // thread count must produce exactly the same placement and
        // outcome, including the partial chunk at the tail.
        let n = 64usize;
        let mut b = NetlistBuilder::new();
        for i in 0..10_000 {
            b.add_cell(format!("c{i}"), 2.0, 2.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 640.0, 640.0), 10.0);
        let mut p0 = Placement::new(nl.num_cells());
        for (i, c) in nl.cell_ids().enumerate() {
            let h = (i * 2654435761usize) % 1_000_000;
            p0.set(
                c,
                Point::new((h % 1000) as f64 * 0.63, (h / 1000) as f64 * 0.63),
            );
        }
        let density: Vec<f64> = (0..n * n)
            .map(|i| 0.25 + ((i * 2654435761usize) % 997) as f64 / 997.0)
            .collect();
        let mut wall = vec![false; n * n];
        for k in 20..28 {
            for j in 30..44 {
                wall[k * n + j] = true;
            }
        }
        let mut frozen = vec![false; n * n];
        for k in 48..56 {
            for j in 8..20 {
                frozen[k * n + j] = true;
            }
        }
        let cfg = DiffusionConfig::default();
        let run = |threads: usize| {
            let mut e = DiffusionEngine::from_raw(n, n, density.clone(), Some(wall.clone()));
            e.set_frozen_mask(&frozen);
            e.set_threads(threads);
            e.compute_velocities();
            let mut p = p0.clone();
            let out = advect_cells(&e, &grid, &nl, &mut p, &cfg, true);
            (out, p)
        };
        let (ref_out, ref_p) = run(1);
        assert!(ref_out.moved_cells > 0, "test must actually move cells");
        for threads in [2, 4, 8] {
            let (out, p) = run(threads);
            assert_eq!(ref_out, out, "outcome differs at {threads} threads");
            assert_eq!(ref_p, p, "placement differs at {threads} threads");
        }
    }

    #[test]
    fn zero_velocity_means_no_movement() {
        let (nl, mut p, grid) = setup(Point::new(14.0, 14.0));
        let e = engine_with_uniform_velocity(0.0, 0.0);
        let cfg = DiffusionConfig::default();
        let out = advect_cells(&e, &grid, &nl, &mut p, &cfg, false);
        assert_eq!(out, AdvectOutcome::default());
    }
}
