//! Shard-routing benchmark: one migration job fanned out over K TCP
//! backends with density halo exchange.
//!
//! Boots K [`Server`]s on ephemeral ports, routes a set of generated
//! hot-spot jobs through a [`ShardRouter`], and reports per-shard
//! service latency (the router's merged `dpm-obs` histogram) and
//! end-to-end routed latency percentiles, plus a 1-shard-vs-K-shard
//! comparison of final max bin density and raw overflow on identical
//! requests — the K = 1 route is bit-identical to a direct engine run,
//! so it doubles as the unsharded baseline.
//!
//! Every job streams progress frames from its TCP shards, and the
//! router's maximum-principle invariant is asserted on each reply: the
//! measured max density trace never rises across an accepted
//! halo-exchange round.
//!
//! Usage: `cargo run --release --bin perf_shard [-- <output-path>]
//! [--smoke]`
//!
//! `--smoke` boots a 2-shard router and replays one streamed request
//! (used by `scripts/ci.sh`, which grep-pins the emitted JSON).

use std::time::Instant;

use dpm_diffusion::DiffusionConfig;
use dpm_gen::{Benchmark, CircuitSpec, InflationSpec};
use dpm_obs::{Histogram, HistogramSnapshot};
use dpm_place::{BinGrid, DensityMap, Placement};
use dpm_serve::shard::{ShardBackend, ShardRouter, ShardRouterConfig};
use dpm_serve::wire::{JobKind, JobRequest};
use dpm_serve::{ServeConfig, Server};

struct LoadSpec {
    /// Shard count K (one TCP server per shard).
    shards: usize,
    /// Jobs routed through the sharded and the 1-shard router.
    jobs: usize,
    /// Cells per circuit preset (jobs cycle through these).
    circuit_cells: &'static [usize],
    /// Halo-exchange round cap per job.
    max_halo_rounds: usize,
}

const FULL: LoadSpec = LoadSpec {
    shards: 4,
    jobs: 6,
    circuit_cells: &[400, 600],
    max_halo_rounds: 8,
};

const SMOKE: LoadSpec = LoadSpec {
    shards: 2,
    jobs: 1,
    circuit_cells: &[400],
    max_halo_rounds: 4,
};

/// Progress stride for the streamed shard sub-requests.
const STREAM_STRIDE: u32 = 4;

fn hot_bench(cells: usize, seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("shard", cells, seed).generate();
    b.inflate(&InflationSpec::centered(0.15, 0.35, seed ^ 0x5A4D));
    b
}

fn request(bench: &Benchmark, id: u64) -> JobRequest {
    JobRequest {
        id,
        deadline_ms: 0,
        progress_stride: STREAM_STRIDE,
        kind: JobKind::Local,
        design: format!("shard_job_{id}"),
        // W1 = 0 judges raw bin density and Δ = 0 keeps diffusing until
        // every bin is at or below d_max, so the density comparison
        // below measures the criterion the engines actually chase.
        config: DiffusionConfig::default()
            .with_windows(0, 2)
            .with_delta(0.0)
            .with_d_max(1.1),
        netlist: bench.netlist.clone(),
        die: bench.die.clone(),
        placement: bench.placement.clone(),
        vol: None,
        trace: None,
    }
}

fn hist_json(name: &str, s: &HistogramSnapshot) -> String {
    format!(
        "\"{name}\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}, \"mean_us\": {:.1}, \"count\": {}}}",
        s.percentile(0.50) as f64 / 1e3,
        s.percentile(0.95) as f64 / 1e3,
        s.percentile(0.99) as f64 / 1e3,
        s.max as f64 / 1e3,
        s.mean() / 1e3,
        s.count,
    )
}

fn latency_json(name: &str, ns: &[u64]) -> String {
    let h = Histogram::new(&Histogram::latency_bounds());
    for &v in ns {
        h.record(v);
    }
    hist_json(name, &h.snapshot())
}

/// Max bin density and raw (W = 0) overflow of `positions` applied to
/// the request's netlist.
fn density_of(req: &JobRequest, positions: &[dpm_geom::Point]) -> (f64, f64) {
    let mut p = Placement::new(req.netlist.num_cells());
    for (c, &pos) in req.netlist.cell_ids().zip(positions) {
        p.set(c, pos);
    }
    let grid = BinGrid::new(req.die.outline(), req.config.bin_size);
    let map = DensityMap::from_placement(&req.netlist, &p, grid);
    (
        map.max_density(),
        map.total_local_overflow(0, req.config.d_max),
    )
}

fn main() {
    let mut out_path = "BENCH_shard.json".to_string();
    let mut smoke = false;
    for arg in std::env::args().skip(1) {
        if arg == "--smoke" {
            smoke = true;
        } else {
            out_path = arg;
        }
    }
    let spec = if smoke { &SMOKE } else { &FULL };
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    eprintln!(
        "perf_shard{}: {} job(s) over {} shard(s), {cores} hardware thread(s)",
        if smoke { " (smoke)" } else { "" },
        spec.jobs,
        spec.shards
    );

    let servers: Vec<Server> = (0..spec.shards)
        .map(|_| Server::start("127.0.0.1:0", ServeConfig::default()).expect("server binds"))
        .collect();
    let backends: Vec<ShardBackend> = servers
        .iter()
        .map(|s| ShardBackend::Tcp(s.local_addr()))
        .collect();
    let sharded = ShardRouter::new(
        ShardRouterConfig {
            shards: spec.shards,
            max_halo_rounds: spec.max_halo_rounds,
            ..ShardRouterConfig::default()
        },
        backends.clone(),
    );
    let single = ShardRouter::new(
        ShardRouterConfig {
            shards: 1,
            ..ShardRouterConfig::default()
        },
        vec![backends[0]],
    );

    let mut e2e_ns: Vec<u64> = Vec::with_capacity(spec.jobs);
    let mut shard_hist = HistogramSnapshot::empty(&Histogram::latency_bounds());
    let mut halo_exchanges = 0usize;
    let mut progress_frames = 0u64;
    let mut density_rows: Vec<String> = Vec::with_capacity(spec.jobs);
    let t0 = Instant::now();
    for i in 0..spec.jobs {
        let cells = spec.circuit_cells[i % spec.circuit_cells.len()];
        let bench = hot_bench(cells, 0x5EED + i as u64);
        let req = request(&bench, i as u64 + 1);

        let sent = Instant::now();
        let reply = sharded.route(&req);
        e2e_ns.push(sent.elapsed().as_nanos() as u64);
        for o in &reply.outcomes {
            assert!(o.error.is_none(), "shard {} failed: {:?}", o.shard, o.error);
        }
        let trace = &reply.max_density_trace;
        for w in trace.windows(2) {
            assert!(w[1] <= w[0], "max density rose across a halo exchange");
        }
        assert!(reply.halo_exchanges > 0, "job ran no halo exchange");
        halo_exchanges += reply.halo_exchanges;
        progress_frames += reply.progress_frames;
        shard_hist.merge(&reply.shard_service_hist);

        let baseline = single.route(&req);
        assert!(
            baseline.outcomes[0].error.is_none(),
            "baseline failed: {:?}",
            baseline.outcomes[0].error
        );
        let (initial_max, initial_ovf) = density_of(&req, req.placement.as_slice());
        let (max_1, ovf_1) = density_of(&req, &baseline.response.positions);
        let (max_k, ovf_k) = density_of(&req, &reply.response.positions);
        assert!(
            max_k <= initial_max,
            "sharded route raised max density: {max_k} > {initial_max}"
        );
        density_rows.push(format!(
            "{{\"job\": {}, \"cells\": {cells}, \"initial\": {{\"max_density\": {initial_max:.4}, \"overflow\": {initial_ovf:.4}}}, \"one_shard\": {{\"max_density\": {max_1:.4}, \"overflow\": {ovf_1:.4}}}, \"sharded\": {{\"max_density\": {max_k:.4}, \"overflow\": {ovf_k:.4}, \"halo_exchanges\": {}}}}}",
            i + 1,
            reply.halo_exchanges,
        ));
        eprintln!(
            "  job {}: {cells} cells, max density {initial_max:.3} -> {max_1:.3} (1 shard) / {max_k:.3} ({} shards, {} exchange(s))",
            i + 1,
            spec.shards,
            reply.halo_exchanges
        );
    }
    let wall = t0.elapsed();
    for s in servers {
        s.shutdown();
    }
    assert!(halo_exchanges > 0, "no halo exchanges ran");
    assert!(
        progress_frames > 0,
        "streamed shard requests produced no progress frames"
    );

    let json = format!(
        "{{\n  \"bench\": \"perf_shard\",\n  \"mode\": \"{mode}\",\n  \"hardware_threads\": {cores},\n  \"shards\": {shards},\n  \"config\": {{\"jobs\": {jobs}, \"halo_bins\": 2, \"max_halo_rounds\": {rounds}, \"circuit_cells\": {cells:?}, \"d_max\": 1.1}},\n  \"wall_seconds\": {wall:.3},\n  \"halo_exchanges\": {halo_exchanges},\n  \"progress_frames\": {progress_frames},\n  \"latency\": {{\n    {shard_lat},\n    {e2e_lat}\n  }},\n  \"density\": [\n    {density}\n  ],\n  \"note\": \"Each job is routed twice on identical requests: once over K TCP shard backends with halo exchange, once through a 1-shard router (bit-identical to a direct engine run). shard_service covers every per-shard sub-request (one sample per shard per exchange, merged dpm-obs histograms); e2e is the client-side wall time of the whole routed job. Density rows compare final max bin density and raw overflow; the router enforces that the sharded max never exceeds the initial max.\"\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        shards = spec.shards,
        jobs = spec.jobs,
        rounds = spec.max_halo_rounds,
        cells = spec.circuit_cells,
        wall = wall.as_secs_f64(),
        shard_lat = hist_json("shard_service", &shard_hist),
        e2e_lat = latency_json("e2e", &e2e_ns),
        density = density_rows.join(",\n    "),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_shard.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
