//! Diffusion parameters.

use std::error::Error;
use std::fmt;

/// A reason a [`DiffusionConfig`] is unusable.
///
/// The `with_*` builder setters panic on bad values — appropriate for
/// in-process callers, where a bad config is a programming error. Configs
/// that arrive from *outside* the process (the `dpm-serve` wire protocol,
/// future config files) must instead be checked with
/// [`DiffusionConfig::validate`], which reports the first problem as a
/// typed error so the caller can reject the request without dying.
#[derive(Debug, Clone, PartialEq)]
pub enum ConfigError {
    /// A field that must be a positive finite number is not.
    NonPositive {
        /// Field name as written in [`DiffusionConfig`].
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// A field that must be finite and non-negative is not.
    Negative {
        /// Field name as written in [`DiffusionConfig`].
        field: &'static str,
        /// The offending value.
        value: f64,
    },
    /// `D·Δt` leaves the FTCS stability region `(0, 0.5]`.
    UnstableTimeStep {
        /// The configured `Δt`.
        dt: f64,
        /// The configured diffusivity `D`.
        diffusivity: f64,
    },
    /// The diffusion window is smaller than the analysis window
    /// (`W2 < W1`).
    WindowOrder {
        /// Analysis window `W1`.
        w1: usize,
        /// Diffusion window `W2`.
        w2: usize,
    },
    /// The density-update period `N_U` is zero.
    ZeroUpdatePeriod,
    /// The worker-thread count is zero.
    ZeroThreads,
    /// The spectral solver with a zero step budget: `max_steps == 0`
    /// leaves the closed-form jump zero diffusion time to advance.
    SpectralZeroTime,
    /// The spectral solver combined with the paper's mirror boundary
    /// rule: the DCT basis diagonalizes only the conservative
    /// zero-flux boundary operator, so `paper_boundaries` must be off.
    SpectralPaperBoundaries,
    /// The spectral solver combined with the f32 field mode: the DCT
    /// jump runs in f64 only, so [`FieldPrecision::F32`] requires the
    /// FTCS stepper.
    SpectralF32Field,
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::NonPositive { field, value } => {
                write!(f, "{field} must be a positive finite number, got {value}")
            }
            ConfigError::Negative { field, value } => {
                write!(f, "{field} must be finite and non-negative, got {value}")
            }
            ConfigError::UnstableTimeStep { dt, diffusivity } => write!(
                f,
                "D*dt = {} violates the FTCS stability bound 0 < D*dt <= 0.5 \
                 (dt = {dt}, D = {diffusivity})",
                diffusivity * dt
            ),
            ConfigError::WindowOrder { w1, w2 } => {
                write!(f, "W2 ({w2}) must be at least W1 ({w1})")
            }
            ConfigError::ZeroUpdatePeriod => write!(f, "N_U must be positive"),
            ConfigError::ZeroThreads => write!(f, "thread count must be positive"),
            ConfigError::SpectralZeroTime => write!(
                f,
                "spectral solver needs max_steps > 0: the closed-form jump \
                 has zero diffusion time to advance"
            ),
            ConfigError::SpectralPaperBoundaries => write!(
                f,
                "spectral solver requires the conservative zero-flux boundary \
                 rule (paper_boundaries must be off)"
            ),
            ConfigError::SpectralF32Field => write!(
                f,
                "spectral solver runs in f64 only: precision must be f64 \
                 (FieldPrecision::F32 applies to the FTCS stepper)"
            ),
        }
    }
}

impl Error for ConfigError {}

/// Which solver evolves the density field between cell advections.
///
/// [`Ftcs`](SolverKind::Ftcs) is the paper's explicit
/// Forward-Time-Centered-Space stepping — thousands of O(n) stencil
/// sweeps. [`Spectral`](SolverKind::Spectral) replaces the sweeps with
/// the closed-form DCT jump of
/// [`SpectralSolver`](crate::SpectralSolver): one cached forward
/// transform plus one inverse transform per density query, valid
/// whenever the grid has no walls/frozen bins and the conservative
/// boundary rule is active (the engine falls back to FTCS otherwise —
/// see `GlobalDiffusion`).
///
/// The discriminants are the wire encoding of `dpm-serve` request
/// frames; a frame without the trailing solver byte decodes as
/// [`Ftcs`](SolverKind::Ftcs) for back-compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum SolverKind {
    /// Explicit FTCS time-stepping (the paper's scheme; the default).
    #[default]
    Ftcs = 0,
    /// Closed-form DCT jump to any diffusion time.
    Spectral = 1,
}

impl SolverKind {
    /// Stable lowercase name, as used by `DPM_SOLVER` and bench JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            SolverKind::Ftcs => "ftcs",
            SolverKind::Spectral => "spectral",
        }
    }
}

/// How the grid kernels walk bin lines.
///
/// [`Wide`](LaneMode::Wide) (the default) runs the explicit lane-chunked
/// fast paths on fully-live interior lines — 4 bins per chunk in f64,
/// 8 in f32 — falling back to the generic per-bin path on boundary and
/// masked lines. [`Scalar`](LaneMode::Scalar) forces the generic path
/// everywhere.
///
/// The two modes are **bit-identical**: on the lines the fast path
/// handles, every neighbor is in-grid and live, where the mirror and
/// conservative boundary rules both reduce to plain neighbor reads, and
/// the lane loops perform the exact per-bin operation sequence of the
/// generic path. `scripts/ci.sh` pins that claim by reproducing the
/// golden checksums under `DPM_LANES=scalar` and `wide`; the scalar mode
/// otherwise exists as the throughput baseline `perf_kernels` records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LaneMode {
    /// Generic per-bin loops everywhere (the reference path).
    Scalar,
    /// Lane-chunked fast paths on interior lines (the default).
    #[default]
    Wide,
}

impl LaneMode {
    /// Stable lowercase name, as used by `DPM_LANES` and bench JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            LaneMode::Scalar => "scalar",
            LaneMode::Wide => "wide",
        }
    }
}

/// Arithmetic width of the evolving density field.
///
/// [`F64`](FieldPrecision::F64) (the default) is the bit-exactness
/// anchor: every golden checksum and determinism guarantee is stated in
/// f64. [`F32`](FieldPrecision::F32) halves the field's memory traffic
/// and doubles the lane width — migration-grade accuracy for the FTCS
/// stepper, verified by tolerance fixtures against analytic cosine
/// flows rather than bit-exact goldens (f32 runs are still bit-identical
/// across thread counts and lane modes, just not across precisions).
///
/// The spectral solver always runs in f64
/// ([`validate`](DiffusionConfig::validate) rejects the combination),
/// and there is deliberately no environment override: precision changes
/// results, so it must be chosen explicitly per run.
///
/// The discriminants are the wire encoding of the `dpm-serve` precision
/// extension byte; frames without the extension decode as
/// [`F64`](FieldPrecision::F64).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(u8)]
pub enum FieldPrecision {
    /// Full-width field (the default; all bit-exactness goldens).
    #[default]
    F64 = 0,
    /// Single-precision field for the FTCS stepper (opt-in).
    F32 = 1,
}

impl FieldPrecision {
    /// Stable lowercase name, as used by bench JSON.
    pub fn as_str(&self) -> &'static str {
        match self {
            FieldPrecision::F64 => "f64",
            FieldPrecision::F32 => "f32",
        }
    }
}

/// Tunable parameters of the diffusion process and its legalization
/// wrappers.
///
/// Defaults follow the paper's recommendations from Section VII-C:
/// target density 1.0, `Δt = 0.2` (safely inside the FTCS stability
/// region `Δt ≤ 0.5` for the paper's `Δt/2` Laplacian coefficients and
/// the CFL bound `|v|·Δt ≤ 1` bin), analysis/diffusion window
/// `W1 = W2 = 2`, density-update period `N_U = 30`, and a bin size of a
/// few row heights (set per design via [`with_bin_size`]).
///
/// The type is a plain value: build one with [`Default::default`] and
/// chain `with_*` setters.
///
/// # Examples
///
/// ```
/// use dpm_diffusion::DiffusionConfig;
///
/// let cfg = DiffusionConfig::default()
///     .with_bin_size(30.0)
///     .with_d_max(0.9)
///     .with_windows(2, 3)
///     .with_update_period(15);
/// assert_eq!(cfg.d_max, 0.9);
/// assert_eq!(cfg.w2, 3);
/// ```
///
/// [`with_bin_size`]: DiffusionConfig::with_bin_size
#[derive(Debug, Clone, PartialEq)]
pub struct DiffusionConfig {
    /// Bin edge length in world units. The paper's sweet spot is 2–4 row
    /// heights (Fig. 11).
    pub bin_size: f64,
    /// Maximum allowed bin density `d_max` (commonly 1.0).
    pub d_max: f64,
    /// Convergence tolerance `Δ`: global diffusion stops when the maximum
    /// computed density is at most `d_max + delta`. The default (0.2)
    /// leaves a residue for the detailed legalizer — the paper's "close
    /// to legal" state where only row snapping and minor sliding remain;
    /// chasing a tighter tolerance over-spreads (more movement, worse
    /// wirelength) for no legality benefit. The ablation benches sweep
    /// this.
    pub delta: f64,
    /// Discrete time step `Δt` of the FTCS scheme.
    pub dt: f64,
    /// Diffusivity `D` of Eq. 1 (the paper sets `D = 1`). Scales how fast
    /// density spreads relative to cell motion; the stability requirement
    /// is `D·Δt ≤ 0.5`.
    pub diffusivity: f64,
    /// Hard cap on diffusion steps (guards non-convergent settings).
    pub max_steps: usize,
    /// Apply density-map manipulation (Eq. 8) before global diffusion.
    pub manipulate: bool,
    /// Use bilinear velocity interpolation (Eq. 6); turning this off
    /// assigns every cell its bin's velocity (the ablation of Sec. IV-C).
    pub interpolate: bool,
    /// Analysis window `W1` of Algorithm 2 (Chebyshev radius in bins).
    pub w1: usize,
    /// Diffusion window `W2 ≥ W1` of Algorithm 2.
    pub w2: usize,
    /// Density-update period `N_U`: local diffusion re-measures real
    /// placement density every `n_u` steps (Section VI-B).
    pub n_u: usize,
    /// Hard cap on local-diffusion rounds.
    pub max_rounds: usize,
    /// Largest per-step displacement, in bins (CFL-style clamp).
    pub max_step_displacement: f64,
    /// Use the paper's literal (non-conservative) boundary rule for the
    /// density step instead of the conservative zero-flux ghost. See
    /// [`DiffusionEngine::set_conservative_boundaries`](crate::DiffusionEngine::set_conservative_boundaries).
    pub paper_boundaries: bool,
    /// Which solver evolves the density field between advections.
    /// Defaults to the `DPM_SOLVER` environment variable (`"ftcs"` or
    /// `"spectral"`), else [`SolverKind::Ftcs`] — CI runs the test
    /// suite under both to keep the spectral path honest.
    pub solver: SolverKind,
    /// How the grid kernels walk bin lines (results are bit-identical
    /// either way). Defaults to the `DPM_LANES` environment variable
    /// (`"scalar"` or `"wide"`), else [`LaneMode::Wide`] — CI reproduces
    /// the golden checksums under both to enforce the equivalence.
    pub lanes: LaneMode,
    /// Arithmetic width of the density field. Always
    /// [`FieldPrecision::F64`] unless set explicitly — precision changes
    /// results, so there is no environment override.
    pub precision: FieldPrecision,
    /// Worker threads for the FTCS density step (1 = serial; results are
    /// identical either way). Defaults to the `DPM_THREADS` environment
    /// variable when it holds a positive integer, else 1 — CI runs the
    /// test suite at several values to enforce the bit-identicality
    /// claim.
    pub threads: usize,
}

/// Parses a `DPM_THREADS`-style value: a positive integer, else `None`.
fn parse_threads(value: Option<&str>) -> Option<usize> {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&t| t > 0)
}

/// Default worker-thread count: `DPM_THREADS` from the environment when
/// set to a positive integer, else 1. Results are bit-identical at any
/// thread count (the dpm-par guarantee), so this changes only wall
/// time; `scripts/ci.sh` runs the suite at 1/2/4 to enforce exactly
/// that.
fn default_threads() -> usize {
    parse_threads(std::env::var("DPM_THREADS").ok().as_deref()).unwrap_or(1)
}

/// Parses a `DPM_SOLVER`-style value: `"ftcs"` or `"spectral"`
/// (case-insensitive, whitespace-trimmed), else `None`.
fn parse_solver(value: Option<&str>) -> Option<SolverKind> {
    match value?.trim().to_ascii_lowercase().as_str() {
        "ftcs" => Some(SolverKind::Ftcs),
        "spectral" => Some(SolverKind::Spectral),
        _ => None,
    }
}

/// Default solver: `DPM_SOLVER` from the environment when it names a
/// known solver, else FTCS. `scripts/ci.sh` runs the diffusion suite
/// and the golden checksum under `DPM_SOLVER=spectral` at several
/// thread counts, mirroring the `DPM_THREADS` determinism matrix.
fn default_solver() -> SolverKind {
    parse_solver(std::env::var("DPM_SOLVER").ok().as_deref()).unwrap_or_default()
}

/// Parses a `DPM_LANES`-style value: `"scalar"` or `"wide"`
/// (case-insensitive, whitespace-trimmed), else `None`.
fn parse_lanes(value: Option<&str>) -> Option<LaneMode> {
    match value?.trim().to_ascii_lowercase().as_str() {
        "scalar" => Some(LaneMode::Scalar),
        "wide" => Some(LaneMode::Wide),
        _ => None,
    }
}

/// Default lane mode: `DPM_LANES` from the environment when it names a
/// known mode, else [`LaneMode::Wide`]. Lane mode never changes results
/// (the fast paths are bit-identical to the generic path), so this is a
/// pure performance knob; `scripts/ci.sh` reproduces the golden
/// checksums under `scalar` and `wide` to enforce exactly that.
fn default_lanes() -> LaneMode {
    parse_lanes(std::env::var("DPM_LANES").ok().as_deref()).unwrap_or_default()
}

impl Default for DiffusionConfig {
    fn default() -> Self {
        Self {
            bin_size: 30.0,
            d_max: 1.0,
            delta: 0.2,
            dt: 0.2,
            diffusivity: 1.0,
            max_steps: 5000,
            manipulate: true,
            interpolate: true,
            w1: 2,
            w2: 2,
            n_u: 30,
            max_rounds: 200,
            max_step_displacement: 1.0,
            paper_boundaries: false,
            solver: default_solver(),
            lanes: default_lanes(),
            precision: FieldPrecision::F64,
            threads: default_threads(),
        }
    }
}

impl DiffusionConfig {
    /// Creates the default configuration (same as [`Default::default`]).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the bin edge length in world units.
    ///
    /// # Panics
    ///
    /// Panics if `bin_size` is not positive and finite.
    pub fn with_bin_size(mut self, bin_size: f64) -> Self {
        assert!(
            bin_size.is_finite() && bin_size > 0.0,
            "bin size must be positive"
        );
        self.bin_size = bin_size;
        self
    }

    /// Sets the target maximum density.
    ///
    /// # Panics
    ///
    /// Panics if `d_max` is not positive and finite.
    pub fn with_d_max(mut self, d_max: f64) -> Self {
        assert!(d_max.is_finite() && d_max > 0.0, "d_max must be positive");
        self.d_max = d_max;
        self
    }

    /// Sets the FTCS time step.
    ///
    /// # Panics
    ///
    /// Panics if `dt` is outside `(0, 0.5]` — larger steps violate the
    /// stability condition of the discretization (Section VII-D).
    pub fn with_dt(mut self, dt: f64) -> Self {
        assert!(
            dt > 0.0 && dt <= 0.5,
            "dt must be in (0, 0.5] for FTCS stability"
        );
        self.dt = dt;
        self
    }

    /// Sets the diffusivity `D` (Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `D` is not positive or `D·Δt` leaves the FTCS stability
    /// region `(0, 0.5]`.
    pub fn with_diffusivity(mut self, diffusivity: f64) -> Self {
        assert!(diffusivity > 0.0, "diffusivity must be positive");
        assert!(
            diffusivity * self.dt <= 0.5,
            "D*dt must be at most 0.5 for FTCS stability"
        );
        self.diffusivity = diffusivity;
        self
    }

    /// Sets the convergence tolerance `Δ`.
    pub fn with_delta(mut self, delta: f64) -> Self {
        assert!(delta >= 0.0, "delta must be non-negative");
        self.delta = delta;
        self
    }

    /// Sets the step cap.
    pub fn with_max_steps(mut self, max_steps: usize) -> Self {
        self.max_steps = max_steps;
        self
    }

    /// Enables/disables density-map manipulation (Eq. 8).
    pub fn with_manipulation(mut self, on: bool) -> Self {
        self.manipulate = on;
        self
    }

    /// Enables/disables bilinear velocity interpolation (Eq. 6).
    pub fn with_interpolation(mut self, on: bool) -> Self {
        self.interpolate = on;
        self
    }

    /// Sets the analysis and diffusion window radii of Algorithm 2.
    ///
    /// # Panics
    ///
    /// Panics if `w2 < w1` (the paper requires `W2 ≥ W1`).
    pub fn with_windows(mut self, w1: usize, w2: usize) -> Self {
        assert!(w2 >= w1, "W2 must be at least W1");
        self.w1 = w1;
        self.w2 = w2;
        self
    }

    /// Sets the density-update period `N_U`.
    ///
    /// # Panics
    ///
    /// Panics if `n_u` is zero.
    pub fn with_update_period(mut self, n_u: usize) -> Self {
        assert!(n_u > 0, "N_U must be positive");
        self.n_u = n_u;
        self
    }

    /// Sets the cap on local-diffusion rounds.
    pub fn with_max_rounds(mut self, max_rounds: usize) -> Self {
        self.max_rounds = max_rounds;
        self
    }

    /// Selects the density solver (FTCS stepping or the closed-form
    /// spectral jump).
    pub fn with_solver(mut self, solver: SolverKind) -> Self {
        self.solver = solver;
        self
    }

    /// Selects the kernel lane mode (results are bit-identical either
    /// way; `Scalar` is the throughput baseline).
    pub fn with_lanes(mut self, lanes: LaneMode) -> Self {
        self.lanes = lanes;
        self
    }

    /// Selects the density-field precision. [`FieldPrecision::F32`]
    /// applies only to the FTCS stepper; combine it with
    /// [`SolverKind::Spectral`] and [`validate`](Self::validate)
    /// rejects the config.
    pub fn with_precision(mut self, precision: FieldPrecision) -> Self {
        self.precision = precision;
        self
    }

    /// Sets the FTCS worker-thread count.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn with_threads(mut self, threads: usize) -> Self {
        assert!(threads > 0, "thread count must be positive");
        self.threads = threads;
        self
    }

    /// Checks every field without panicking, reporting the first problem.
    ///
    /// All `with_*` setters keep a valid config valid, but a config
    /// assembled field-by-field (deserialized from the wire, read from a
    /// file) can hold anything — non-positive bin sizes, NaN tolerances, a
    /// zero update period — and the run loops assume validity. Call this
    /// before trusting such a config.
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found, checking fields in
    /// declaration order.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_diffusion::{ConfigError, DiffusionConfig};
    ///
    /// assert!(DiffusionConfig::default().validate().is_ok());
    ///
    /// let mut bad = DiffusionConfig::default();
    /// bad.bin_size = f64::NAN;
    /// assert!(matches!(
    ///     bad.validate(),
    ///     Err(ConfigError::NonPositive { field: "bin_size", .. })
    /// ));
    /// ```
    pub fn validate(&self) -> Result<(), ConfigError> {
        let positive = |field: &'static str, value: f64| {
            if value.is_finite() && value > 0.0 {
                Ok(())
            } else {
                Err(ConfigError::NonPositive { field, value })
            }
        };
        positive("bin_size", self.bin_size)?;
        positive("d_max", self.d_max)?;
        if !(self.delta.is_finite() && self.delta >= 0.0) {
            return Err(ConfigError::Negative {
                field: "delta",
                value: self.delta,
            });
        }
        positive("dt", self.dt)?;
        positive("diffusivity", self.diffusivity)?;
        let ddt = self.diffusivity * self.dt;
        if !(ddt.is_finite() && ddt <= 0.5) {
            return Err(ConfigError::UnstableTimeStep {
                dt: self.dt,
                diffusivity: self.diffusivity,
            });
        }
        if self.w2 < self.w1 {
            return Err(ConfigError::WindowOrder {
                w1: self.w1,
                w2: self.w2,
            });
        }
        if self.n_u == 0 {
            return Err(ConfigError::ZeroUpdatePeriod);
        }
        positive("max_step_displacement", self.max_step_displacement)?;
        if self.threads == 0 {
            return Err(ConfigError::ZeroThreads);
        }
        if self.solver == SolverKind::Spectral {
            if self.max_steps == 0 {
                return Err(ConfigError::SpectralZeroTime);
            }
            if self.paper_boundaries {
                return Err(ConfigError::SpectralPaperBoundaries);
            }
            if self.precision == FieldPrecision::F32 {
                return Err(ConfigError::SpectralF32Field);
            }
        }
        Ok(())
    }

    /// Selects the paper's literal boundary rule (non-conservative) for
    /// the density step. Off by default; see
    /// [`DiffusionEngine::set_conservative_boundaries`](crate::DiffusionEngine::set_conservative_boundaries)
    /// for why.
    pub fn with_paper_boundaries(mut self, on: bool) -> Self {
        self.paper_boundaries = on;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_env_parsing_accepts_only_positive_integers() {
        assert_eq!(parse_threads(None), None);
        assert_eq!(parse_threads(Some("")), None);
        assert_eq!(parse_threads(Some("0")), None);
        assert_eq!(parse_threads(Some("-2")), None);
        assert_eq!(parse_threads(Some("two")), None);
        assert_eq!(parse_threads(Some("4")), Some(4));
        assert_eq!(parse_threads(Some(" 8 ")), Some(8));
    }

    #[test]
    fn solver_env_parsing_accepts_only_known_solvers() {
        assert_eq!(parse_solver(None), None);
        assert_eq!(parse_solver(Some("")), None);
        assert_eq!(parse_solver(Some("fft")), None);
        assert_eq!(parse_solver(Some("ftcs")), Some(SolverKind::Ftcs));
        assert_eq!(parse_solver(Some(" SPECTRAL ")), Some(SolverKind::Spectral));
        assert_eq!(parse_solver(Some("Spectral")), Some(SolverKind::Spectral));
    }

    #[test]
    fn validate_rejects_nonsensical_spectral_settings() {
        let mut c = DiffusionConfig::default().with_solver(SolverKind::Spectral);
        c.max_steps = 0;
        assert_eq!(c.validate(), Err(ConfigError::SpectralZeroTime));
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("max_steps"), "{msg}");

        let mut c = DiffusionConfig::default().with_solver(SolverKind::Spectral);
        c.paper_boundaries = true;
        assert_eq!(c.validate(), Err(ConfigError::SpectralPaperBoundaries));

        // The same settings are fine under FTCS: max_steps == 0 is a
        // legal no-op run and the paper boundary rule is a supported
        // ablation.
        let mut c = DiffusionConfig::default().with_solver(SolverKind::Ftcs);
        c.max_steps = 0;
        c.paper_boundaries = true;
        assert_eq!(c.validate(), Ok(()));

        // A valid spectral config passes.
        let c = DiffusionConfig::default().with_solver(SolverKind::Spectral);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn solver_names_are_stable() {
        assert_eq!(SolverKind::Ftcs.as_str(), "ftcs");
        assert_eq!(SolverKind::Spectral.as_str(), "spectral");
        assert_eq!(SolverKind::default(), SolverKind::Ftcs);
        assert_eq!(SolverKind::Ftcs as u8, 0);
        assert_eq!(SolverKind::Spectral as u8, 1);
    }

    #[test]
    fn lane_env_parsing_accepts_only_known_modes() {
        assert_eq!(parse_lanes(None), None);
        assert_eq!(parse_lanes(Some("")), None);
        assert_eq!(parse_lanes(Some("simd")), None);
        assert_eq!(parse_lanes(Some("scalar")), Some(LaneMode::Scalar));
        assert_eq!(parse_lanes(Some(" WIDE ")), Some(LaneMode::Wide));
        assert_eq!(parse_lanes(Some("Scalar")), Some(LaneMode::Scalar));
    }

    #[test]
    fn lane_and_precision_names_are_stable() {
        assert_eq!(LaneMode::Scalar.as_str(), "scalar");
        assert_eq!(LaneMode::Wide.as_str(), "wide");
        assert_eq!(LaneMode::default(), LaneMode::Wide);
        assert_eq!(FieldPrecision::F64.as_str(), "f64");
        assert_eq!(FieldPrecision::F32.as_str(), "f32");
        assert_eq!(FieldPrecision::default(), FieldPrecision::F64);
        assert_eq!(FieldPrecision::F64 as u8, 0);
        assert_eq!(FieldPrecision::F32 as u8, 1);
    }

    #[test]
    fn validate_rejects_spectral_f32() {
        let c = DiffusionConfig::default()
            .with_solver(SolverKind::Spectral)
            .with_precision(FieldPrecision::F32);
        assert_eq!(c.validate(), Err(ConfigError::SpectralF32Field));
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("f64"), "{msg}");

        // FTCS accepts f32, and spectral accepts f64.
        let c = DiffusionConfig::default()
            .with_solver(SolverKind::Ftcs)
            .with_precision(FieldPrecision::F32);
        assert_eq!(c.validate(), Ok(()));
        let c = DiffusionConfig::default()
            .with_solver(SolverKind::Spectral)
            .with_precision(FieldPrecision::F64);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn defaults_match_paper_recommendations() {
        let c = DiffusionConfig::default();
        assert_eq!(c.d_max, 1.0);
        assert_eq!(c.dt, 0.2);
        assert_eq!(c.n_u, 30);
        assert_eq!((c.w1, c.w2), (2, 2));
        assert!(c.manipulate);
        assert!(c.interpolate);
    }

    #[test]
    fn builder_chains() {
        let c = DiffusionConfig::new()
            .with_bin_size(20.0)
            .with_d_max(0.8)
            .with_dt(0.25)
            .with_delta(0.01)
            .with_max_steps(100)
            .with_manipulation(false)
            .with_interpolation(false)
            .with_windows(1, 4)
            .with_update_period(5)
            .with_max_rounds(7);
        assert_eq!(c.bin_size, 20.0);
        assert_eq!(c.d_max, 0.8);
        assert_eq!(c.dt, 0.25);
        assert_eq!(c.delta, 0.01);
        assert_eq!(c.max_steps, 100);
        assert!(!c.manipulate);
        assert!(!c.interpolate);
        assert_eq!((c.w1, c.w2), (1, 4));
        assert_eq!(c.n_u, 5);
        assert_eq!(c.max_rounds, 7);
    }

    #[test]
    fn validate_accepts_defaults_and_builder_outputs() {
        assert_eq!(DiffusionConfig::default().validate(), Ok(()));
        let c = DiffusionConfig::new()
            .with_bin_size(20.0)
            .with_d_max(0.8)
            .with_dt(0.25)
            .with_windows(1, 4)
            .with_update_period(5)
            .with_threads(4);
        assert_eq!(c.validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_each_bad_field() {
        let base = DiffusionConfig::default;

        let mut c = base();
        c.bin_size = 0.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive {
                field: "bin_size",
                ..
            })
        ));

        let mut c = base();
        c.d_max = f64::NAN;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive { field: "d_max", .. })
        ));

        let mut c = base();
        c.delta = -0.1;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::Negative { field: "delta", .. })
        ));

        let mut c = base();
        c.delta = f64::NAN;
        assert!(c.validate().is_err());

        let mut c = base();
        c.dt = 0.4;
        c.diffusivity = 2.0;
        assert_eq!(
            c.validate(),
            Err(ConfigError::UnstableTimeStep {
                dt: 0.4,
                diffusivity: 2.0
            })
        );

        let mut c = base();
        c.w1 = 3;
        c.w2 = 1;
        assert_eq!(c.validate(), Err(ConfigError::WindowOrder { w1: 3, w2: 1 }));

        let mut c = base();
        c.n_u = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroUpdatePeriod));

        let mut c = base();
        c.threads = 0;
        assert_eq!(c.validate(), Err(ConfigError::ZeroThreads));

        let mut c = base();
        c.max_step_displacement = -1.0;
        assert!(matches!(
            c.validate(),
            Err(ConfigError::NonPositive {
                field: "max_step_displacement",
                ..
            })
        ));
    }

    #[test]
    fn config_error_messages_name_the_field() {
        let c = DiffusionConfig {
            bin_size: -3.0,
            ..DiffusionConfig::default()
        };
        let msg = c.validate().unwrap_err().to_string();
        assert!(msg.contains("bin_size") && msg.contains("-3"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "stability")]
    fn unstable_dt_rejected() {
        let _ = DiffusionConfig::default().with_dt(0.9);
    }

    #[test]
    #[should_panic(expected = "W2 must be at least W1")]
    fn w2_smaller_than_w1_rejected() {
        let _ = DiffusionConfig::default().with_windows(3, 1);
    }
}
