//! Clustered circuit generation with a legal constructive placement.

use dpm_geom::{Point, Rect};
use dpm_netlist::{CellId, CellKind, Netlist, NetlistBuilder, PinDir};
use dpm_place::{Die, Placement};
use dpm_rng::Rng;

/// Parameters of a synthetic circuit.
///
/// Cells are grouped into *clusters* of consecutive ids; most nets stay
/// inside one cluster, a small fraction hop between clusters, mimicking
/// the locality a placed real design exhibits. Nets are oriented from
/// lower to higher cell id, so the netlist is a DAG by construction and
/// the timing substrate can levelize it.
#[derive(Debug, Clone, PartialEq)]
pub struct CircuitSpec {
    /// Benchmark name (used in reports).
    pub name: String,
    /// Number of movable standard cells.
    pub num_cells: usize,
    /// Standard-cell row height (tracks).
    pub row_height: f64,
    /// Minimum cell width (tracks).
    pub min_cell_width: f64,
    /// Maximum cell width (tracks).
    pub max_cell_width: f64,
    /// Fraction of the die area occupied by movable cells.
    pub target_utilization: f64,
    /// Packing density *inside* a cluster: 1.0 abuts cells; lower values
    /// leave small intra-cluster gaps (real placements run ~85-95%).
    pub local_utilization: f64,
    /// How many clusters share one whitespace pocket. 1 puts a gap after
    /// every cluster (whitespace finely distributed); larger values
    /// concentrate the whitespace into fewer, bigger pockets, so free
    /// space is *far* from most cells — the regime where legalizers
    /// genuinely differ.
    pub clusters_per_gap: usize,
    /// Cells per cluster.
    pub cluster_size: usize,
    /// Nets generated per cell.
    pub nets_per_cell: f64,
    /// Fraction of nets that connect different clusters.
    pub global_net_fraction: f64,
    /// Maximum sinks per net.
    pub max_net_sinks: usize,
    /// Number of fixed macro blocks.
    pub num_macros: usize,
    /// Number of I/O pads along the die boundary.
    pub num_pads: usize,
    /// RNG seed — everything derived from the spec is deterministic.
    pub seed: u64,
}

impl CircuitSpec {
    /// A ~1K-cell circuit, handy in tests and examples.
    pub fn small(seed: u64) -> Self {
        Self::with_size("small", 1_000, seed)
    }

    /// A ~10K-cell circuit.
    pub fn medium(seed: u64) -> Self {
        Self::with_size("medium", 10_000, seed)
    }

    /// A named circuit with an explicit cell count and otherwise default
    /// parameters.
    pub fn with_size(name: impl Into<String>, num_cells: usize, seed: u64) -> Self {
        Self {
            name: name.into(),
            num_cells,
            row_height: 12.0,
            min_cell_width: 3.0,
            max_cell_width: 9.0,
            target_utilization: 0.7,
            local_utilization: 0.88,
            clusters_per_gap: 1,
            cluster_size: 40,
            nets_per_cell: 1.1,
            global_net_fraction: 0.05,
            max_net_sinks: 4,
            num_macros: 0,
            num_pads: 32,
            seed,
        }
    }

    /// Same spec with macros added.
    pub fn with_macros(mut self, num_macros: usize) -> Self {
        self.num_macros = num_macros;
        self
    }

    /// Same spec with a different target utilization.
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `(0, 0.95]`.
    pub fn with_utilization(mut self, util: f64) -> Self {
        assert!(
            util > 0.0 && util <= 0.95,
            "utilization must be in (0, 0.95]"
        );
        self.target_utilization = util;
        self
    }

    /// Same spec with whitespace concentrated into one pocket per
    /// `clusters` clusters.
    ///
    /// # Panics
    ///
    /// Panics if `clusters` is zero.
    pub fn with_clusters_per_gap(mut self, clusters: usize) -> Self {
        assert!(clusters > 0, "clusters per gap must be positive");
        self.clusters_per_gap = clusters;
        self
    }

    /// Same spec with a different intra-cluster packing density.
    ///
    /// # Panics
    ///
    /// Panics if `util` is outside `(0.5, 1.0]` or below the overall
    /// target utilization (clusters cannot be looser than the die).
    pub fn with_local_utilization(mut self, util: f64) -> Self {
        assert!(
            util > 0.5 && util <= 1.0,
            "local utilization must be in (0.5, 1.0]"
        );
        assert!(
            util >= self.target_utilization,
            "local utilization cannot be below the die utilization"
        );
        self.local_utilization = util;
        self
    }

    /// Generates the netlist, die, and legal placement.
    ///
    /// # Panics
    ///
    /// Panics if the spec has zero cells.
    pub fn generate(&self) -> Benchmark {
        assert!(self.num_cells > 0, "circuit must have cells");
        let mut rng = Rng::seed_from_u64(self.seed);

        // --- Cells ---------------------------------------------------
        let mut b = NetlistBuilder::with_capacity(
            self.num_cells + self.num_macros + self.num_pads,
            (self.num_cells as f64 * self.nets_per_cell) as usize + self.num_pads,
            (self.num_cells as f64 * self.nets_per_cell * 3.0) as usize,
        );
        let mut total_area = 0.0;
        let mut cells = Vec::with_capacity(self.num_cells);
        for i in 0..self.num_cells {
            let width = (rng.random_range(self.min_cell_width..=self.max_cell_width) / 1.0)
                .round()
                .max(1.0);
            let delay = rng.random_range(0.5..1.5);
            let id = b.add_cell_with_delay(
                format!("c{i}"),
                width,
                self.row_height,
                CellKind::Movable,
                delay,
            );
            total_area += width * self.row_height;
            cells.push(id);
        }

        // --- Die sized for the target utilization --------------------
        let die_area = total_area / self.target_utilization;
        let side = die_area.sqrt();
        let rows = ((side / self.row_height).ceil() as usize).max(4);
        let height = rows as f64 * self.row_height;
        let width = (die_area / height).ceil();
        let die = Die::new(width, height, self.row_height);

        // --- Macros --------------------------------------------------
        // Rejection-sample interior positions so macros never overlap
        // each other (overlapping blockages would double-count density
        // and are not legalizable).
        let mut macros: Vec<(CellId, Rect)> = Vec::new();
        for m in 0..self.num_macros {
            let mw = (width * rng.random_range(0.06..0.12)).max(2.0 * self.row_height);
            let mh = (rng.random_range(4..10) as f64) * self.row_height;
            let id = b.add_cell(format!("macro{m}"), mw, mh, CellKind::FixedMacro);
            let mut placed = None;
            for _ in 0..64 {
                let mx = rng.random_range(0.1..0.8) * (width - mw);
                let row = rng.random_range(
                    1..rows
                        .saturating_sub((mh / self.row_height) as usize + 1)
                        .max(2),
                );
                let rect =
                    Rect::from_origin_size(Point::new(mx, row as f64 * self.row_height), mw, mh);
                if macros
                    .iter()
                    .all(|&(_, other)| !rect.inflated(1.0).intersects(&other))
                {
                    placed = Some(rect);
                    break;
                }
            }
            // A macro that cannot be placed without overlap (tiny die,
            // many macros) parks in a corner sliver shrunk to fit.
            let rect = placed.unwrap_or_else(|| {
                Rect::from_origin_size(Point::new(0.0, self.row_height), mw.min(width / 4.0), mh)
            });
            macros.push((id, rect));
        }

        // --- Pads on the boundary ------------------------------------
        let mut pads = Vec::new();
        for p in 0..self.num_pads {
            let id = b.add_cell(format!("pad{p}"), 1.0, 1.0, CellKind::Pad);
            pads.push(id);
        }

        // --- Nets: clustered, DAG-oriented ---------------------------
        let n_nets = (self.num_cells as f64 * self.nets_per_cell).ceil() as usize;
        let n_clusters = self.num_cells.div_ceil(self.cluster_size);
        for n in 0..n_nets {
            let net = b.add_net(format!("n{n}"));
            let global = rng.random_f64() < self.global_net_fraction;
            let cluster = rng.random_range(0..n_clusters);
            let lo = cluster * self.cluster_size;
            let hi = ((cluster + 1) * self.cluster_size).min(self.num_cells);
            if hi - lo < 2 {
                continue;
            }
            // Driver: any cell of the cluster except the last.
            let driver_idx = rng.random_range(lo..hi - 1);
            let driver = cells[driver_idx];
            b.connect(driver, net, PinDir::Output, 0.0, self.row_height / 2.0);
            let sinks = rng.random_range(1..=self.max_net_sinks);
            for _ in 0..sinks {
                // DAG: sinks always have a higher id than the driver.
                let sink_idx = if global {
                    rng.random_range(driver_idx + 1..self.num_cells)
                } else {
                    rng.random_range(driver_idx + 1..hi)
                };
                b.connect(
                    cells[sink_idx],
                    net,
                    PinDir::Input,
                    0.0,
                    self.row_height / 2.0,
                );
            }
        }
        // Pad nets: inputs drive early cells, outputs sink late cells.
        for (p, &pad) in pads.iter().enumerate() {
            let net = b.add_net(format!("pn{p}"));
            if p % 2 == 0 {
                b.connect(pad, net, PinDir::Output, 0.5, 0.5);
                let sink = cells[rng.random_range(0..self.num_cells)];
                b.connect(sink, net, PinDir::Input, 0.0, self.row_height / 2.0);
            } else {
                let driver_idx = rng.random_range(0..self.num_cells);
                b.connect(
                    cells[driver_idx],
                    net,
                    PinDir::Output,
                    0.0,
                    self.row_height / 2.0,
                );
                b.connect(pad, net, PinDir::Input, 0.5, 0.5);
            }
        }

        let netlist = b.build().expect("generated netlist is structurally valid");

        // --- Legal constructive placement ----------------------------
        // Macros consume die area the utilization-based sizing did not
        // account for; grow the die until the cells (plus a fragmentation
        // reserve) fit.
        let mut die = die;
        let mut placement = None;
        for _ in 0..12 {
            if let Some(p) = place_rows(
                &netlist,
                &die,
                &macros,
                &pads,
                self.cluster_size,
                self.local_utilization,
                self.clusters_per_gap,
            ) {
                placement = Some(p);
                break;
            }
            let o = die.outline();
            die = Die::new(
                o.width() * 1.1,
                o.height() + self.row_height * 2.0,
                self.row_height,
            );
        }
        let placement = placement.expect("die growth must eventually fit the cells");

        Benchmark {
            name: self.name.clone(),
            spec: self.clone(),
            netlist,
            die,
            placement,
        }
    }
}

/// Packs movable cells into rows in id (= cluster) order, snaking up the
/// die. Cells of one cluster are packed *abutting* (100% local density,
/// like the dense regions of a real placement) and the whitespace is
/// concentrated in gaps between clusters — so inflating any cell creates
/// genuine overlap that legalization has to resolve, exactly the
/// workload shape of the paper's experiments.
fn place_rows(
    netlist: &Netlist,
    die: &Die,
    macros: &[(CellId, Rect)],
    pads: &[CellId],
    cluster_size: usize,
    local_utilization: f64,
    clusters_per_gap: usize,
) -> Option<Placement> {
    let mut placement = Placement::new(netlist.num_cells());

    // Pin macros at their chosen spots.
    for &(id, r) in macros {
        placement.set(id, r.origin());
    }
    // Pads around the boundary (they occupy no placement area).
    let outline = die.outline();
    for (i, &pad) in pads.iter().enumerate() {
        let t = i as f64 / pads.len().max(1) as f64;
        let peri = 2.0 * (outline.width() + outline.height());
        let d = t * peri;
        let pos = if d < outline.width() {
            Point::new(outline.llx + d, outline.lly)
        } else if d < outline.width() + outline.height() {
            Point::new(outline.urx - 1.0, outline.lly + (d - outline.width()))
        } else if d < 2.0 * outline.width() + outline.height() {
            Point::new(
                outline.urx - (d - outline.width() - outline.height()) - 1.0,
                outline.ury - 1.0,
            )
        } else {
            Point::new(
                outline.llx,
                outline.ury - (d - 2.0 * outline.width() - outline.height()) - 1.0,
            )
        };
        placement.set(
            pad,
            pos.clamped(
                outline.llx,
                outline.urx - 1.0,
                outline.lly,
                outline.ury - 1.0,
            ),
        );
    }

    // Free segments per row (macro spans removed).
    let mut segments: Vec<Vec<(f64, f64)>> = Vec::with_capacity(die.num_rows());
    for row in die.rows() {
        let row_rect = Rect::new(row.llx, row.y, row.urx, row.y + die.row_height());
        let mut segs = vec![(row.llx, row.urx)];
        for &(_, mr) in macros {
            if !mr.intersects(&row_rect) {
                continue;
            }
            let mut next = Vec::new();
            for (s, e) in segs {
                if mr.llx <= s && mr.urx >= e {
                    continue; // fully blocked
                } else if mr.llx > s && mr.urx < e {
                    next.push((s, mr.llx));
                    next.push((mr.urx, e));
                } else if mr.llx > s && mr.llx < e {
                    next.push((s, mr.llx));
                } else if mr.urx > s && mr.urx < e {
                    next.push((mr.urx, e));
                } else {
                    next.push((s, e));
                }
            }
            segs = next;
        }
        segments.push(segs);
    }

    // Whitespace budget: everything beyond the cells themselves, spent as
    // inter-cluster gaps (minus a fragmentation reserve of one max-width
    // per segment so every cell is guaranteed to fit).
    let usable: f64 = segments
        .iter()
        .flat_map(|segs| segs.iter().map(|&(s, e)| e - s))
        .sum();
    let total_width: f64 = netlist
        .movable_cell_ids()
        .map(|c| netlist.cell(c).width)
        .sum();
    let max_width = netlist
        .movable_cell_ids()
        .map(|c| netlist.cell(c).width)
        .fold(1.0, f64::max);
    let n_segments: usize = segments.iter().map(Vec::len).sum();
    // Fragmentation reserve: without one max-width of slack per segment a
    // cell can fail to fit anywhere; signal the caller to grow the die.
    if usable < total_width + n_segments as f64 * max_width {
        return None;
    }
    let n_movable = netlist.movable_cell_ids().count();
    let gap_stride = cluster_size.max(1) * clusters_per_gap.max(1);
    let n_gaps = n_movable.div_ceil(gap_stride).max(1);
    let reserve = n_segments as f64 * max_width;
    // Intra-cluster pitch spreads cells to the requested local density;
    // whatever whitespace remains becomes pockets every
    // `clusters_per_gap` clusters.
    let pitch_factor = (1.0 / local_utilization).max(1.0);
    let intra_spread = total_width * (pitch_factor - 1.0);
    let cluster_gap = ((usable - total_width - intra_spread - reserve) / n_gaps as f64).max(0.0);

    // Walk rows bottom-up, packing cells abutted, opening a gap whenever
    // a new cluster starts.
    let mut row = 0usize;
    let mut seg_idx = 0usize;
    let mut cursor = segments
        .first()
        .and_then(|s| s.first())
        .map(|&(s, _)| s)
        .unwrap_or(0.0);

    for (i, cell) in netlist.movable_cell_ids().enumerate() {
        if i > 0 && i % gap_stride == 0 {
            cursor += cluster_gap;
        }
        let w = netlist.cell(cell).width;
        let pitch = w * pitch_factor;
        loop {
            if row >= die.num_rows() {
                return None;
            }
            let segs = &segments[row];
            if seg_idx >= segs.len() {
                row += 1;
                seg_idx = 0;
                cursor = segments
                    .get(row)
                    .and_then(|s| s.first())
                    .map(|&(s, _)| s)
                    .unwrap_or(0.0);
                continue;
            }
            let (s, e) = segs[seg_idx];
            if cursor < s {
                cursor = s;
            }
            if cursor + w <= e {
                placement.set(cell, Point::new(cursor, die.row(row).y));
                cursor += pitch;
                break;
            }
            seg_idx += 1;
            if let Some(&(ns, _)) = segs.get(seg_idx) {
                cursor = ns;
            }
        }
    }
    Some(placement)
}

/// A generated circuit: netlist, die, and (initially legal) placement.
#[derive(Debug, Clone)]
pub struct Benchmark {
    /// Benchmark name.
    pub name: String,
    /// The spec this benchmark was generated from.
    pub spec: CircuitSpec,
    /// The circuit.
    pub netlist: Netlist,
    /// Die geometry.
    pub die: Die,
    /// Current placement (legal right after generation; overlapping after
    /// [`inflate`](Self::inflate)).
    pub placement: Placement,
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_place::{check_legality, hpwl, BinGrid, DensityMap};

    #[test]
    fn generation_is_deterministic() {
        let a = CircuitSpec::small(7).generate();
        let b = CircuitSpec::small(7).generate();
        assert_eq!(a.netlist.num_cells(), b.netlist.num_cells());
        assert_eq!(a.netlist.num_nets(), b.netlist.num_nets());
        assert_eq!(a.placement, b.placement);
        let c = CircuitSpec::small(8).generate();
        assert!(a.placement != c.placement || a.netlist.num_nets() != c.netlist.num_nets());
    }

    #[test]
    fn generated_placement_is_legal() {
        let bench = CircuitSpec::small(42).generate();
        let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 10);
        assert!(report.is_legal(), "{report}");
    }

    #[test]
    fn placement_with_macros_is_legal() {
        let bench = CircuitSpec::small(42).with_macros(3).generate();
        let report = check_legality(&bench.netlist, &bench.die, &bench.placement, 10);
        assert!(report.is_legal(), "{report}");
        assert_eq!(bench.netlist.macro_ids().count(), 3);
    }

    #[test]
    fn utilization_close_to_target() {
        let bench = CircuitSpec::small(42).generate();
        let util = bench.netlist.movable_area() / bench.die.area();
        assert!((0.4..0.95).contains(&util), "utilization {util}");
    }

    #[test]
    fn density_nowhere_wildly_over_one() {
        let bench = CircuitSpec::small(42).generate();
        let grid = BinGrid::new(bench.die.outline(), 4.0 * bench.die.row_height());
        let dm = DensityMap::from_placement(&bench.netlist, &bench.placement, grid);
        assert!(dm.max_density() <= 1.05, "max density {}", dm.max_density());
    }

    #[test]
    fn netlist_is_a_dag() {
        let bench = CircuitSpec::small(42).generate();
        let lv = dpm_netlist::levelize(&bench.netlist);
        assert!(lv.is_acyclic());
    }

    #[test]
    fn clusters_are_spatially_local() {
        // The mean net HPWL should be far below the die diagonal: nets
        // mostly connect cells of one cluster, placed contiguously.
        let bench = CircuitSpec::small(42).generate();
        let total = hpwl(&bench.netlist, &bench.placement);
        let per_net = total / bench.netlist.num_nets() as f64;
        let diag = bench.die.outline().width() + bench.die.outline().height();
        assert!(
            per_net < diag / 4.0,
            "per-net HPWL {per_net} too large vs die half-perimeter {diag}"
        );
    }

    #[test]
    fn pads_sit_on_the_boundary() {
        let bench = CircuitSpec::small(42).generate();
        let outline = bench.die.outline();
        for pad in bench.netlist.cell_ids() {
            if bench.netlist.cell(pad).kind != CellKind::Pad {
                continue;
            }
            let p = bench.placement.get(pad);
            let near_edge = (p.x - outline.llx).abs() < 2.0
                || (outline.urx - p.x).abs() < 2.0
                || (p.y - outline.lly).abs() < 2.0
                || (outline.ury - p.y).abs() < 2.0;
            assert!(near_edge, "pad at {p} not on boundary");
        }
    }

    #[test]
    #[should_panic(expected = "must have cells")]
    fn zero_cells_rejected() {
        let mut spec = CircuitSpec::small(1);
        spec.num_cells = 0;
        let _ = spec.generate();
    }
}
