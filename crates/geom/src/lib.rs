#![warn(missing_docs)]

//! Geometry primitives shared across the diffuplace workspace.
//!
//! This crate provides the small set of planar-geometry types that every other
//! crate in the workspace builds on: [`Point`], [`Vector`], and axis-aligned
//! [`Rect`]angles, together with the overlap/area arithmetic that placement
//! density computation needs.
//!
//! All coordinates are `f64` in an arbitrary but consistent unit (the
//! placement crates use "tracks", i.e. multiples of the routing pitch).
//!
//! # Examples
//!
//! ```
//! use dpm_geom::{Point, Rect};
//!
//! let die = Rect::new(0.0, 0.0, 100.0, 50.0);
//! let cell = Rect::new(10.0, 10.0, 14.0, 12.0);
//! assert!(die.contains_rect(&cell));
//! assert_eq!(cell.area(), 8.0);
//! assert_eq!(die.overlap_area(&cell), 8.0);
//! assert_eq!(cell.center(), Point::new(12.0, 11.0));
//! ```

mod point;
mod point3;
mod rect;

pub use point::{Point, Vector};
pub use point3::{Point3, Vector3};
pub use rect::Rect;

/// Clamps `v` into `[lo, hi]`.
///
/// # Examples
///
/// ```
/// assert_eq!(dpm_geom::clamp(5.0, 0.0, 3.0), 3.0);
/// assert_eq!(dpm_geom::clamp(-1.0, 0.0, 3.0), 0.0);
/// assert_eq!(dpm_geom::clamp(1.5, 0.0, 3.0), 1.5);
/// ```
///
/// # Panics
///
/// Panics (in debug builds) if `lo > hi`.
#[inline]
pub fn clamp(v: f64, lo: f64, hi: f64) -> f64 {
    debug_assert!(lo <= hi, "clamp: lo {lo} > hi {hi}");
    v.max(lo).min(hi)
}

/// Returns `true` if two floats are equal within `eps`.
///
/// # Examples
///
/// ```
/// assert!(dpm_geom::approx_eq(0.1 + 0.2, 0.3, 1e-12));
/// assert!(!dpm_geom::approx_eq(0.1, 0.2, 1e-12));
/// ```
#[inline]
pub fn approx_eq(a: f64, b: f64, eps: f64) -> bool {
    (a - b).abs() <= eps
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_inside_range_is_identity() {
        assert_eq!(clamp(2.0, 1.0, 3.0), 2.0);
    }

    #[test]
    fn clamp_at_bounds() {
        assert_eq!(clamp(1.0, 1.0, 3.0), 1.0);
        assert_eq!(clamp(3.0, 1.0, 3.0), 3.0);
    }

    #[test]
    fn approx_eq_symmetric() {
        assert!(approx_eq(1.0, 1.0 + 1e-13, 1e-12));
        assert!(approx_eq(1.0 + 1e-13, 1.0, 1e-12));
    }
}
