//! Table 11 is produced by the ISPD CENTER run; thin wrapper for naming.

fn main() {
    println!("Table 11 is part of the ISPD CENTER run:");
    println!("    cargo run --release -p dpm-bench --bin table_ispd -- --set center");
}
