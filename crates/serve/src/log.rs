//! Structured JSONL request logging.
//!
//! One JSON object per line per request, written through a shared,
//! mutex-guarded sink. Fields are flat and stable so the log can be
//! post-processed with any line-oriented tool:
//!
//! ```json
//! {"id":3,"outcome":"ok","kind":"local","design":"cpu_core","cells":1200,
//!  "queue_ns":18000,"service_ns":5301200,"steps":40,"rounds":4,
//!  "converged":true,"movement_total":913.2,"movement_max":14.8,
//!  "trace_id":"a1b2c3d4e5f60718"}
//! ```
//!
//! The design name is the only client-controlled string in a record; it
//! is JSON-escaped on write, so an adversarial name (embedded quotes,
//! newlines, control bytes) cannot break the one-object-per-line
//! invariant or smuggle extra fields into a record.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

/// One request's log record. Fields that do not apply to an outcome
/// (e.g. `service_ns` for an `overloaded` rejection) are zero.
#[derive(Debug, Clone, Default)]
pub struct RequestRecord {
    /// Request id as echoed to the client.
    pub id: u64,
    /// Outcome name: `ok` or an [`ErrorCode`](crate::wire::ErrorCode)
    /// name such as `overloaded` or `deadline_expired`.
    pub outcome: &'static str,
    /// `global`, `local`, or `-` when the request never decoded.
    pub kind: &'static str,
    /// Client-supplied design name (escaped on write; empty when the
    /// request never decoded).
    pub design: String,
    /// Number of cells in the request design.
    pub cells: usize,
    /// Nanoseconds spent waiting in the admission queue.
    pub queue_ns: u64,
    /// Nanoseconds spent running diffusion.
    pub service_ns: u64,
    /// Diffusion steps executed.
    pub steps: u64,
    /// Local-diffusion rounds executed.
    pub rounds: u64,
    /// Whether the stopping criterion was met.
    pub converged: bool,
    /// Total cell movement of the run.
    pub movement_total: f64,
    /// Largest single-cell movement of the run.
    pub movement_max: f64,
    /// Distributed-trace id the request rode in under, or 0 when the
    /// request was untraced. Emitted as 16 hex digits so log lines join
    /// directly against exported Chrome-trace span args.
    pub trace_id: u64,
}

/// Escapes a string for embedding inside a JSON string literal:
/// quotes, backslashes and all control characters (U+0000–U+001F).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl RequestRecord {
    fn to_jsonl(&self) -> String {
        let mut line = String::with_capacity(192);
        let _ = write!(
            line,
            "{{\"id\":{},\"outcome\":\"{}\",\"kind\":\"{}\",\"design\":\"{}\",\
             \"cells\":{},\"queue_ns\":{},\"service_ns\":{},\"steps\":{},\
             \"rounds\":{},\"converged\":{},\"movement_total\":{:.3},\
             \"movement_max\":{:.3},\"trace_id\":\"{:016x}\"}}",
            self.id,
            self.outcome,
            self.kind,
            json_escape(&self.design),
            self.cells,
            self.queue_ns,
            self.service_ns,
            self.steps,
            self.rounds,
            self.converged,
            self.movement_total,
            self.movement_max,
            self.trace_id,
        );
        line.push('\n');
        line
    }
}

/// A shared JSONL sink. Cheap to clone behind the server's `Arc`.
/// Dropping the log flushes any buffered lines, so records survive even
/// when [`RequestLog::flush`] was never called explicitly.
pub struct RequestLog {
    sink: Option<Mutex<BufWriter<File>>>,
}

impl RequestLog {
    /// A log that discards every record.
    pub fn disabled() -> Self {
        Self { sink: None }
    }

    /// A log appending to the file at `path` (created if missing).
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be opened.
    pub fn to_file(path: &Path) -> io::Result<Self> {
        let file = File::options().create(true).append(true).open(path)?;
        Ok(Self {
            sink: Some(Mutex::new(BufWriter::new(file))),
        })
    }

    /// Appends one record. Logging failures are swallowed — the service
    /// must not die because its log disk filled up.
    pub fn write(&self, record: &RequestRecord) {
        if let Some(sink) = &self.sink {
            let line = record.to_jsonl();
            if let Ok(mut w) = sink.lock() {
                let _ = w.write_all(line.as_bytes());
            }
        }
    }

    /// Flushes buffered lines to disk.
    pub fn flush(&self) {
        if let Some(sink) = &self.sink {
            if let Ok(mut w) = sink.lock() {
                let _ = w.flush();
            }
        }
    }
}

impl Drop for RequestLog {
    fn drop(&mut self) {
        self.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_log_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("dpm_serve_log_test");
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join(format!("log_{tag}_{}.jsonl", std::process::id()));
        let _ = std::fs::remove_file(&path);
        path
    }

    #[test]
    fn records_become_one_json_line_each() {
        let path = temp_log_path("basic");
        let log = RequestLog::to_file(&path).expect("opens");
        log.write(&RequestRecord {
            id: 1,
            outcome: "ok",
            kind: "local",
            design: "cpu_core".into(),
            cells: 10,
            queue_ns: 5,
            service_ns: 6,
            steps: 7,
            rounds: 2,
            converged: true,
            movement_total: 1.5,
            movement_max: 0.5,
            trace_id: 0x00ab_cdef_0123_4567,
        });
        log.write(&RequestRecord {
            id: 2,
            outcome: "overloaded",
            kind: "-",
            ..Default::default()
        });
        log.flush();

        let text = std::fs::read_to_string(&path).expect("readable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"id\":1") && lines[0].contains("\"outcome\":\"ok\""));
        assert!(lines[0].contains("\"design\":\"cpu_core\""));
        assert!(lines[0].contains("\"converged\":true"));
        // Trace ids are zero-padded 16-hex strings; untraced records
        // carry all zeros so the field is always present and joinable.
        assert!(lines[0].contains("\"trace_id\":\"00abcdef01234567\""));
        assert!(lines[1].contains("\"outcome\":\"overloaded\""));
        assert!(lines[1].contains("\"trace_id\":\"0000000000000000\""));
        // Every line is a single flat JSON object.
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'));
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn adversarial_design_name_cannot_corrupt_the_stream() {
        let path = temp_log_path("adversarial");
        let log = RequestLog::to_file(&path).expect("opens");
        // A name trying to close the record, inject a fake record on a
        // fresh line, and sneak in raw control bytes.
        let evil = "a\"}\n{\"id\":999,\"outcome\":\"ok\"}\r\t\u{1}b\\";
        log.write(&RequestRecord {
            id: 7,
            outcome: "ok",
            kind: "global",
            design: evil.into(),
            trace_id: u64::MAX,
            ..Default::default()
        });
        log.write(&RequestRecord {
            id: 8,
            outcome: "ok",
            kind: "global",
            design: "clean".into(),
            ..Default::default()
        });
        log.flush();

        let text = std::fs::read_to_string(&path).expect("readable");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "injection split the stream: {text:?}");
        for l in &lines {
            assert!(l.starts_with('{') && l.ends_with('}'), "broken line {l:?}");
        }
        assert!(lines[0].contains("\"id\":7"));
        // The injected "record" stays inside the escaped string.
        assert!(lines[0].contains("\\\"}\\n{\\\"id\\\":999"));
        assert!(lines[0].contains("\\u0001"));
        assert!(lines[0].contains("b\\\\\""));
        // The trace id trails the escaped name and must survive intact.
        assert!(lines[0].ends_with("\"trace_id\":\"ffffffffffffffff\"}"));
        assert!(lines[1].contains("\"design\":\"clean\""));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn drop_flushes_buffered_records() {
        let path = temp_log_path("drop");
        {
            let log = RequestLog::to_file(&path).expect("opens");
            log.write(&RequestRecord {
                id: 42,
                outcome: "ok",
                kind: "global",
                ..Default::default()
            });
            // No explicit flush: Drop must push the line to disk.
        }
        let text = std::fs::read_to_string(&path).expect("readable");
        assert!(text.contains("\"id\":42"), "record lost on drop: {text:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn disabled_log_is_a_no_op() {
        let log = RequestLog::disabled();
        log.write(&RequestRecord::default());
        log.flush();
    }
}
