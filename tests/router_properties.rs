//! Randomized tests of the pattern global router, driven by the
//! deterministic [`diffuplace::rng::Rng`].

use diffuplace::geom::Point;
use diffuplace::netlist::{CellKind, Netlist, NetlistBuilder, PinDir};
use diffuplace::place::{Die, Placement};
use diffuplace::rng::Rng;
use diffuplace::route::{GlobalRouter, RouterConfig};

/// Builds `n` two-pin nets at arbitrary positions inside a 360×360 die.
fn random_design(positions: &[(f64, f64, f64, f64)]) -> (Netlist, Placement, Die) {
    let mut b = NetlistBuilder::new();
    let mut cells = Vec::new();
    for (i, _) in positions.iter().enumerate() {
        let u = b.add_cell(format!("u{i}"), 2.0, 2.0, CellKind::Movable);
        let v = b.add_cell(format!("v{i}"), 2.0, 2.0, CellKind::Movable);
        let n = b.add_net(format!("n{i}"));
        b.connect(u, n, PinDir::Output, 1.0, 1.0);
        b.connect(v, n, PinDir::Input, 1.0, 1.0);
        cells.push((u, v));
    }
    let nl = b.build().expect("valid");
    let mut p = Placement::new(nl.num_cells());
    for (&(x0, y0, x1, y1), &(u, v)) in positions.iter().zip(&cells) {
        p.set(u, Point::new(x0, y0));
        p.set(v, Point::new(x1, y1));
    }
    (nl, p, Die::new(360.0, 360.0, 12.0))
}

fn random_positions(rng: &mut Rng, n: usize) -> Vec<(f64, f64, f64, f64)> {
    let len = rng.random_range(1usize..n);
    (0..len)
        .map(|_| {
            (
                rng.random_range(1.0..350.0),
                rng.random_range(1.0..350.0),
                rng.random_range(1.0..350.0),
                rng.random_range(1.0..350.0),
            )
        })
        .collect()
}

/// Routed wirelength is at least the sum of tile-granular Manhattan spans
/// (a route cannot be shorter than its bounding box), and every
/// connection is embedded.
#[test]
fn wirelength_lower_bound() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xB1 ^ case);
        let positions = random_positions(&mut rng, 12);
        let (nl, p, die) = random_design(&positions);
        let cfg = RouterConfig::default();
        let r = GlobalRouter::new(cfg.clone()).route(&nl, &p, &die);
        assert_eq!(r.routed_connections, positions.len(), "case {case}");
        let tile = cfg.tile_rows * die.row_height();
        let lower: f64 = positions
            .iter()
            .map(|&(x0, y0, x1, y1)| {
                // Tile-center distance: |Δtile_x| + |Δtile_y| tiles.
                let tx = ((x1 + 1.0) / tile).floor() - ((x0 + 1.0) / tile).floor();
                let ty = ((y1 + 1.0) / tile).floor() - ((y0 + 1.0) / tile).floor();
                (tx.abs() + ty.abs()) * tile
            })
            .sum();
        assert!(
            r.wirelength + 1e-6 >= lower,
            "case {case}: wirelength {} below bbox bound {}",
            r.wirelength,
            lower
        );
    }
}

/// Raising capacity never increases overflow, and at infinite capacity
/// overflow vanishes.
#[test]
fn overflow_monotone_in_capacity() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xB2 ^ case);
        let positions = random_positions(&mut rng, 16);
        let (nl, p, die) = random_design(&positions);
        let route_with = |cap: f64| {
            GlobalRouter::new(RouterConfig {
                h_capacity: cap,
                v_capacity: cap,
                ..RouterConfig::default()
            })
            .route(&nl, &p, &die)
        };
        let tight = route_with(1.0);
        let loose = route_with(4.0);
        let infinite = route_with(1e12);
        assert!(loose.overflow <= tight.overflow + 1e-9, "case {case}");
        assert_eq!(infinite.overflow, 0.0, "case {case}");
        assert_eq!(infinite.hot_tiles, 0, "case {case}");
    }
}

/// Routing is deterministic.
#[test]
fn routing_is_deterministic() {
    for case in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xB3 ^ case);
        let positions = random_positions(&mut rng, 10);
        let (nl, p, die) = random_design(&positions);
        let a = GlobalRouter::new(RouterConfig::default()).route(&nl, &p, &die);
        let b = GlobalRouter::new(RouterConfig::default()).route(&nl, &p, &die);
        assert_eq!(a, b, "case {case}");
    }
}
