//! Golden placement checksum for the CI determinism matrix.
//!
//! Runs one global and one local diffusion migration on fixed generated
//! circuits with [`DiffusionConfig::default`] — which honors the
//! `DPM_THREADS` environment variable — and prints an FNV-1a hash over
//! the exact IEEE-754 bit patterns of every final cell position plus
//! the step/round counts. Because the `dpm-par` decomposition is
//! independent of the worker count, the printed checksum must be
//! identical at any `DPM_THREADS` value; `scripts/ci.sh` runs this
//! binary at 1, 2 and 4 threads and diffs the outputs.
//!
//! With the `vol` argument it instead runs one volumetric (3-tier)
//! migration on a generated stack with an overfull middle tier and
//! hashes the planar position bits, the depth bits, and the final
//! density field bits — the 3D leg of the same determinism matrix. The
//! default (planar) output is byte-identical to what it was before the
//! volumetric mode existed.
//!
//! With the `f32` argument it runs the planar pair in
//! [`FieldPrecision::F32`] (FTCS only — the spectral solver is f64-only)
//! and prints that mode's own checksum, which must likewise be
//! invariant across `DPM_THREADS` *and* `DPM_LANES`.
//!
//! Usage: `cargo run --release --bin golden_checksum [-- vol|f32]`

use dpm_diffusion::{
    DiffusionConfig, FieldPrecision, GlobalDiffusion, LocalDiffusion, SolverKind,
    VolumetricDiffusion,
};
use dpm_gen::{CircuitSpec, InflationSpec, VolCircuitSpec};

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn absorb(hash: &mut u64, bytes: &[u8]) {
    for &b in bytes {
        *hash ^= u64::from(b);
        *hash = hash.wrapping_mul(FNV_PRIME);
    }
}

/// The volumetric leg: a 3-tier stack with a hotspot in the middle
/// tier, no macros (so the spectral stack solver also has a dense grid
/// to run on under `DPM_SOLVER=spectral`). Hashes positions, depths,
/// and the evolved density field bit-for-bit.
fn vol_checksum(cfg: &DiffusionConfig) -> u64 {
    let bench = VolCircuitSpec::with_size("golden3d", 3, 250, 31)
        .with_hotspot(1)
        .generate();
    let mut vp = bench.placement.clone();
    let result = VolumetricDiffusion::new(cfg.clone(), bench.layers()).run(
        &bench.netlist,
        &bench.die,
        &mut vp,
    );
    let mut hash = FNV_OFFSET;
    absorb(&mut hash, &(result.steps as u64).to_le_bytes());
    absorb(&mut hash, &[u8::from(result.converged)]);
    for p in vp.xy.as_slice() {
        absorb(&mut hash, &p.x.to_bits().to_le_bytes());
        absorb(&mut hash, &p.y.to_bits().to_le_bytes());
    }
    for z in &vp.z {
        absorb(&mut hash, &z.to_bits().to_le_bytes());
    }
    for d in &result.field {
        absorb(&mut hash, &d.to_bits().to_le_bytes());
    }
    hash
}

fn main() {
    let cfg = DiffusionConfig::default();
    eprintln!("golden_checksum: {} worker thread(s)", cfg.threads);

    let mode = std::env::args().nth(1);
    if mode.as_deref() == Some("vol") {
        println!("{:016x}", vol_checksum(&cfg));
        return;
    }
    let cfg = if mode.as_deref() == Some("f32") {
        // The f32 leg pins its own checksum: same circuits, FTCS
        // stepper (spectral is f64-only), single-precision field.
        cfg.with_solver(SolverKind::Ftcs)
            .with_precision(FieldPrecision::F32)
    } else {
        cfg
    };

    let mut hash = FNV_OFFSET;
    for (global, cells, seed) in [(true, 400usize, 11u64), (false, 600, 23)] {
        let mut bench = CircuitSpec::with_size("golden", cells, seed).generate();
        bench.inflate(&InflationSpec::centered(0.25, 0.3, seed ^ 0x901D));
        let result = if global {
            GlobalDiffusion::new(cfg.clone()).run(&bench.netlist, &bench.die, &mut bench.placement)
        } else {
            LocalDiffusion::new(cfg.clone()).run(&bench.netlist, &bench.die, &mut bench.placement)
        };
        absorb(&mut hash, &(result.steps as u64).to_le_bytes());
        absorb(&mut hash, &(result.rounds as u64).to_le_bytes());
        for p in bench.placement.as_slice() {
            absorb(&mut hash, &p.x.to_bits().to_le_bytes());
            absorb(&mut hash, &p.y.to_bits().to_le_bytes());
        }
    }
    println!("{hash:016x}");
}
