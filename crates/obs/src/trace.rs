//! Distributed tracing: wire-propagatable trace context, deterministic
//! id minting, and a Chrome `trace_event` exporter.
//!
//! A trace is a tree of spans that may cross process boundaries: the
//! client mints a root [`TraceContext`], every hop (control plane,
//! shard/slab routers, backends) derives child contexts and records its
//! own spans under them, and the completed records flow *back* with each
//! response so the originator can stitch one tree. Ids are minted from
//! [`dpm_rng::Rng`] (SplitMix64), so a fixed seed yields a fixed tree —
//! traces are reproducible artifacts, not wall-clock noise.
//!
//! Timestamps are the one non-deterministic ingredient. Each process
//! records spans against its own [`SpanRecorder`] epoch; before a span
//! set crosses a process boundary it is normalized so its earliest start
//! is zero ([`normalize_spans`]), and the receiver re-bases it onto the
//! local start of the span that covers the remote work
//! ([`rebase_spans`]). Clock *skew* between hosts therefore never
//! appears in a trace — only measured durations and local offsets do.
//!
//! [`SpanRecorder`]: crate::SpanRecorder

use std::io::Write;
use std::path::Path;

use crate::span::SpanRecord;
use dpm_rng::Rng;

/// Identifies one span's position in a distributed trace.
///
/// `trace_id` names the whole tree; `span_id` names this span;
/// `parent_id` names the span under which this one nests (0 for the
/// root). All ids are nonzero except a root's `parent_id`; the all-zero
/// context never appears on the wire.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceContext {
    /// Correlation id shared by every span in the tree.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// The enclosing span's id; 0 at the root.
    pub parent_id: u64,
}

impl TraceContext {
    /// A context for a child span of `self` with the given id.
    pub fn child(&self, span_id: u64) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id,
            parent_id: self.span_id,
        }
    }
}

/// Deterministic span/trace id generator.
///
/// Backed by SplitMix64: two generators with the same seed mint the same
/// ids on every platform. Hops seed one from the *inherited* span id, so
/// the whole distributed tree is a pure function of the root seed.
#[derive(Debug, Clone)]
pub struct TraceIdGen {
    rng: Rng,
}

impl TraceIdGen {
    /// Creates a generator from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        Self {
            rng: Rng::seed_from_u64(seed),
        }
    }

    /// Mints one nonzero id.
    pub fn id(&mut self) -> u64 {
        loop {
            let v = self.rng.next_u64();
            if v != 0 {
                return v;
            }
        }
    }

    /// Mints a fresh root context (new trace id, no parent).
    pub fn root(&mut self) -> TraceContext {
        TraceContext {
            trace_id: self.id(),
            span_id: self.id(),
            parent_id: 0,
        }
    }

    /// Mints a child context under `parent`.
    pub fn child_of(&mut self, parent: &TraceContext) -> TraceContext {
        parent.child(self.id())
    }
}

/// Shifts `spans` so the earliest start is zero.
///
/// Call this before exporting a span set across a process boundary: the
/// receiver re-bases with [`rebase_spans`], so only durations and
/// relative offsets survive the hop — never the local epoch.
pub fn normalize_spans(spans: &mut [SpanRecord]) {
    let base = spans.iter().map(|s| s.start_ns).min().unwrap_or(0);
    for s in spans.iter_mut() {
        s.start_ns -= base;
        s.end_ns -= base;
    }
}

/// Adds `offset_ns` to every timestamp in `spans`.
///
/// Used to stitch a normalized remote span set under the local span that
/// dispatched the remote work: pass that span's `start_ns`.
pub fn rebase_spans(spans: &mut [SpanRecord], offset_ns: u64) {
    for s in spans.iter_mut() {
        s.start_ns = s.start_ns.saturating_add(offset_ns);
        s.end_ns = s.end_ns.saturating_add(offset_ns);
    }
}

struct ExportEvent {
    name: String,
    pid: u32,
    tid: u32,
    trace_id: u64,
    span_id: u64,
    parent_id: u64,
    start_ns: u64,
    dur_ns: u64,
    args: Vec<(String, String)>,
}

/// Writes completed traces as Chrome `trace_event` JSONL.
///
/// One complete-phase (`"ph":"X"`) event per span, one JSON object per
/// line, no surrounding array — both `chrome://tracing` and Perfetto
/// accept newline-delimited events directly. Field order, number
/// formatting and event order are byte-stable (pinned by test):
/// timestamps are microseconds with exactly three decimals (full
/// nanosecond precision, no float formatting involved), ids are 16-digit
/// zero-padded lowercase hex, and events sort by
/// `(start, pid, tid, span_id)`.
#[derive(Default)]
pub struct TraceExporter {
    events: Vec<ExportEvent>,
}

impl TraceExporter {
    /// Creates an empty exporter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one span, attributed to `pid`/`tid`.
    pub fn add(&mut self, rec: &SpanRecord, pid: u32, tid: u32) {
        self.add_with_args(rec, pid, tid, &[]);
    }

    /// Adds one span with extra `args` key/value pairs (e.g. a tenant
    /// label). Keys are emitted after the trace ids, in the order given.
    pub fn add_with_args(&mut self, rec: &SpanRecord, pid: u32, tid: u32, args: &[(&str, &str)]) {
        self.events.push(ExportEvent {
            name: rec.name.clone(),
            pid,
            tid,
            trace_id: rec.trace_id,
            span_id: rec.span_id,
            parent_id: rec.parent_id,
            start_ns: rec.start_ns,
            dur_ns: rec.duration_ns(),
            args: args
                .iter()
                .map(|(k, v)| (k.to_string(), v.to_string()))
                .collect(),
        });
    }

    /// Number of events added so far.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events have been added.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Renders all events as JSONL, byte-stable.
    pub fn to_jsonl(&self) -> String {
        let mut order: Vec<usize> = (0..self.events.len()).collect();
        order.sort_by_key(|&i| {
            let e = &self.events[i];
            (e.start_ns, e.pid, e.tid, e.span_id)
        });
        let mut out = String::new();
        for i in order {
            let e = &self.events[i];
            out.push_str("{\"name\":\"");
            out.push_str(&json_escape(&e.name));
            out.push_str("\",\"cat\":\"dpm\",\"ph\":\"X\",\"ts\":");
            push_us(&mut out, e.start_ns);
            out.push_str(",\"dur\":");
            push_us(&mut out, e.dur_ns);
            out.push_str(&format!(",\"pid\":{},\"tid\":{}", e.pid, e.tid));
            out.push_str(&format!(
                ",\"args\":{{\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\",\"parent_id\":\"{:016x}\"",
                e.trace_id, e.span_id, e.parent_id
            ));
            for (k, v) in &e.args {
                out.push_str(&format!(",\"{}\":\"{}\"", json_escape(k), json_escape(v)));
            }
            out.push_str("}}\n");
        }
        out
    }

    /// Writes the JSONL to `path`, creating or truncating the file.
    pub fn write_to(&self, path: &Path) -> std::io::Result<()> {
        let mut f = std::fs::File::create(path)?;
        f.write_all(self.to_jsonl().as_bytes())?;
        f.flush()
    }
}

/// Microseconds with exactly three decimals, computed in integer ns so
/// the rendering never depends on float formatting.
fn push_us(out: &mut String, ns: u64) {
    out.push_str(&format!("{}.{:03}", ns / 1_000, ns % 1_000));
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(name: &str, ctx: TraceContext, start_ns: u64, end_ns: u64) -> SpanRecord {
        SpanRecord {
            name: name.to_string(),
            start_ns,
            end_ns,
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent_id: ctx.parent_id,
        }
    }

    #[test]
    fn id_minting_is_deterministic_and_nonzero() {
        let mut a = TraceIdGen::seeded(42);
        let mut b = TraceIdGen::seeded(42);
        for _ in 0..64 {
            let ia = a.id();
            assert_eq!(ia, b.id());
            assert_ne!(ia, 0);
        }
        let ra = TraceIdGen::seeded(7).root();
        let rb = TraceIdGen::seeded(7).root();
        assert_eq!(ra, rb);
        assert_ne!(ra.trace_id, 0);
        assert_eq!(ra.parent_id, 0);
    }

    #[test]
    fn child_contexts_link_parent_to_span() {
        let mut gen = TraceIdGen::seeded(1);
        let root = gen.root();
        let child = gen.child_of(&root);
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent_id, root.span_id);
        assert_ne!(child.span_id, root.span_id);
        let grand = child.child(99);
        assert_eq!(grand.parent_id, child.span_id);
        assert_eq!(grand.span_id, 99);
    }

    #[test]
    fn normalize_then_rebase_round_trips_offsets() {
        let ctx = TraceContext {
            trace_id: 1,
            span_id: 2,
            parent_id: 0,
        };
        let mut spans = vec![
            rec("a", ctx, 1_000, 5_000),
            rec("b", ctx.child(3), 1_500, 2_500),
        ];
        normalize_spans(&mut spans);
        assert_eq!(spans[0].start_ns, 0);
        assert_eq!(spans[1].start_ns, 500);
        assert_eq!(spans[1].duration_ns(), 1_000);
        rebase_spans(&mut spans, 10_000);
        assert_eq!(spans[0].start_ns, 10_000);
        assert_eq!(spans[1].end_ns, 11_500);
    }

    #[test]
    fn exporter_output_is_byte_stable_and_sorted() {
        let ctx = TraceContext {
            trace_id: 0xAB,
            span_id: 0xCD,
            parent_id: 0,
        };
        let mut exp = TraceExporter::new();
        // Added out of order: to_jsonl must sort by start time.
        exp.add(&rec("second", ctx.child(0xEF), 2_500, 4_000), 1, 2);
        exp.add_with_args(
            &rec("first", ctx, 1_000, 9_999),
            1,
            1,
            &[("tenant", "acme")],
        );
        let expected = concat!(
            "{\"name\":\"first\",\"cat\":\"dpm\",\"ph\":\"X\",\"ts\":1.000,\"dur\":8.999,",
            "\"pid\":1,\"tid\":1,\"args\":{\"trace_id\":\"00000000000000ab\",",
            "\"span_id\":\"00000000000000cd\",\"parent_id\":\"0000000000000000\",",
            "\"tenant\":\"acme\"}}\n",
            "{\"name\":\"second\",\"cat\":\"dpm\",\"ph\":\"X\",\"ts\":2.500,\"dur\":1.500,",
            "\"pid\":1,\"tid\":2,\"args\":{\"trace_id\":\"00000000000000ab\",",
            "\"span_id\":\"00000000000000ef\",\"parent_id\":\"00000000000000cd\"}}\n",
        );
        assert_eq!(exp.to_jsonl(), expected);
    }

    #[test]
    fn exporter_escapes_hostile_names_one_object_per_line() {
        let ctx = TraceContext {
            trace_id: 1,
            span_id: 2,
            parent_id: 0,
        };
        let mut exp = TraceExporter::new();
        exp.add_with_args(
            &rec("evil\"}\n{\"name\":\"forged", ctx, 0, 1),
            0,
            0,
            &[("k\"", "v\n")],
        );
        let jsonl = exp.to_jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        assert!(jsonl.contains("evil\\\"}\\n{\\\"name\\\":\\\"forged"));
        assert!(jsonl.contains("\"k\\\"\":\"v\\n\""));
    }

    #[test]
    fn exporter_writes_file() {
        let ctx = TraceContext {
            trace_id: 3,
            span_id: 4,
            parent_id: 0,
        };
        let mut exp = TraceExporter::new();
        exp.add(&rec("io", ctx, 0, 10), 0, 0);
        let path = std::env::temp_dir().join("dpm_obs_trace_exporter_test.jsonl");
        exp.write_to(&path).unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(body, exp.to_jsonl());
    }
}
