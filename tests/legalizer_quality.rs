//! Quality tripwires: fixed-seed envelopes that catch silent quality
//! regressions in any legalizer (the kind of drift a legality-only test
//! suite would never notice).

use diffuplace::gen::{CircuitSpec, InflationSpec};
use diffuplace::legalize::{
    run_legalizer, DiffusionLegalizer, FlowLegalizer, GemLegalizer, GreedyLegalizer, Legalizer,
    RowDpLegalizer, TetrisLegalizer,
};
use diffuplace::place::{hpwl, MovementStats, Placement};

struct Quality {
    name: &'static str,
    twl_ratio: f64,
    max_move: f64,
}

fn measure_all(bench: &diffuplace::gen::Benchmark) -> Vec<Quality> {
    let base = hpwl(&bench.netlist, &bench.placement);
    let legalizers: Vec<(&'static str, Box<dyn Legalizer>)> = vec![
        ("DIFF(L)", Box::new(DiffusionLegalizer::local_default())),
        ("DIFF(G)", Box::new(DiffusionLegalizer::global_default())),
        ("GREED", Box::new(GreedyLegalizer::new())),
        ("FLOW", Box::new(FlowLegalizer::new())),
        ("TETRIS", Box::new(TetrisLegalizer::new())),
        ("ROWDP", Box::new(RowDpLegalizer::new())),
        ("GEM", Box::new(GemLegalizer::new())),
    ];
    legalizers
        .into_iter()
        .map(|(name, l)| {
            let mut p: Placement = bench.placement.clone();
            let outcome = run_legalizer(l.as_ref(), &bench.netlist, &bench.die, &mut p);
            assert!(outcome.is_legal, "{name} failed: {outcome}");
            let m = MovementStats::between(&bench.netlist, &bench.placement, &p);
            Quality {
                name,
                twl_ratio: hpwl(&bench.netlist, &p) / base,
                max_move: m.max,
            }
        })
        .collect()
}

/// The ISPD-style random workload: every legalizer must stay within a
/// small wirelength envelope (this is the regime where the paper says
/// methods tie).
#[test]
fn random_workload_quality_envelope() {
    let mut bench = CircuitSpec::with_size("quality_r", 1_500, 501).generate();
    bench.inflate(&InflationSpec::random_width(0.1, 1.6, 502));
    for q in measure_all(&bench) {
        assert!(
            q.twl_ratio < 1.45,
            "{}: TWL ratio {:.3} blew the envelope",
            q.name,
            q.twl_ratio
        );
    }
}

/// The hotspot workload: diffusion must beat the packing baselines on
/// wirelength, and no diffusion cell may travel further than Tetris's
/// worst-moved cell.
#[test]
fn hotspot_workload_ranking() {
    let mut bench = CircuitSpec::with_size("quality_c", 1_500, 503).generate();
    bench.inflate(&InflationSpec::center_width(0.1, 1.6));
    let results = measure_all(&bench);
    let get = |name: &str| {
        results
            .iter()
            .find(|q| q.name == name)
            .unwrap_or_else(|| panic!("missing {name}"))
    };
    let diff = get("DIFF(L)");
    let tetris = get("TETRIS");
    assert!(
        diff.twl_ratio < tetris.twl_ratio,
        "DIFF(L) {:.3} must beat TETRIS {:.3} on the hotspot",
        diff.twl_ratio,
        tetris.twl_ratio
    );
    assert!(
        diff.max_move < tetris.max_move,
        "DIFF(L) max move {:.1} must beat TETRIS {:.1}",
        diff.max_move,
        tetris.max_move
    );
    // Every spreader stays within a sane hotspot envelope.
    for q in &results {
        assert!(
            q.twl_ratio < 1.6,
            "{}: TWL ratio {:.3}",
            q.name,
            q.twl_ratio
        );
    }
}
