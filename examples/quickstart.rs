//! Quickstart: legalize an overlapping placement with robust local
//! diffusion and compare the damage against a greedy legalizer.
//!
//! Run with: `cargo run --release --example quickstart`

use diffuplace::gen::{CircuitSpec, InflationSpec};
use diffuplace::legalize::{DiffusionLegalizer, GreedyLegalizer, Legalizer};
use diffuplace::place::{check_legality, hpwl, MovementStats};

fn main() {
    // 1. A 2000-cell synthetic circuit with a legal clustered placement.
    let bench = CircuitSpec::with_size("quickstart", 2_000, 42).generate();
    println!(
        "generated '{}': {} cells, {} nets, die {:.0} x {:.0}",
        bench.name,
        bench.netlist.num_cells(),
        bench.netlist.num_nets(),
        bench.die.outline().width(),
        bench.die.outline().height()
    );

    // 2. Repowering during physical synthesis inflates 10% of the cells
    //    by 60% width, creating overlaps.
    let mut inflated = bench.clone();
    let achieved = inflated.inflate(&InflationSpec::random_width(0.10, 1.6, 7));
    let report = check_legality(&inflated.netlist, &inflated.die, &inflated.placement, 0);
    println!(
        "inflated movable area by {:.1}% -> {} overlap violations",
        achieved * 100.0,
        report.violation_count
    );
    let base_twl = hpwl(&inflated.netlist, &inflated.placement);

    // 3. Legalize with diffusion and with the greedy baseline.
    for legalizer in [
        &DiffusionLegalizer::local_default() as &dyn Legalizer,
        &GreedyLegalizer::new(),
    ] {
        let mut placement = inflated.placement.clone();
        let outcome = diffuplace::legalize::run_legalizer(
            legalizer,
            &inflated.netlist,
            &inflated.die,
            &mut placement,
        );
        let twl = hpwl(&inflated.netlist, &placement);
        let moves = MovementStats::between(&inflated.netlist, &inflated.placement, &placement);
        println!(
            "{:>8}: {} | TWL {:.0} (+{:.1}%) | max move {:.1}, avg^2 {:.1}",
            legalizer.name(),
            outcome,
            twl,
            (twl / base_twl - 1.0) * 100.0,
            moves.max,
            moves.avg_sq,
        );
    }
    println!("\nDiffusion spreads smoothly: expect a much smaller max move and avg^2.");
}
