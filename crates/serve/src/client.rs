//! A minimal blocking client for the migration server.
//!
//! One [`ServeClient`] wraps one TCP connection; requests on it are
//! serialized (send a frame, read the reply frame). Use one client per
//! thread for concurrency — the server handles each connection on its
//! own thread.

use std::io;
use std::net::{TcpStream, ToSocketAddrs};

use crate::wire::{
    read_frame, write_frame, FrameKind, JobRequest, PayloadEncoding, Reply, WireError,
    DEFAULT_MAX_FRAME_LEN,
};

/// A blocking connection to a [`Server`](crate::Server).
pub struct ServeClient {
    stream: TcpStream,
    max_frame_len: usize,
}

impl ServeClient {
    /// Connects to a running server.
    ///
    /// # Errors
    ///
    /// Returns the underlying connect error.
    pub fn connect(addr: impl ToSocketAddrs) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(Self {
            stream,
            max_frame_len: DEFAULT_MAX_FRAME_LEN,
        })
    }

    /// Caps the size of reply frames this client will accept.
    pub fn with_max_frame_len(mut self, max: usize) -> Self {
        self.max_frame_len = max;
        self
    }

    /// Sends one request and blocks until the reply arrives.
    ///
    /// # Errors
    ///
    /// Returns a [`WireError`] if the connection fails or either frame
    /// is corrupt. Server-side rejections are *not* errors here — they
    /// arrive as [`Reply::Rejected`].
    pub fn request(
        &mut self,
        req: &JobRequest,
        encoding: PayloadEncoding,
    ) -> Result<Reply, WireError> {
        let payload = crate::wire::encode_request(req, encoding);
        write_frame(&mut self.stream, FrameKind::Request, &payload)?;
        match read_frame(&mut self.stream, self.max_frame_len)? {
            Some(frame) => Reply::from_frame(&frame),
            None => Err(WireError::Truncated {
                context: "reply frame (connection closed)",
            }),
        }
    }
}
