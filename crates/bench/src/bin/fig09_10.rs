//! Figs. 9 and 10 — total cell movement and total density overflow per
//! diffusion step, DIFF(G) vs DIFF(L), on ckt1. Emits CSV series into
//! `results/`.

use dpm_bench::suite::diffusion_cfg;
use dpm_bench::{scale_from_env, write_result_file, CKT_DEFAULT_SCALE};
use dpm_diffusion::{GlobalDiffusion, LocalDiffusion};
use dpm_gen::suites::ckt_suite;
use std::fmt::Write as _;

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Figs. 9-10 at scale {scale} (ckt1).");
    let entry = &ckt_suite(scale)[0];
    let (bench, _) = entry.generate_inflated();
    let cfg = diffusion_cfg(&bench);

    let mut pg = bench.placement.clone();
    let rg = GlobalDiffusion::new(cfg.clone()).run(&bench.netlist, &bench.die, &mut pg);
    let mut pl = bench.placement.clone();
    let rl = LocalDiffusion::new(cfg).run(&bench.netlist, &bench.die, &mut pl);

    let mut csv = String::from(
        "step,global_cum_movement,global_overflow,local_cum_movement,local_overflow\n",
    );
    let gm = rg.telemetry.cumulative_movement();
    let go = rg.telemetry.overflow_series();
    let lm = rl.telemetry.cumulative_movement();
    let lo = rl.telemetry.overflow_series();
    let steps = gm.len().max(lm.len());
    for i in 0..steps {
        let _ = writeln!(
            csv,
            "{},{},{},{},{}",
            i,
            gm.get(i)
                .copied()
                .unwrap_or_else(|| gm.last().copied().unwrap_or(0.0)),
            go.get(i).copied().unwrap_or(0.0),
            lm.get(i)
                .copied()
                .unwrap_or_else(|| lm.last().copied().unwrap_or(0.0)),
            lo.get(i).copied().unwrap_or(0.0),
        );
    }
    let path = write_result_file("fig09_10_ckt1.csv", &csv);
    println!("wrote {}", path.display());
    println!(
        "Fig. 9 shape check — total movement: DIFF(G) {:.1} vs DIFF(L) {:.1} (paper: local ~7x lower on ckt1)",
        rg.telemetry.total_movement(),
        rl.telemetry.total_movement()
    );
    println!(
        "Fig. 10 shape check — steps: DIFF(G) {} vs DIFF(L) {}",
        rg.steps, rl.steps
    );
}
