//! Order-preservation tests: the property the paper's whole design
//! centers on — placement migration must keep the relative order of
//! cells so the original placement's integrity survives.

use diffuplace::diffusion::{DiffusionConfig, GlobalDiffusion};
use diffuplace::gen::{CircuitSpec, InflationSpec};
use diffuplace::geom::Point;
use diffuplace::legalize::{run_legalizer, DiffusionLegalizer, TetrisLegalizer};
use diffuplace::netlist::{CellId, CellKind, Netlist, NetlistBuilder};
use diffuplace::place::{Die, Placement};

/// Builds a single row of `n` cells packed left to right at the die
/// center, overlapping heavily.
fn crowded_line(n: usize) -> (Netlist, Die, Placement, Vec<CellId>) {
    let mut b = NetlistBuilder::new();
    let cells: Vec<CellId> = (0..n)
        .map(|i| b.add_cell(format!("c{i}"), 6.0, 12.0, CellKind::Movable))
        .collect();
    let nl = b.build().expect("valid");
    let die = Die::new(600.0, 240.0, 12.0);
    let mut p = Placement::new(nl.num_cells());
    for (i, &c) in cells.iter().enumerate() {
        // 1.5-unit pitch: cells overlap their neighbors by 4.5 units and
        // the local density is well above the default stopping band.
        p.set(c, Point::new(250.0 + i as f64 * 1.5, 120.0));
    }
    (nl, die, p, cells)
}

/// Counts adjacent-pair x-order inversions among the given cells.
fn inversions(netlist: &Netlist, placement: &Placement, cells: &[CellId]) -> usize {
    let mut inv = 0;
    for w in cells.windows(2) {
        let a = placement.cell_center(netlist, w[0]);
        let b = placement.cell_center(netlist, w[1]);
        if a.x > b.x + 1e-9 {
            inv += 1;
        }
    }
    inv
}

#[test]
fn diffusion_preserves_line_order_exactly() {
    let (nl, die, mut p, cells) = crowded_line(40);
    let cfg = DiffusionConfig::default().with_bin_size(30.0);
    let r = GlobalDiffusion::new(cfg).run(&nl, &die, &mut p);
    assert!(r.steps > 0, "diffusion must actually run");
    assert_eq!(
        inversions(&nl, &p, &cells),
        0,
        "diffusion broke the relative order of a crowded line"
    );
}

#[test]
fn velocity_interpolation_is_what_preserves_order() {
    // Ablation of Section IV-C: with per-bin velocities (no
    // interpolation), side-by-side cells in adjacent bins get different
    // velocities and order degrades; with bilinear interpolation it
    // survives. Compare inversion counts.
    let run = |interpolate: bool| {
        let (nl, die, mut p, cells) = crowded_line(60);
        let cfg = DiffusionConfig::default()
            .with_bin_size(30.0)
            .with_interpolation(interpolate);
        GlobalDiffusion::new(cfg).run(&nl, &die, &mut p);
        inversions(&nl, &p, &cells)
    };
    let with_interp = run(true);
    let without = run(false);
    assert!(
        with_interp <= without,
        "interpolation should not be worse: {with_interp} vs {without} inversions"
    );
    assert_eq!(with_interp, 0, "interpolated diffusion must preserve order");
}

#[test]
fn full_diffusion_legalizer_keeps_order_mostly_intact() {
    // End-to-end (diffusion + detailed legalization) on a realistic
    // hotspot: compare pairwise-order violations against Tetris packing.
    let mut bench = CircuitSpec::with_size("order", 1_500, 200).generate();
    bench.inflate(&InflationSpec::center_width(0.1, 1.6));
    let cells: Vec<CellId> = bench.netlist.movable_cell_ids().collect();

    // Sample pairs that start clearly ordered in x.
    let sample_pairs: Vec<(CellId, CellId)> = cells
        .windows(7)
        .map(|w| (w[0], w[6]))
        .filter(|&(a, b)| {
            let pa = bench.placement.cell_center(&bench.netlist, a);
            let pb = bench.placement.cell_center(&bench.netlist, b);
            (pa.x - pb.x).abs() > 12.0
        })
        .take(300)
        .collect();

    let violations = |placement: &Placement| {
        sample_pairs
            .iter()
            .filter(|&&(a, b)| {
                let before = bench.placement.cell_center(&bench.netlist, a).x
                    < bench.placement.cell_center(&bench.netlist, b).x;
                let after = placement.cell_center(&bench.netlist, a).x
                    < placement.cell_center(&bench.netlist, b).x;
                before != after
            })
            .count()
    };

    let mut p_diff = bench.placement.clone();
    run_legalizer(
        &DiffusionLegalizer::local_default(),
        &bench.netlist,
        &bench.die,
        &mut p_diff,
    );
    let v_diff = violations(&p_diff);

    let mut p_tetris = bench.placement.clone();
    run_legalizer(
        &TetrisLegalizer::new(),
        &bench.netlist,
        &bench.die,
        &mut p_tetris,
    );
    let v_tetris = violations(&p_tetris);

    assert!(
        v_diff <= v_tetris,
        "diffusion order violations ({v_diff}) should not exceed Tetris ({v_tetris})"
    );
}
