//! End-to-end tests for the control plane: the ECO-delta path is
//! bit-identical to a full resend (both solvers, in-process engine and
//! over TCP), the NeedDesign handshake and LRU eviction behave
//! deterministically over the wire, legacy v2 clients get v2 replies
//! byte for byte, and a sharded control plane survives a dead backend
//! via the registry's warm spare.

use std::io::Read;
use std::net::{SocketAddr, TcpListener, TcpStream};

use dpm_diffusion::{DiffusionConfig, SolverKind};
use dpm_gen::{Benchmark, CircuitSpec, EcoSpec, InflationSpec};
use dpm_serve::wire::{
    design_hash, encode_request, encode_response, write_frame_versioned, FrameKind, JobKind,
    JobRequest, PayloadEncoding,
};
use dpm_serve::{
    execute_job, DeltaJobRequest, DeltaReply, EcoDelta, Reply, ServeClient, ServeConfig, Server,
    ShardBackend, ShardRouter, ShardRouterConfig,
};

use dpm_ctl::{BackendRegistry, CtlConfig, CtlServer, ExecMode, TenantSpec};

fn bench(cells: usize, seed: u64) -> Benchmark {
    CircuitSpec::with_size("ctl_e2e", cells, seed).generate()
}

/// A baseline and its ECO'd successor, generated from the same spec so
/// the successor strictly extends the baseline. The baseline is
/// inflated into a hot spot so the migration does real work.
fn eco_pair(cells: usize, seed: u64) -> (Benchmark, Benchmark) {
    let make = || {
        let mut b = bench(cells, seed);
        b.inflate(&InflationSpec::centered(0.3, 0.25, seed ^ 0xD1E));
        b
    };
    let base = make();
    let mut eco = make();
    let summary = eco.apply_eco(&EcoSpec::default(), seed ^ 0xEC0);
    assert!(summary.buffers > 0 && summary.moved > 0 && summary.resized > 0);
    (base, eco)
}

fn full_request(b: &Benchmark, id: u64, kind: JobKind, config: &DiffusionConfig) -> JobRequest {
    JobRequest {
        id,
        deadline_ms: 0,
        progress_stride: 0,
        kind,
        design: format!("ctl_e2e_{id}"),
        config: config.clone(),
        netlist: b.netlist.clone(),
        die: b.die.clone(),
        placement: b.placement.clone(),
        vol: None,
        trace: None,
    }
}

fn delta_request(
    base: &Benchmark,
    eco: &Benchmark,
    id: u64,
    tenant: &str,
    kind: JobKind,
    config: &DiffusionConfig,
) -> DeltaJobRequest {
    let delta = EcoDelta::diff(&base.netlist, &base.placement, &eco.netlist, &eco.placement)
        .expect("eco extends base");
    DeltaJobRequest {
        id,
        deadline_ms: 0,
        progress_stride: 0,
        kind,
        design: format!("ctl_e2e_delta_{id}"),
        tenant: tenant.to_string(),
        config: config.clone(),
        baseline: design_hash(&base.netlist, &base.die, &base.placement),
        delta,
        trace: None,
    }
}

fn one_tenant_cfg() -> CtlConfig {
    CtlConfig {
        workers: 1,
        tenants: vec![TenantSpec::new("acme", 1, 64)],
        ..CtlConfig::default()
    }
}

fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr");
    drop(listener);
    addr
}

#[test]
fn delta_path_is_bit_identical_to_full_resend_both_solvers() {
    for (solver, kind) in [
        (SolverKind::Ftcs, JobKind::Local),
        (SolverKind::Spectral, JobKind::Global),
    ] {
        let config = DiffusionConfig::default().with_solver(solver);
        let (base, eco) = eco_pair(220, 71);

        // Ground truth: the engine run in this process on the modified
        // design.
        let mut local = eco.placement.clone();
        let result = execute_job(
            kind,
            &config,
            &eco.netlist,
            &eco.die,
            &mut local,
            &|| false,
            &mut dpm_diffusion::NoopObserver,
        );
        assert!(result.steps > 0, "workload must do real work");

        let ctl = CtlServer::start(one_tenant_cfg()).expect("ctl starts");
        let mut client = ServeClient::connect(ctl.local_addr()).expect("connect");

        // Full resend over TCP.
        let full = client
            .request(
                &full_request(&eco, 1, kind, &config),
                PayloadEncoding::Binary,
            )
            .expect("full request");
        let Reply::Ok(full) = full else {
            panic!("full request rejected: {full:?}");
        };
        assert_eq!(
            full.positions,
            local.as_slice().to_vec(),
            "{solver:?}: TCP full resend must match the in-process engine bit for bit"
        );

        // Delta path over TCP (NeedDesign handshake resolved inside
        // request_delta).
        let dreq = delta_request(&base, &eco, 2, "acme", kind, &config);
        let reply = client
            .request_delta(&dreq, (&base.netlist, &base.die, &base.placement), |_| {})
            .expect("delta request");
        let Reply::Ok(delta_resp) = reply else {
            panic!("delta request rejected: {reply:?}");
        };
        assert_eq!(
            delta_resp.positions, full.positions,
            "{solver:?}: cached-baseline + ECO delta must be bit-identical to the full resend"
        );
        ctl.shutdown();
    }
}

#[test]
fn need_design_handshake_then_cache_hits() {
    let config = DiffusionConfig::default();
    let (base, eco) = eco_pair(180, 83);
    let ctl = CtlServer::start(one_tenant_cfg()).expect("ctl starts");
    let mut client = ServeClient::connect(ctl.local_addr()).expect("connect");

    // Cold cache: the delta is answered with a typed NeedDesign frame
    // naming the missing hash.
    let dreq = delta_request(&base, &eco, 10, "acme", JobKind::Local, &config);
    client.send_delta_request(&dreq).expect("send");
    let reply = client.recv_delta_reply(|_| {}).expect("recv");
    let DeltaReply::NeedDesign(need) = reply else {
        panic!("expected NeedDesign on a cold cache, got {reply:?}");
    };
    assert_eq!(need.id, 10);
    assert_eq!(need.hash, dreq.baseline);

    // Upload, then resend: the ack echoes the content hash and the
    // resent delta runs.
    let ack = client
        .put_design(10, "acme", &base.netlist, &base.die, &base.placement)
        .expect("upload");
    assert!(ack.cached);
    assert_eq!(ack.hash, dreq.baseline);
    client.send_delta_request(&dreq).expect("resend");
    let DeltaReply::Done(Reply::Ok(first)) = client.recv_delta_reply(|_| {}).expect("recv") else {
        panic!("resent delta should run");
    };

    // Warm cache: a second delta skips the handshake entirely.
    let dreq2 = delta_request(&base, &eco, 11, "acme", JobKind::Local, &config);
    client.send_delta_request(&dreq2).expect("send warm");
    let DeltaReply::Done(Reply::Ok(second)) = client.recv_delta_reply(|_| {}).expect("recv") else {
        panic!("warm delta should run");
    };
    assert_eq!(first.positions, second.positions, "same delta, same answer");

    let cache = ctl.cache_stats();
    assert_eq!(cache.misses, 1, "exactly the cold lookup missed");
    assert_eq!(cache.hits, 2, "resend and warm request both hit");
    assert_eq!(ctl.metrics().need_design.get(), 1);
    assert_eq!(ctl.metrics().delta_requests.get(), 3);
    ctl.shutdown();
}

#[test]
fn wire_lru_eviction_is_deterministic() {
    let a = bench(140, 91);
    let b = bench(140, 92);
    let a_bytes = dpm_serve::wire::encode_design_bytes(&a.netlist, &a.die, &a.placement).len();
    // Budget fits either design alone but never both, so the second
    // upload must evict the first — deterministically.
    let cfg = CtlConfig {
        workers: 1,
        cache_bytes: a_bytes + a_bytes / 2,
        tenants: vec![TenantSpec::new("acme", 1, 64)],
        ..CtlConfig::default()
    };
    let ctl = CtlServer::start(cfg).expect("ctl starts");
    let mut client = ServeClient::connect(ctl.local_addr()).expect("connect");

    let ack_a = client
        .put_design(1, "acme", &a.netlist, &a.die, &a.placement)
        .expect("upload a");
    assert!(ack_a.cached);
    assert_eq!(ack_a.evicted, 0);

    let ack_b = client
        .put_design(2, "acme", &b.netlist, &b.die, &b.placement)
        .expect("upload b");
    assert!(ack_b.cached);
    assert_eq!(
        ack_b.evicted, 1,
        "b must evict a: the budget holds one design"
    );

    // a is gone: a delta naming it gets NeedDesign, not a stale run.
    let mut eco_a = bench(140, 91);
    eco_a.apply_eco(&EcoSpec::default(), 5);
    let dreq = delta_request(
        &a,
        &eco_a,
        3,
        "acme",
        JobKind::Local,
        &DiffusionConfig::default(),
    );
    client.send_delta_request(&dreq).expect("send");
    let reply = client.recv_delta_reply(|_| {}).expect("recv");
    assert!(
        matches!(reply, DeltaReply::NeedDesign(ref n) if n.hash == dreq.baseline),
        "evicted baseline must miss: {reply:?}"
    );

    let cache = ctl.cache_stats();
    assert_eq!(cache.evictions, 1);
    assert_eq!(cache.entries, 1);
    ctl.shutdown();
}

#[test]
fn v2_client_gets_v2_reply_bytes() {
    let config = DiffusionConfig::default();
    let eco = bench(150, 97);
    let ctl = CtlServer::start(one_tenant_cfg()).expect("ctl starts");

    // Hand-rolled v2 client: a v2-stamped Request frame on a raw
    // socket.
    let mut stream = TcpStream::connect(ctl.local_addr()).expect("connect");
    let req = full_request(&eco, 77, JobKind::Local, &config);
    let payload = encode_request(&req, PayloadEncoding::Binary);
    write_frame_versioned(&mut stream, 2, FrameKind::Request, &payload).expect("send v2");

    // Read the raw reply: header first, then payload.
    let mut header = [0u8; 11];
    stream.read_exact(&mut header).expect("reply header");
    assert_eq!(&header[..4], b"DPMS");
    assert_eq!(
        u16::from_le_bytes([header[4], header[5]]),
        2,
        "a v3 control plane must echo the request's v2 on the reply header"
    );
    assert_eq!(header[6], 2, "frame kind byte for Response");
    let len = u32::from_le_bytes([header[7], header[8], header[9], header[10]]) as usize;
    let mut reply_payload = vec![0u8; len];
    stream
        .read_exact(&mut reply_payload)
        .expect("reply payload");

    // Byte-for-byte: the whole reply equals a v2-stamped re-encoding of
    // its own decode, so nothing in the frame changed shape under v3.
    let resp = dpm_serve::wire::decode_response(&reply_payload).expect("decode");
    assert_eq!(resp.id, 77);
    let mut expected = Vec::new();
    write_frame_versioned(
        &mut expected,
        2,
        FrameKind::Response,
        &encode_response(&resp),
    )
    .expect("re-encode");
    let mut actual = header.to_vec();
    actual.extend_from_slice(&reply_payload);
    assert_eq!(actual, expected, "v2 reply must round-trip byte for byte");
    ctl.shutdown();
}

#[test]
fn sharded_ctl_survives_dead_backend_via_registry_spare() {
    let config = DiffusionConfig::default();
    let eco = {
        let mut b = bench(200, 101);
        b.apply_eco(&EcoSpec::default(), 3);
        b
    };
    let req = full_request(&eco, 5, JobKind::Local, &config);

    // Reference: the same sharded job on healthy in-process backends.
    let shard_cfg = ShardRouterConfig {
        shards: 2,
        ..ShardRouterConfig::default()
    };
    let reference = ShardRouter::in_process(shard_cfg.clone()).route(&req);
    assert!(reference.outcomes.iter().all(|o| o.error.is_none()));

    // Control plane: one primary is dead; the warm spare is a real
    // server. The registry's pre-job health probe must swap them.
    let spare = Server::start("127.0.0.1:0", ServeConfig::default()).expect("spare starts");
    let spare_addr = spare.local_addr();
    let registry = BackendRegistry::new(
        vec![ShardBackend::InProcess, ShardBackend::Tcp(dead_addr())],
        vec![ShardBackend::Tcp(spare_addr)],
    );
    let ctl = CtlServer::start(CtlConfig {
        workers: 1,
        tenants: vec![TenantSpec::new("acme", 1, 64)],
        exec: ExecMode::Sharded {
            shards: shard_cfg.shards,
            halo_bins: shard_cfg.halo_bins,
            max_halo_rounds: shard_cfg.max_halo_rounds,
            registry,
        },
        ..CtlConfig::default()
    })
    .expect("ctl starts");

    let mut client = ServeClient::connect(ctl.local_addr()).expect("connect");
    let reply = client
        .request(&req, PayloadEncoding::Binary)
        .expect("request");
    let Reply::Ok(resp) = reply else {
        panic!("sharded job with a dead backend must still succeed: {reply:?}");
    };
    assert_eq!(
        resp.positions, reference.response.positions,
        "failover must not change the placement: backends are bit-exact"
    );

    let snap = ctl
        .registry_snapshot()
        .expect("sharded mode has a registry");
    assert_eq!(snap.replacements, 1, "the dead primary was replaced once");
    assert_eq!(snap.primaries[1], ShardBackend::Tcp(spare_addr));
    assert!(snap.spares.is_empty(), "the spare was promoted");
    assert_eq!(ctl.metrics().replacements.get(), 1);
    ctl.shutdown();
    spare.shutdown();
}

#[test]
fn hundreds_of_idle_connections_do_not_starve_a_request() {
    let config = DiffusionConfig::default();
    let eco = bench(120, 111);
    let ctl = CtlServer::start(one_tenant_cfg()).expect("ctl starts");

    // Park idle connections; they cost the front-end a buffer each,
    // not a thread each.
    let idle: Vec<TcpStream> = (0..300)
        .map(|_| TcpStream::connect(ctl.local_addr()).expect("idle connect"))
        .collect();

    let mut client = ServeClient::connect(ctl.local_addr()).expect("connect");
    let reply = client
        .request(
            &full_request(&eco, 9, JobKind::Local, &config),
            PayloadEncoding::Binary,
        )
        .expect("request among idles");
    assert!(matches!(reply, Reply::Ok(_)), "{reply:?}");

    // The idle connections are still alive and serviceable afterwards.
    let mut last = idle.into_iter().next_back().expect("have one");
    last.set_nonblocking(false).expect("blocking");
    write_frame_versioned(&mut last, 3, FrameKind::StatsRequest, &[]).expect("stats on idle");
    let frame = dpm_serve::wire::read_frame(&mut last, 1 << 20)
        .expect("read stats")
        .expect("stats frame");
    assert_eq!(frame.kind, FrameKind::Stats);
    ctl.shutdown();
}
