//! Tables XI–XVI — the ISPD comparison: scaled wirelength, movement
//! statistics, and CPU time for Capo-like / FengShui-like / DIFF(L) /
//! GEM-like legalizers on the CENTER and RANDOM sets.
//!
//! Pass `--set center` or `--set random` to run one set (default: both).

use dpm_bench::suite::{print_ispd_metric, run_ispd_comparison, IspdRow, IspdSet};
use dpm_bench::{fnum, print_table, scale_from_env, TextTable, IBM_DEFAULT_SCALE};

fn main() {
    let scale = scale_from_env(IBM_DEFAULT_SCALE);
    let arg = std::env::args().nth(2).unwrap_or_default();
    let sets: Vec<IspdSet> = match arg.as_str() {
        "center" => vec![IspdSet::Center],
        "random" => vec![IspdSet::Random],
        _ => vec![IspdSet::Center, IspdSet::Random],
    };
    for set in sets {
        println!(
            "\nReproducing Tables {} at scale {scale}.",
            match set {
                IspdSet::Center => "XI-XIII (CENTER)",
                IspdSet::Random => "XIV-XVI (RANDOM)",
            }
        );
        let rows = run_ispd_comparison(scale, set);
        print_ispd_metric(
            &format!("Scaled wirelength, {} (paper averages C: 1.31/1.22/1.08/1.15; R: 1.10/1.06/1.07/1.10)", set.label()),
            &rows,
            |row, r| r.metrics.twl / row.base_twl,
        );
        movement_table(set, &rows);
        let mut t = TextTable::new([
            "testcase",
            "Capo-like",
            "FengShui-like",
            "DIFF(L)",
            "GEM-like",
        ]);
        for row in &rows {
            let mut cells = vec![row.name.clone()];
            cells.extend(
                row.results
                    .iter()
                    .map(|r| format!("{:.3}", r.runtime.as_secs_f64())),
            );
            t.row(cells);
        }
        print_table(&format!("CPU time (s), {}", set.label()), &t);
    }
}

fn movement_table(set: IspdSet, rows: &[IspdRow]) {
    let mut t = TextTable::new(["testcase", "legalizer", "max", "avg", "avg^2", "#mov"]);
    for row in rows {
        for r in &row.results {
            t.row([
                row.name.clone(),
                r.legalizer.clone(),
                fnum(r.movement.max),
                fnum(r.movement.avg),
                fnum(r.movement.avg_sq),
                r.movement.moved.to_string(),
            ]);
        }
    }
    print_table(
        &format!(
            "Movements, {} (paper: DIFF has the smallest max and avg^2 movement)",
            set.label()
        ),
        &t,
    );
}
