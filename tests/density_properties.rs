//! Property-based tests of the density-map machinery the diffusion
//! engine consumes.

use diffuplace::geom::{Point, Rect};
use diffuplace::netlist::{CellKind, Netlist, NetlistBuilder};
use diffuplace::place::{BinGrid, DensityMap, Placement};
use proptest::prelude::*;

/// Random set of cells inside a 100×100 region.
fn arb_cells() -> impl Strategy<Value = Vec<(f64, f64, f64, f64)>> {
    proptest::collection::vec(
        (0.0..88.0f64, 0.0..88.0f64, 2.0..12.0f64, 2.0..12.0f64),
        1..40,
    )
}

fn build(cells: &[(f64, f64, f64, f64)]) -> (Netlist, Placement) {
    let mut b = NetlistBuilder::new();
    for (i, &(_, _, w, h)) in cells.iter().enumerate() {
        b.add_cell(format!("c{i}"), w, h, CellKind::Movable);
    }
    let nl = b.build().expect("valid");
    let mut p = Placement::new(nl.num_cells());
    for (i, &(x, y, _, _)) in cells.iter().enumerate() {
        p.set(diffuplace::netlist::CellId::new(i as u32), Point::new(x, y));
    }
    (nl, p)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Mass accounting: total density × bin area equals the total cell
    /// area inside the region, for any placement (overlapping or not).
    #[test]
    fn density_conserves_area(cells in arb_cells()) {
        let (nl, p) = build(&cells);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let d = DensityMap::from_placement(&nl, &p, grid.clone());
        let total_density: f64 = d.densities().iter().sum::<f64>() * grid.bin_area();
        let total_area: f64 = cells.iter().map(|&(_, _, w, h)| w * h).sum();
        prop_assert!(
            (total_density - total_area).abs() < 1e-6 * total_area.max(1.0),
            "density mass {total_density} vs cell area {total_area}"
        );
    }

    /// The windowed average lies between the neighborhood's min and max
    /// raw densities, and window 0 is the identity.
    #[test]
    fn windowed_average_bounds(cells in arb_cells(), w in 0usize..4) {
        let (nl, p) = build(&cells);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let d = DensityMap::from_placement(&nl, &p, grid.clone());
        let avg = d.windowed_average(w);
        if w == 0 {
            prop_assert_eq!(avg.as_slice(), d.densities());
        }
        let nx = grid.nx();
        for (i, &a) in avg.iter().enumerate() {
            let (j, k) = (i % nx, i / nx);
            let mut lo = f64::INFINITY;
            let mut hi = f64::NEG_INFINITY;
            for kk in k.saturating_sub(w)..=(k + w).min(grid.ny() - 1) {
                for jj in j.saturating_sub(w)..=(j + w).min(nx - 1) {
                    let v = d.densities()[kk * nx + jj];
                    lo = lo.min(v);
                    hi = hi.max(v);
                }
            }
            prop_assert!(a >= lo - 1e-9 && a <= hi + 1e-9, "avg {a} outside [{lo}, {hi}]");
        }
    }

    /// Incremental move_cell equals a fresh recompute for any sequence
    /// of moves.
    #[test]
    fn incremental_updates_match_recompute(
        cells in arb_cells(),
        moves in proptest::collection::vec((0usize..40, 0.0..88.0f64, 0.0..88.0f64), 1..10),
    ) {
        let (nl, mut p) = build(&cells);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let mut map = DensityMap::from_placement(&nl, &p, grid.clone());
        for &(raw, x, y) in &moves {
            let cell = diffuplace::netlist::CellId::new((raw % cells.len()) as u32);
            let old = p.cell_rect(&nl, cell);
            p.set(cell, Point::new(x, y));
            map.move_cell(&old, &p.cell_rect(&nl, cell));
        }
        let fresh = DensityMap::from_placement(&nl, &p, grid);
        for (a, b) in map.densities().iter().zip(fresh.densities()) {
            prop_assert!((a - b).abs() < 1e-9, "incremental {a} vs fresh {b}");
        }
    }

    /// Overflow metrics: total overflow is monotone non-increasing in
    /// d_max, and zero once d_max exceeds the peak.
    #[test]
    fn overflow_monotone_in_target(cells in arb_cells()) {
        let (nl, p) = build(&cells);
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 100.0, 100.0), 10.0);
        let d = DensityMap::from_placement(&nl, &p, grid);
        let mut prev = f64::INFINITY;
        for dmax in [0.25, 0.5, 1.0, 2.0, 4.0] {
            let o = d.total_overflow(dmax);
            prop_assert!(o <= prev + 1e-12);
            prev = o;
        }
        prop_assert_eq!(d.total_overflow(d.max_density() + 1e-9), 0.0);
    }
}
