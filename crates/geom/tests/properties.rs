//! Property-based tests for the geometry primitives.

use dpm_geom::{Point, Rect, Vector};
use proptest::prelude::*;

fn arb_point() -> impl Strategy<Value = Point> {
    (-1e6..1e6f64, -1e6..1e6f64).prop_map(|(x, y)| Point::new(x, y))
}

fn arb_rect() -> impl Strategy<Value = Rect> {
    (arb_point(), 0.0..1e4f64, 0.0..1e4f64).prop_map(|(o, w, h)| Rect::from_origin_size(o, w, h))
}

proptest! {
    #[test]
    fn overlap_area_commutes(a in arb_rect(), b in arb_rect()) {
        prop_assert!((a.overlap_area(&b) - b.overlap_area(&a)).abs() < 1e-9);
    }

    #[test]
    fn overlap_area_bounded_by_min_area(a in arb_rect(), b in arb_rect()) {
        let ov = a.overlap_area(&b);
        prop_assert!(ov >= 0.0);
        prop_assert!(ov <= a.area().min(b.area()) + 1e-9);
    }

    #[test]
    fn self_overlap_is_area(a in arb_rect()) {
        prop_assert!((a.overlap_area(&a) - a.area()).abs() <= 1e-9 * a.area().max(1.0));
    }

    #[test]
    fn intersection_agrees_with_overlap(a in arb_rect(), b in arb_rect()) {
        match a.intersection(&b) {
            Some(i) => {
                prop_assert!((i.area() - a.overlap_area(&b)).abs() < 1e-6);
                prop_assert!(a.contains_rect(&i));
                prop_assert!(b.contains_rect(&i));
            }
            None => prop_assert_eq!(a.overlap_area(&b), 0.0),
        }
    }

    #[test]
    fn union_contains_both(a in arb_rect(), b in arb_rect()) {
        let u = a.union(&b);
        prop_assert!(u.contains_rect(&a));
        prop_assert!(u.contains_rect(&b));
        prop_assert!(u.area() + 1e-9 >= a.area().max(b.area()));
    }

    #[test]
    fn translation_preserves_area(a in arb_rect(), dx in -1e4..1e4f64, dy in -1e4..1e4f64) {
        let t = a.translated(dx, dy);
        prop_assert!((t.area() - a.area()).abs() < 1e-6 * a.area().max(1.0));
        prop_assert!((t.width() - a.width()).abs() < 1e-9);
    }

    #[test]
    fn manhattan_is_at_least_euclidean(a in arb_point(), b in arb_point()) {
        prop_assert!(a.manhattan_distance(b) + 1e-9 >= a.distance(b));
    }

    #[test]
    fn triangle_inequality_manhattan(a in arb_point(), b in arb_point(), c in arb_point()) {
        prop_assert!(a.manhattan_distance(c) <= a.manhattan_distance(b) + b.manhattan_distance(c) + 1e-6);
    }

    #[test]
    fn linf_clamp_never_exceeds(v_x in -1e6..1e6f64, v_y in -1e6..1e6f64, max in 0.01..100.0f64) {
        let v = Vector::new(v_x, v_y).clamped_linf(max);
        prop_assert!(v.linf_length() <= max * (1.0 + 1e-12));
    }

    #[test]
    fn point_vector_round_trip(p in arb_point(), vx in -1e5..1e5f64, vy in -1e5..1e5f64) {
        let v = Vector::new(vx, vy);
        let q = p + v;
        let back = q - v;
        prop_assert!((back.x - p.x).abs() < 1e-6);
        prop_assert!((back.y - p.y).abs() < 1e-6);
    }
}
