//! The paper's fourth application as an asserted pipeline: quadratic
//! placement → diffusion spreading → detailed legalization, compared
//! against packing the analytic solution directly.

use diffuplace::diffusion::{DiffusionConfig, DiffusionEngine, GlobalDiffusion, SpectralSolver};
use diffuplace::gen::CircuitSpec;
use diffuplace::legalize::{run_legalizer, DetailedLegalizer, TetrisLegalizer};
use diffuplace::netlist::CellId;
use diffuplace::place::{check_legality, hpwl, Placement};
use diffuplace::qplace::quadratic_place;

struct Flow {
    bench: diffuplace::gen::Benchmark,
    analytic: Placement,
    pairs: Vec<(CellId, CellId)>,
}

fn flow() -> Flow {
    let bench = CircuitSpec::with_size("analytic_it", 1_500, 401).generate();
    let analytic = quadratic_place(&bench.netlist, &bench.die, &bench.placement);
    let cells: Vec<CellId> = bench.netlist.movable_cell_ids().collect();
    let pairs = cells
        .windows(5)
        .map(|w| (w[0], w[4]))
        .filter(|&(a, b)| {
            (analytic.cell_center(&bench.netlist, a).x - analytic.cell_center(&bench.netlist, b).x)
                .abs()
                > 6.0
        })
        .take(400)
        .collect();
    Flow {
        bench,
        analytic,
        pairs,
    }
}

fn violations(f: &Flow, p: &Placement) -> usize {
    f.pairs
        .iter()
        .filter(|&&(a, b)| {
            (f.analytic.cell_center(&f.bench.netlist, a).x
                < f.analytic.cell_center(&f.bench.netlist, b).x)
                != (p.cell_center(&f.bench.netlist, a).x < p.cell_center(&f.bench.netlist, b).x)
        })
        .count()
}

fn spread_with_diffusion(f: &Flow) -> Placement {
    let mut p = f.analytic.clone();
    let cfg = DiffusionConfig::default()
        .with_bin_size(2.5 * f.bench.die.row_height())
        .with_delta(0.05);
    GlobalDiffusion::new(cfg).run(&f.bench.netlist, &f.bench.die, &mut p);
    run_legalizer(
        &DetailedLegalizer::new(),
        &f.bench.netlist,
        &f.bench.die,
        &mut p,
    );
    p
}

#[test]
fn diffusion_legalizes_the_analytic_pileup() {
    let f = flow();
    let p = spread_with_diffusion(&f);
    let report = check_legality(&f.bench.netlist, &f.bench.die, &p, 3);
    assert!(report.is_legal(), "{report}");
}

#[test]
fn diffusion_preserves_analytic_order_better_than_packing() {
    let f = flow();
    let p_diff = spread_with_diffusion(&f);

    let mut p_tetris = f.analytic.clone();
    run_legalizer(
        &TetrisLegalizer::new(),
        &f.bench.netlist,
        &f.bench.die,
        &mut p_tetris,
    );

    let v_diff = violations(&f, &p_diff);
    let v_tetris = violations(&f, &p_tetris);
    assert!(
        v_diff < v_tetris,
        "diffusion violations ({v_diff}) must beat packing ({v_tetris})"
    );
    assert!(
        hpwl(&f.bench.netlist, &p_diff) < hpwl(&f.bench.netlist, &p_tetris),
        "diffusion TWL must beat packing"
    );
}

// ---------------------------------------------------------------------------
// Closed-form cosine fixtures: spectral jump vs stepped FTCS vs analytic.
// ---------------------------------------------------------------------------

/// A superposition of zero-flux cosine eigenmodes over a positive
/// baseline: `ρ(x,y) = base + Σ aᵢ·cos(πpᵢ(j+½)/nx)·cos(πqᵢ(k+½)/ny)`.
fn cosine_field(nx: usize, ny: usize, base: f64, modes: &[(usize, usize, f64)]) -> Vec<f64> {
    let mut field = vec![base; nx * ny];
    for k in 0..ny {
        for j in 0..nx {
            for &(p, q, a) in modes {
                let cx = (std::f64::consts::PI * p as f64 * (j as f64 + 0.5) / nx as f64).cos();
                let cy = (std::f64::consts::PI * q as f64 * (k as f64 + 0.5) / ny as f64).cos();
                field[k * nx + j] += a * cx * cy;
            }
        }
    }
    field
}

/// The exact solution of `∂ρ/∂t = ∇²ρ` with zero-flux boundaries for the
/// same superposition at time `t`: each mode decays independently at
/// `exp(-t·((πp/nx)² + (πq/ny)²))`, the baseline never decays.
fn analytic_solution(
    nx: usize,
    ny: usize,
    base: f64,
    modes: &[(usize, usize, f64)],
    t: f64,
) -> Vec<f64> {
    let decayed: Vec<(usize, usize, f64)> = modes
        .iter()
        .map(|&(p, q, a)| {
            let rx = std::f64::consts::PI * p as f64 / nx as f64;
            let ry = std::f64::consts::PI * q as f64 / ny as f64;
            (p, q, a * (-t * (rx * rx + ry * ry)).exp())
        })
        .collect();
    cosine_field(nx, ny, base, &decayed)
}

fn max_abs_err(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

#[test]
fn spectral_jump_is_closer_to_analytic_than_ftcs_on_every_fixture() {
    // Cosine eigenmode fixtures on power-of-two and generic grids. For
    // each one: evolve the field with S stepped FTCS sweeps, jump it with
    // one spectral transform round trip to the same diffusion time, and
    // compare both against the closed-form solution. The spectral answer
    // must win on every fixture — it carries no time-discretization
    // error, while FTCS accumulates O(τ) error per unit time.
    let fixtures = [
        (64, 64, vec![(1, 0, 0.3), (2, 3, 0.2)]),
        (64, 64, vec![(5, 5, 0.45)]),
        (24, 20, vec![(1, 1, 0.25), (3, 0, 0.15)]),
        (96, 40, vec![(0, 2, 0.4), (4, 1, 0.1)]),
    ];
    let tau = 0.1;
    let steps = 60u32;
    // One `step_density(tau)` advances continuous time by tau/2.
    let t = steps as f64 * tau * 0.5;

    for (nx, ny, modes) in &fixtures {
        let (nx, ny) = (*nx, *ny);
        let rho0 = cosine_field(nx, ny, 1.0, modes);
        let truth = analytic_solution(nx, ny, 1.0, modes, t);

        let mut engine = DiffusionEngine::from_raw(nx, ny, rho0.clone(), None);
        for _ in 0..steps {
            engine.step_density(tau);
        }
        let ftcs_err = max_abs_err(engine.densities(), &truth);

        let mut spectral = vec![0.0; nx * ny];
        SpectralSolver::new(nx, ny, &rho0).density_at(t, &mut spectral);
        let spectral_err = max_abs_err(&spectral, &truth);

        assert!(
            spectral_err <= ftcs_err,
            "{nx}x{ny} {modes:?}: spectral err {spectral_err:.3e} \
             must not exceed FTCS err {ftcs_err:.3e}"
        );
        // The win is not marginal: the spectral jump reproduces the
        // closed form to near machine precision, FTCS visibly does not.
        assert!(
            spectral_err < 1e-10,
            "{nx}x{ny}: spectral err {spectral_err:.3e} should be ~eps"
        );
        assert!(
            ftcs_err > 1e-6,
            "{nx}x{ny}: FTCS err {ftcs_err:.3e} unexpectedly tiny — fixture too easy"
        );
    }
}

#[test]
fn diffused_analytic_placement_is_competitive_with_constructive() {
    // Spreading the quadratic optimum smoothly yields a placement whose
    // wirelength is in the same league as (here: better than) the
    // cluster-constructive one — evidence the spreading really preserves
    // the analytic solution's quality.
    let f = flow();
    let p = spread_with_diffusion(&f);
    let constructive = hpwl(&f.bench.netlist, &f.bench.placement);
    let diffused = hpwl(&f.bench.netlist, &p);
    assert!(
        diffused < constructive * 1.2,
        "diffused analytic TWL {diffused} vs constructive {constructive}"
    );
}
