//! End-to-end tests for the sharded routing path: K = 1
//! bit-identicality with the direct engine (in-process and through the
//! wire), the maximum-principle invariant across K = 4 halo-exchange
//! rounds, and graceful degradation when a shard backend is dead.

use std::net::{SocketAddr, TcpListener};

use dpm_diffusion::{DiffusionConfig, LocalDiffusion};
use dpm_gen::{Benchmark, CircuitSpec, InflationSpec};
use dpm_place::{BinGrid, DensityMap};
use dpm_serve::shard::{ShardBackend, ShardRouter, ShardRouterConfig};
use dpm_serve::wire::{JobKind, JobRequest};
use dpm_serve::{ServeConfig, Server};

fn hot_bench(cells: usize, seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("shard_e2e", cells, seed).generate();
    b.inflate(&InflationSpec::centered(0.3, 0.25, seed ^ 0xD1E));
    b
}

fn request(bench: &Benchmark, id: u64) -> JobRequest {
    JobRequest {
        id,
        deadline_ms: 0,
        progress_stride: 0,
        kind: JobKind::Local,
        design: format!("shard_e2e_{id}"),
        config: DiffusionConfig::default(),
        netlist: bench.netlist.clone(),
        die: bench.die.clone(),
        placement: bench.placement.clone(),
        vol: None,
        trace: None,
    }
}

/// An address that refuses connections: bind an ephemeral port, then
/// drop the listener.
fn dead_addr() -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr");
    drop(listener);
    addr
}

#[test]
fn k1_in_process_is_bit_identical_to_direct_engine() {
    let bench = hot_bench(180, 41);
    let req = request(&bench, 1);

    let mut direct = bench.placement.clone();
    let direct_result =
        LocalDiffusion::new(req.config.clone()).run(&bench.netlist, &bench.die, &mut direct);
    assert!(direct_result.steps > 0, "workload must do real work");

    let router = ShardRouter::in_process(ShardRouterConfig {
        shards: 1,
        ..ShardRouterConfig::default()
    });
    let reply = router.route(&req);

    assert_eq!(reply.shards, 1);
    assert_eq!(reply.halo_exchanges, 1);
    assert!(reply.outcomes[0].error.is_none());
    assert_eq!(reply.response.steps, direct_result.steps as u64);
    assert_eq!(
        reply.response.positions,
        direct.as_slice().to_vec(),
        "K=1 sharded placement must be bit-identical to the direct engine"
    );
    // The merged kernel timers actually carry the run's work.
    assert!(reply.kernels.ftcs.calls > 0);
    assert_eq!(reply.shard_service_hist.count, 1);
}

#[test]
fn k1_over_tcp_is_bit_identical_to_direct_engine() {
    let bench = hot_bench(150, 43);
    let req = request(&bench, 2);

    let mut direct = bench.placement.clone();
    LocalDiffusion::new(req.config.clone()).run(&bench.netlist, &bench.die, &mut direct);

    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server starts");
    let router = ShardRouter::new(
        ShardRouterConfig {
            shards: 1,
            ..ShardRouterConfig::default()
        },
        vec![ShardBackend::Tcp(server.local_addr())],
    );
    let reply = router.route(&req);
    server.shutdown();

    assert!(
        reply.outcomes[0].error.is_none(),
        "{:?}",
        reply.outcomes[0].error
    );
    assert_eq!(
        reply.response.positions,
        direct.as_slice().to_vec(),
        "K=1 routed through TCP must stay bit-identical (f64 bit patterns on the wire)"
    );
}

#[test]
fn spectral_solver_rides_through_the_shard_router() {
    // The router clones the request config into every shard sub-job, so
    // the solver choice must survive sharding. With K=1 the halo covers
    // the whole grid and the parent die is reused, making the routed
    // spectral run bit-identical to a direct in-process spectral run —
    // which itself differs from FTCS on a workload that does real work.
    use dpm_diffusion::{GlobalDiffusion, SolverKind};

    let bench = hot_bench(180, 53);
    let mut req = request(&bench, 9);
    req.kind = JobKind::Global;
    req.config = req.config.with_solver(SolverKind::Spectral);

    let mut direct = bench.placement.clone();
    let direct_result =
        GlobalDiffusion::new(req.config.clone()).run(&bench.netlist, &bench.die, &mut direct);
    assert!(direct_result.steps > 0, "workload must do real work");

    let mut ftcs = bench.placement.clone();
    GlobalDiffusion::new(req.config.clone().with_solver(SolverKind::Ftcs)).run(
        &bench.netlist,
        &bench.die,
        &mut ftcs,
    );
    assert_ne!(
        direct.as_slice().to_vec(),
        ftcs.as_slice().to_vec(),
        "solvers must be distinguishable on this workload"
    );

    let router = ShardRouter::in_process(ShardRouterConfig {
        shards: 1,
        ..ShardRouterConfig::default()
    });
    let reply = router.route(&req);
    assert!(reply.outcomes[0].error.is_none());
    assert_eq!(
        reply.response.positions,
        direct.as_slice().to_vec(),
        "K=1 routed spectral run must be bit-identical to the direct spectral engine"
    );
}

#[test]
fn k4_never_increases_max_density_at_any_halo_exchange() {
    let mut bench = CircuitSpec::with_size("shard_e2e", 400, 47).generate();
    bench.inflate(&InflationSpec::centered(0.15, 0.35, 47 ^ 0xD1E));
    let mut req = request(&bench, 3);
    // W1 = 0 judges raw bin density and Δ = 0 keeps windows open until
    // every bin is at or below d_max, so "max bin density ≤ d_max" is
    // the criterion the routed run actually chases. Capping each
    // shard-local pass at 30 steps forces convergence to happen across
    // halo-exchange rounds rather than inside a single fan-out.
    req.config = req
        .config
        .with_windows(0, 2)
        .with_delta(0.0)
        .with_d_max(1.1)
        .with_max_steps(30);
    let grid = BinGrid::new(bench.die.outline(), req.config.bin_size);
    let initial_max =
        DensityMap::from_placement(&bench.netlist, &bench.placement, grid.clone()).max_density();
    assert!(
        initial_max > req.config.d_max,
        "workload must start overfull (got {initial_max})"
    );

    let router = ShardRouter::in_process(ShardRouterConfig {
        shards: 4,
        halo_bins: 2,
        max_halo_rounds: 12,
        ..ShardRouterConfig::default()
    });
    let reply = router.route(&req);

    assert_eq!(reply.shards, 4);
    assert!(
        reply.halo_exchanges >= 2,
        "step cap must force multiple halo exchanges: {}",
        reply.halo_exchanges
    );
    for o in &reply.outcomes {
        assert!(o.error.is_none(), "shard {} failed: {:?}", o.shard, o.error);
    }
    // The maximum principle across the stitch: the measured global max
    // bin density never rises at any accepted halo-exchange round...
    let trace = &reply.max_density_trace;
    assert!(trace.len() >= 2, "at least one accepted round: {trace:?}");
    for w in trace.windows(2) {
        assert!(
            w[1] <= w[0],
            "max density rose across a halo exchange: {trace:?}"
        );
    }
    assert_eq!(trace[0], initial_max);
    // ...and the final placement resolves the hot spot to at most d_max.
    let final_placement = {
        let mut p = bench.placement.clone();
        for (c, &pos) in bench
            .netlist
            .cell_ids()
            .zip(reply.response.positions.iter())
        {
            p.set(c, pos);
        }
        p
    };
    let final_max =
        DensityMap::from_placement(&bench.netlist, &final_placement, grid).max_density();
    assert_eq!(final_max, *trace.last().unwrap());
    assert!(
        final_max <= req.config.d_max,
        "K=4 run must reduce max bin density to <= d_max: {final_max} > {}",
        req.config.d_max
    );
    // Telemetry merged from all four shards.
    assert!(reply.kernels.ftcs.calls > 0);
    assert!(reply.shard_service_hist.count >= 4);
}

#[test]
fn dead_shard_degrades_to_unmigrated_region_not_job_failure() {
    let die = dpm_place::Die::new(288.0, 144.0, 12.0);
    // Two piles, one per half of the die, so both shards own work.
    let mut b = dpm_netlist::NetlistBuilder::new();
    for i in 0..240 {
        b.add_cell(format!("c{i}"), 6.0, 12.0, dpm_netlist::CellKind::Movable);
    }
    let nl = b.build().expect("valid");
    let mut placement = dpm_place::Placement::new(nl.num_cells());
    for (i, c) in nl.cell_ids().enumerate() {
        let (base_x, j) = if i < 120 { (30.0, i) } else { (210.0, i - 120) };
        placement.set(
            c,
            dpm_geom::Point::new(base_x + (j % 8) as f64 * 3.0, 40.0 + (j / 8) as f64 * 3.0),
        );
    }
    let req = JobRequest {
        id: 4,
        deadline_ms: 0,
        progress_stride: 0,
        kind: JobKind::Local,
        design: "degraded".into(),
        config: DiffusionConfig::default()
            .with_bin_size(24.0)
            .with_windows(1, 2),
        netlist: nl.clone(),
        die: die.clone(),
        placement: placement.clone(),
        vol: None,
        trace: None,
    };

    // Shard 0 healthy in-process, shard 1 routed to a dead port.
    let router = ShardRouter::new(
        ShardRouterConfig {
            shards: 2,
            max_halo_rounds: 2,
            ..ShardRouterConfig::default()
        },
        vec![ShardBackend::InProcess, ShardBackend::Tcp(dead_addr())],
    );
    let reply = router.route(&req);

    // The job still answered, with a per-shard error...
    assert_eq!(reply.shards, 2);
    assert!(reply.outcomes[0].error.is_none());
    let err = reply.outcomes[1]
        .error
        .as_ref()
        .expect("dead shard reports an error");
    assert!(err.contains("connect"), "unexpected error: {err}");
    // ...the dead shard's region is returned unmigrated...
    let partition = dpm_diffusion::ShardPartition::new(&die, req.config.bin_size, 2, 2);
    let owners = partition.assign_owners(&nl, &placement);
    let mut dead_cells = 0usize;
    for (i, c) in nl.cell_ids().enumerate() {
        if owners[i] == 1 {
            dead_cells += 1;
            assert_eq!(
                reply.response.positions[c.index()],
                placement.get(c),
                "cell {c} in the dead shard moved"
            );
        }
    }
    assert!(
        dead_cells > 0,
        "shard 1 must own cells for this test to mean anything"
    );
    // ...while the healthy shard still migrated its hot spot.
    assert!(reply.outcomes[0].steps > 0, "healthy shard did no work");
    assert!(reply.response.total_movement > 0.0);
}

#[test]
fn killed_backend_fails_over_to_warm_spare_with_no_unmigrated_region() {
    // The same two-pile workload as the degradation test, but the router
    // has a warm spare: instead of leaving the dead backend's region
    // unmigrated, the shard retries on the spare within the round and
    // the final placement is bit-identical to an all-healthy run.
    let die = dpm_place::Die::new(288.0, 144.0, 12.0);
    let mut b = dpm_netlist::NetlistBuilder::new();
    for i in 0..240 {
        b.add_cell(format!("c{i}"), 6.0, 12.0, dpm_netlist::CellKind::Movable);
    }
    let nl = b.build().expect("valid");
    let mut placement = dpm_place::Placement::new(nl.num_cells());
    for (i, c) in nl.cell_ids().enumerate() {
        let (base_x, j) = if i < 120 { (30.0, i) } else { (210.0, i - 120) };
        placement.set(
            c,
            dpm_geom::Point::new(base_x + (j % 8) as f64 * 3.0, 40.0 + (j / 8) as f64 * 3.0),
        );
    }
    let req = JobRequest {
        id: 6,
        deadline_ms: 0,
        progress_stride: 0,
        kind: JobKind::Local,
        design: "failover".into(),
        config: DiffusionConfig::default()
            .with_bin_size(24.0)
            .with_windows(1, 2),
        netlist: nl.clone(),
        die: die.clone(),
        placement: placement.clone(),
        vol: None,
        trace: None,
    };
    let cfg = ShardRouterConfig {
        shards: 2,
        max_halo_rounds: 2,
        ..ShardRouterConfig::default()
    };

    // Reference: both shards healthy, in-process.
    let healthy = ShardRouter::in_process(cfg.clone()).route(&req);
    for o in &healthy.outcomes {
        assert!(o.error.is_none());
    }

    // Shard 1's assigned backend is dead; one healthy TCP spare.
    let spare = Server::start("127.0.0.1:0", ServeConfig::default()).expect("spare starts");
    let spare_addr = spare.local_addr();
    let dead = dead_addr();
    let router = ShardRouter::with_spares(
        cfg,
        vec![ShardBackend::InProcess, ShardBackend::Tcp(dead)],
        vec![ShardBackend::Tcp(spare_addr)],
    );
    let reply = router.route(&req);
    spare.shutdown();

    // Every shard finished error-free: the spare absorbed the failure.
    assert_eq!(reply.shards, 2);
    for o in &reply.outcomes {
        assert!(
            o.error.is_none(),
            "shard {} still failed despite the spare: {:?}",
            o.shard,
            o.error
        );
    }
    // The replacement is reported, and sticks for later rounds (the
    // spare is consumed exactly once, not once per round).
    assert_eq!(reply.failovers.len(), 1, "{:?}", reply.failovers);
    assert_eq!(reply.failovers[0].shard, 1);
    assert_eq!(reply.failovers[0].from, ShardBackend::Tcp(dead));
    assert_eq!(reply.failovers[0].to, ShardBackend::Tcp(spare_addr));
    // No unmigrated region: the result is bit-identical to the healthy
    // run (the wire is bit-exact, so which backend ran shard 1 cannot
    // matter), and in particular shard 1's pile actually moved.
    assert_eq!(
        reply.response.positions, healthy.response.positions,
        "failover run must be bit-identical to the all-healthy run"
    );
    assert!(reply.outcomes[1].steps > 0, "spare-run shard did no work");
    assert!(healthy.failovers.is_empty());
}

#[test]
fn router_reports_progress_frames_from_streamed_tcp_shards() {
    let bench = hot_bench(200, 53);
    let mut req = request(&bench, 5);
    req.progress_stride = 4;

    let server_a = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server a");
    let server_b = Server::start("127.0.0.1:0", ServeConfig::default()).expect("server b");
    let router = ShardRouter::new(
        ShardRouterConfig {
            shards: 2,
            max_halo_rounds: 3,
            ..ShardRouterConfig::default()
        },
        vec![
            ShardBackend::Tcp(server_a.local_addr()),
            ShardBackend::Tcp(server_b.local_addr()),
        ],
    );
    let reply = router.route(&req);
    server_a.shutdown();
    server_b.shutdown();

    for o in &reply.outcomes {
        assert!(o.error.is_none(), "shard {} failed: {:?}", o.shard, o.error);
    }
    assert!(
        reply.progress_frames > 0,
        "streamed shard requests must surface progress frames"
    );
    // TCP backends contribute kernel timers through their stats
    // endpoint.
    assert!(reply.kernels.ftcs.calls > 0);
}
