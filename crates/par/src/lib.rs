#![warn(missing_docs)]

//! Deterministic parallel-for runtime for the diffusion hot loops.
//!
//! The paper's kernels — FTCS density step (Eq. 4), velocity field
//! (Eq. 5), cell advection (Eq. 7), density splatting — are all
//! embarrassingly parallel over bins or cells. This crate is the one
//! threading idiom the workspace uses for them: a scoped worker pool
//! ([`ThreadPool`]) plus fixed-chunk helpers ([`parallel_for_chunks`],
//! [`parallel_map_reduce`]) designed so that **results are bit-identical
//! at every thread count**.
//!
//! # Determinism contract
//!
//! Floating-point addition is not associative, so naive parallel
//! reductions give different results run-to-run. The helpers here avoid
//! that by construction:
//!
//! 1. work is split into **fixed chunks** whose boundaries depend only on
//!    the problem size (never on the thread count or scheduling);
//! 2. each chunk is computed sequentially, by exactly one worker;
//! 3. partial results are combined by a **fixed-shape tree reduction**
//!    ([`tree_reduce`]) in chunk order.
//!
//! A pool with 1 thread executes the *same* chunked computation inline,
//! so `ThreadPool::new(1)` and `ThreadPool::new(8)` produce bit-identical
//! `f64` outputs — the property the diffusion engine's regression tests
//! assert.
//!
//! # Examples
//!
//! ```
//! use dpm_par::{parallel_map_reduce, ThreadPool};
//!
//! let data: Vec<f64> = (0..10_000).map(|i| i as f64 * 0.1).collect();
//! let sum_at = |threads: usize| {
//!     let pool = ThreadPool::new(threads);
//!     parallel_map_reduce(
//!         &pool,
//!         data.len(),
//!         1024,
//!         |r| data[r].iter().sum::<f64>(),
//!         |a, b| a + b,
//!     )
//!     .unwrap_or(0.0)
//! };
//! // Bit-identical across thread counts.
//! assert_eq!(sum_at(1).to_bits(), sum_at(4).to_bits());
//! ```

use std::ops::Range;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Target working-set size of one cache-blocked kernel chunk, in bytes.
///
/// Sized to sit comfortably inside a per-core L2 slice: big enough that a
/// chunk amortizes pool dispatch, small enough that a chunk's input
/// lines, output lines and one-line halo stay cache-resident while the
/// stencil sweeps them.
pub const CACHE_BLOCK_BYTES: usize = 256 * 1024;

/// Lines per cache-blocked chunk for x-major line kernels.
///
/// `line_bytes` is the byte length of one grid line (`nx · elem_size`).
/// The working set of a stencil chunk is roughly three buffers' worth of
/// its lines (input, output, halo), so the chunk gets
/// `target_bytes / (3 · line_bytes)` lines, clamped to `[4, 64]` — the
/// floor keeps tiny grids from degenerating into per-line dispatch, the
/// ceiling keeps huge lines from serializing the whole grid into one
/// chunk.
///
/// The result depends only on the two arguments — never on the thread
/// count — so chunk boundaries stay deterministic and every result
/// remains bit-identical at any parallelism (chunks partition disjoint
/// output lines; per-element arithmetic does not depend on the split).
///
/// # Examples
///
/// ```
/// use dpm_par::{blocked_lines, CACHE_BLOCK_BYTES};
/// // 256-wide f64 lines: 2 KiB each → 42 lines per block.
/// assert_eq!(blocked_lines(256 * 8, CACHE_BLOCK_BYTES), 42);
/// // Tiny lines clamp up to 64, huge lines clamp down to 4.
/// assert_eq!(blocked_lines(8, CACHE_BLOCK_BYTES), 64);
/// assert_eq!(blocked_lines(1 << 20, CACHE_BLOCK_BYTES), 4);
/// ```
pub fn blocked_lines(line_bytes: usize, target_bytes: usize) -> usize {
    (target_bytes / (3 * line_bytes.max(1))).clamp(4, 64)
}

/// A reusable scoped worker pool with a fixed thread count.
///
/// The pool is a plain value (cheap to clone and store in configs or
/// engines); threads are spawned scoped per call, so no worker outlives a
/// borrow and no `'static` bounds infect the closures. Workers pull chunk
/// indices from a shared atomic counter — scheduling is dynamic, but
/// because every chunk is computed independently and combined in fixed
/// order, scheduling never affects results.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadPool {
    threads: usize,
}

impl Default for ThreadPool {
    fn default() -> Self {
        Self::single()
    }
}

impl ThreadPool {
    /// Creates a pool that uses up to `threads` workers (clamped to ≥ 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
        }
    }

    /// The serial pool: everything runs inline on the calling thread.
    pub fn single() -> Self {
        Self::new(1)
    }

    /// A pool sized to the machine's available parallelism (1 if that
    /// cannot be determined).
    pub fn max_hardware() -> Self {
        Self::new(
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
        )
    }

    /// Number of worker threads this pool may use.
    #[inline]
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Executes `task(0), task(1), …, task(n_tasks - 1)`, each exactly
    /// once, distributed over the pool's workers.
    ///
    /// With one worker (or one task) everything runs inline in index
    /// order. Panics in tasks propagate to the caller.
    pub fn run_tasks<F>(&self, n_tasks: usize, task: F)
    where
        F: Fn(usize) + Sync,
    {
        let workers = self.threads.min(n_tasks);
        if workers <= 1 {
            for i in 0..n_tasks {
                task(i);
            }
            return;
        }
        let next = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n_tasks {
                        break;
                    }
                    task(i);
                });
            }
        });
    }

    /// Consumes `items`, calling `f(index, item)` for each, distributed
    /// over the pool.
    ///
    /// The index is the item's position in the input vector, so callers
    /// can derive fixed chunk offsets from it.
    pub fn for_each_owned<I, F>(&self, items: Vec<I>, f: F)
    where
        I: Send,
        F: Fn(usize, I) + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            for (i, item) in items.into_iter().enumerate() {
                f(i, item);
            }
            return;
        }
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        self.run_tasks(slots.len(), |i| {
            let item = slots[i]
                .lock()
                .expect("task slot poisoned")
                .take()
                .expect("task executed twice");
            f(i, item);
        });
    }

    /// Maps every item through `f`, returning results **in input order**
    /// regardless of scheduling.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        if self.threads <= 1 || items.len() <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }
        let out: Vec<Mutex<Option<T>>> = (0..items.len()).map(|_| Mutex::new(None)).collect();
        self.for_each_owned(items, |i, item| {
            *out[i].lock().expect("result slot poisoned") = Some(f(i, item));
        });
        out.into_iter()
            .map(|m| {
                m.into_inner()
                    .expect("result slot poisoned")
                    .expect("task produced no result")
            })
            .collect()
    }
}

/// The fixed chunking of `len` elements into chunks of `chunk_len`
/// (the last chunk may be short).
///
/// Chunk boundaries depend only on `(len, chunk_len)` — never on thread
/// count — which is what makes every parallel result reproducible.
///
/// # Panics
///
/// Panics if `chunk_len` is zero.
///
/// # Examples
///
/// ```
/// use dpm_par::chunk_ranges;
/// assert_eq!(chunk_ranges(10, 4), vec![0..4, 4..8, 8..10]);
/// assert!(chunk_ranges(0, 4).is_empty());
/// ```
pub fn chunk_ranges(len: usize, chunk_len: usize) -> Vec<Range<usize>> {
    assert!(chunk_len > 0, "chunk length must be positive");
    (0..len.div_ceil(chunk_len))
        .map(|i| i * chunk_len..((i + 1) * chunk_len).min(len))
        .collect()
}

/// Runs `f(chunk_index, global_range, chunk)` over fixed chunks of a
/// mutable slice, in parallel.
///
/// Each chunk is a disjoint `&mut` view, so workers never alias; writes
/// are race-free by construction. `global_range` is the element range the
/// chunk covers within `data`.
///
/// # Examples
///
/// ```
/// use dpm_par::{parallel_for_chunks, ThreadPool};
///
/// let pool = ThreadPool::new(4);
/// let mut v = vec![0usize; 1000];
/// parallel_for_chunks(&pool, &mut v, 128, |_, range, chunk| {
///     for (off, x) in chunk.iter_mut().enumerate() {
///         *x = range.start + off;
///     }
/// });
/// assert!(v.iter().enumerate().all(|(i, &x)| i == x));
/// ```
pub fn parallel_for_chunks<T, F>(pool: &ThreadPool, data: &mut [T], chunk_len: usize, f: F)
where
    T: Send,
    F: Fn(usize, Range<usize>, &mut [T]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    let len = data.len();
    let chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_len).enumerate().collect();
    pool.for_each_owned(chunks, |_, (i, chunk)| {
        let start = i * chunk_len;
        let range = start..(start + chunk.len()).min(len);
        f(i, range, chunk);
    });
}

/// Like [`parallel_for_chunks`] but over two equal-length slices chunked
/// identically — the shape of the velocity kernel (writes `vx` and `vy`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn parallel_for_chunks2<T, U, F>(
    pool: &ThreadPool,
    a: &mut [T],
    b: &mut [U],
    chunk_len: usize,
    f: F,
) where
    T: Send,
    U: Send,
    F: Fn(usize, Range<usize>, &mut [T], &mut [U]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    assert_eq!(a.len(), b.len(), "slices must chunk identically");
    let len = a.len();
    type ChunkPairs<'s, T, U> = Vec<(usize, (&'s mut [T], &'s mut [U]))>;
    let chunks: ChunkPairs<'_, T, U> = a
        .chunks_mut(chunk_len)
        .zip(b.chunks_mut(chunk_len))
        .enumerate()
        .collect();
    pool.for_each_owned(chunks, |_, (i, (ca, cb))| {
        let start = i * chunk_len;
        let range = start..(start + ca.len()).min(len);
        f(i, range, ca, cb);
    });
}

/// Like [`parallel_for_chunks`] but over three equal-length slices chunked
/// identically — the shape of the volumetric velocity kernel (writes `vx`,
/// `vy` and `vz`).
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn parallel_for_chunks3<T, U, V, F>(
    pool: &ThreadPool,
    a: &mut [T],
    b: &mut [U],
    c: &mut [V],
    chunk_len: usize,
    f: F,
) where
    T: Send,
    U: Send,
    V: Send,
    F: Fn(usize, Range<usize>, &mut [T], &mut [U], &mut [V]) + Sync,
{
    assert!(chunk_len > 0, "chunk length must be positive");
    assert_eq!(a.len(), b.len(), "slices must chunk identically");
    assert_eq!(a.len(), c.len(), "slices must chunk identically");
    let len = a.len();
    type ChunkTriples<'s, T, U, V> = Vec<(usize, ((&'s mut [T], &'s mut [U]), &'s mut [V]))>;
    let chunks: ChunkTriples<'_, T, U, V> = a
        .chunks_mut(chunk_len)
        .zip(b.chunks_mut(chunk_len))
        .zip(c.chunks_mut(chunk_len))
        .enumerate()
        .collect();
    pool.for_each_owned(chunks, |_, (i, ((ca, cb), cc))| {
        let start = i * chunk_len;
        let range = start..(start + ca.len()).min(len);
        f(i, range, ca, cb, cc);
    });
}

/// Maps fixed chunks of `0..len` through `map` in parallel and combines
/// the per-chunk partials with a fixed-shape [`tree_reduce`].
///
/// Returns `None` when `len == 0`. The result is bit-identical at every
/// thread count because both the chunk boundaries and the reduction tree
/// depend only on `(len, chunk_len)`.
///
/// # Examples
///
/// ```
/// use dpm_par::{parallel_map_reduce, ThreadPool};
///
/// let pool = ThreadPool::new(2);
/// let total = parallel_map_reduce(&pool, 100, 7, |r| r.len(), |a, b| a + b);
/// assert_eq!(total, Some(100));
/// ```
pub fn parallel_map_reduce<T, M, R>(
    pool: &ThreadPool,
    len: usize,
    chunk_len: usize,
    map: M,
    reduce: R,
) -> Option<T>
where
    T: Send,
    M: Fn(Range<usize>) -> T + Sync,
    R: Fn(T, T) -> T,
{
    let partials = pool.map(chunk_ranges(len, chunk_len), |_, r| map(r));
    tree_reduce(partials, reduce)
}

/// Combines `items` pairwise — `(0,1), (2,3), …` — level by level until
/// one value remains. The tree's shape depends only on `items.len()`, so
/// the combination order (and therefore any floating-point result) is
/// reproducible.
///
/// # Examples
///
/// ```
/// use dpm_par::tree_reduce;
/// assert_eq!(tree_reduce(vec![1, 2, 3, 4, 5], |a, b| a + b), Some(15));
/// assert_eq!(tree_reduce(Vec::<i32>::new(), |a, b| a + b), None);
/// ```
pub fn tree_reduce<T>(mut items: Vec<T>, mut reduce: impl FnMut(T, T) -> T) -> Option<T> {
    while items.len() > 1 {
        let mut next = Vec::with_capacity(items.len().div_ceil(2));
        let mut it = items.into_iter();
        while let Some(a) = it.next() {
            next.push(match it.next() {
                Some(b) => reduce(a, b),
                None => a,
            });
        }
        items = next;
    }
    items.pop()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn run_tasks_executes_each_exactly_once() {
        for threads in [1, 2, 4, 8] {
            let pool = ThreadPool::new(threads);
            let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
            pool.run_tasks(100, |i| {
                hits[i].fetch_add(1, Ordering::Relaxed);
            });
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
        }
    }

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 3, 8] {
            let pool = ThreadPool::new(threads);
            let out = pool.map((0..257).collect(), |i, x: usize| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, (0..257).map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn chunk_boundaries_are_thread_independent() {
        // chunk_ranges takes no pool at all; pin the exact split.
        assert_eq!(chunk_ranges(10, 3), vec![0..3, 3..6, 6..9, 9..10]);
        assert_eq!(chunk_ranges(9, 3), vec![0..3, 3..6, 6..9]);
        assert_eq!(chunk_ranges(1, 100), vec![0..1]);
    }

    #[test]
    fn float_sum_bit_identical_across_thread_counts() {
        // A sum that is NOT associative-friendly: wildly mixed magnitudes.
        let data: Vec<f64> = (0..40_000)
            .map(|i| {
                let m = (i * 2654435761usize) % 1000;
                (m as f64 - 500.0) * 10f64.powi((m % 17) as i32 - 8)
            })
            .collect();
        let sum = |threads: usize| {
            let pool = ThreadPool::new(threads);
            parallel_map_reduce(
                &pool,
                data.len(),
                1024,
                |r| data[r].iter().sum::<f64>(),
                |a, b| a + b,
            )
            .expect("non-empty")
        };
        let reference = sum(1);
        for threads in [2, 4, 8] {
            assert_eq!(
                reference.to_bits(),
                sum(threads).to_bits(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn for_chunks_covers_every_element_disjointly() {
        for threads in [1, 4] {
            let pool = ThreadPool::new(threads);
            let mut v = vec![0u32; 1013];
            parallel_for_chunks(&pool, &mut v, 97, |_, range, chunk| {
                assert_eq!(range.len(), chunk.len());
                for x in chunk.iter_mut() {
                    *x += 1;
                }
            });
            assert!(v.iter().all(|&x| x == 1), "some element missed or doubled");
        }
    }

    #[test]
    fn for_chunks2_zips_consistently() {
        let pool = ThreadPool::new(4);
        let mut a = vec![0usize; 500];
        let mut b = vec![0usize; 500];
        parallel_for_chunks2(&pool, &mut a, &mut b, 64, |ci, range, ca, cb| {
            for (off, (x, y)) in ca.iter_mut().zip(cb.iter_mut()).enumerate() {
                *x = range.start + off;
                *y = ci;
            }
        });
        assert!(a.iter().enumerate().all(|(i, &x)| i == x));
        assert!(b.iter().enumerate().all(|(i, &c)| c == i / 64));
    }

    #[test]
    fn for_chunks3_zips_consistently() {
        let pool = ThreadPool::new(4);
        let mut a = vec![0usize; 500];
        let mut b = vec![0usize; 500];
        let mut c = vec![0usize; 500];
        parallel_for_chunks3(
            &pool,
            &mut a,
            &mut b,
            &mut c,
            64,
            |ci, range, ca, cb, cc| {
                for (off, ((x, y), z)) in ca
                    .iter_mut()
                    .zip(cb.iter_mut())
                    .zip(cc.iter_mut())
                    .enumerate()
                {
                    *x = range.start + off;
                    *y = ci;
                    *z = range.len();
                }
            },
        );
        assert!(a.iter().enumerate().all(|(i, &x)| i == x));
        assert!(b.iter().enumerate().all(|(i, &x)| x == i / 64));
        assert!(c.iter().take(448).all(|&x| x == 64));
        assert!(c.iter().skip(448).all(|&x| x == 500 - 448));
    }

    #[test]
    fn tree_reduce_shapes() {
        assert_eq!(tree_reduce(vec![1], |a, b| a + b), Some(1));
        assert_eq!(tree_reduce(vec![1, 2], |a, b| a + b), Some(3));
        // Shape for 3 leaves: (0+1) then (+2).
        let trace = std::cell::RefCell::new(Vec::new());
        let r = tree_reduce(vec!["a".to_string(), "b".into(), "c".into()], |a, b| {
            trace.borrow_mut().push(format!("{a}+{b}"));
            format!("({a}{b})")
        });
        assert_eq!(r.as_deref(), Some("((ab)c)"));
        assert_eq!(*trace.borrow(), vec!["a+b", "(ab)+c"]);
    }

    #[test]
    fn pool_is_reusable_and_cloneable() {
        let pool = ThreadPool::new(4);
        let again = pool.clone();
        let total = AtomicU64::new(0);
        for _ in 0..3 {
            pool.run_tasks(10, |i| {
                total.fetch_add(i as u64, Ordering::Relaxed);
            });
        }
        again.run_tasks(10, |i| {
            total.fetch_add(i as u64, Ordering::Relaxed);
        });
        assert_eq!(total.load(Ordering::Relaxed), 45 * 4);
    }

    #[test]
    #[should_panic(expected = "chunk length must be positive")]
    fn zero_chunk_rejected() {
        let _ = chunk_ranges(10, 0);
    }

    #[test]
    fn blocked_lines_is_clamped_and_monotone() {
        // Thread-independent by construction (no pool argument); pin the
        // clamp band and that wider lines never get more lines per chunk.
        assert_eq!(blocked_lines(0, CACHE_BLOCK_BYTES), 64);
        assert_eq!(blocked_lines(usize::MAX / 4, CACHE_BLOCK_BYTES), 4);
        let mut prev = usize::MAX;
        for nx in [16usize, 64, 256, 1024, 4096] {
            let lines = blocked_lines(nx * 8, CACHE_BLOCK_BYTES);
            assert!((4..=64).contains(&lines), "nx = {nx}: {lines}");
            assert!(lines <= prev, "not monotone at nx = {nx}");
            prev = lines;
        }
        // f32 lines are half the bytes, so never fewer lines per chunk.
        for nx in [64usize, 256, 1024] {
            assert!(
                blocked_lines(nx * 4, CACHE_BLOCK_BYTES)
                    >= blocked_lines(nx * 8, CACHE_BLOCK_BYTES)
            );
        }
    }
}
