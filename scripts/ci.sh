#!/usr/bin/env bash
# Hermetic CI gate: formatting, lints, build and tests, all offline.
#
# The workspace has zero registry dependencies by design — everything
# resolves from path crates — so `--offline` must always succeed. Any
# registry access here is a regression.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy (deny warnings)"
cargo clippy --release --offline --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline --workspace

echo "==> cargo test"
cargo test -q --release --offline --workspace

echo "==> service smoke test (perf_serve --smoke --pipeline 2)"
# Boots a real server on an ephemeral port, replays a deterministic
# open-loop schedule with two requests pipelined per connection, and
# asserts every request was answered and the shutdown drained cleanly
# (the binary exits non-zero otherwise). The schedule includes streamed
# requests, so at least one in-flight progress frame must arrive before
# its response, and the wire-level stats snapshot must agree with the
# server's own counters — both enforced inside the binary; the greps
# below pin the observability fields into the emitted JSON.
smoke_out="$(mktemp)"
cargo run --release --offline -p dpm-bench --bin perf_serve -- "$smoke_out" --smoke --pipeline 2 >/dev/null
grep -q '"bench": "perf_serve"' "$smoke_out"
grep -q '"hardware_threads"' "$smoke_out"
grep -q '"p99_us"' "$smoke_out"
grep -q '"head_of_line"' "$smoke_out"
grep -Eq '"progress_frames": [1-9][0-9]*' "$smoke_out"
rm -f "$smoke_out"

echo "CI green."
