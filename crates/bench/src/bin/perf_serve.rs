//! Open-loop load generator for the `dpm-serve` migration service.
//!
//! Starts a server on an ephemeral port, replays a deterministic
//! arrival schedule (exponential inter-arrivals from `dpm-rng`) from a
//! pool of sender threads, and reports throughput plus p50/p95/p99/max
//! latency, split into queue wait and service time as measured by the
//! server and end-to-end wall time as seen by the client. Latency
//! aggregation uses the fixed-bucket `dpm-obs` histograms — the same
//! instrument the server itself exports over the wire.
//!
//! Open-loop means arrivals do not wait for earlier replies: if the
//! server falls behind, requests pile into its bounded queue and the
//! `Overloaded` rejections are counted rather than hidden — the honest
//! way to measure a service under offered load.
//!
//! `--pipeline N` keeps up to N requests outstanding per connection
//! (send without waiting, matching replies in submission order). The
//! reported `head_of_line` histogram is the per-request difference
//! between client-observed end-to-end time and the server-side
//! queue + service time — the cost of waiting behind earlier replies on
//! the same connection plus transport overhead.
//!
//! A slice of the schedule requests streamed progress frames, and the
//! run ends with a wire-level stats probe; the JSON records how many
//! progress frames the clients saw and cross-checks the server's own
//! counter.
//!
//! `--tenants N` switches to the **multi-tenant control-plane mode**:
//! instead of a bare server it boots a `dpm-ctl` [`CtlServer`] in
//! sharded mode over a health-checked backend registry seeded with one
//! dead primary and a warm spare, opens ≥1000 idle connections to
//! exercise the poll-based front-end, and drives N tenant threads
//! through an ECO replay loop — one baseline upload each, then
//! delta-only requests with a cold full resend mixed in every third
//! round. The JSON gains `tenants`, `idle_connections`, the cache and
//! failover counters, and per-tenant p50/p95/p99 latency.
//!
//! Usage: `cargo run --release --bin perf_serve [-- <output-path>]
//! [--smoke] [--pipeline N] [--tenants N]`
//!
//! `--smoke` runs a seconds-scale schedule (used by `scripts/ci.sh`) and
//! applies the same acceptance checks: every request answered, clean
//! shutdown, valid JSON written.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpm_ctl::{BackendRegistry, CtlConfig, CtlServer, ExecMode, TenantSpec};
use dpm_diffusion::DiffusionConfig;
use dpm_gen::{Benchmark, CircuitSpec, EcoSpec, InflationSpec};
use dpm_obs::{Histogram, TraceExporter};
use dpm_rng::Rng;
use dpm_serve::wire::{
    design_hash, read_frame, write_frame, FrameKind, JobKind, JobRequest, PayloadEncoding, Reply,
    DEFAULT_MAX_FRAME_LEN,
};
use dpm_serve::{DeltaJobRequest, EcoDelta, ServeClient, ServeConfig, Server, ShardBackend};

struct LoadSpec {
    /// Concurrent sender threads (each with its own connection).
    senders: usize,
    /// Total requests in the schedule.
    requests: usize,
    /// Mean offered arrival rate, requests per second.
    rate_per_sec: f64,
    /// Cells per circuit preset (requests cycle through these).
    circuit_cells: &'static [usize],
    /// Server worker threads.
    workers: usize,
    /// Server queue capacity.
    queue_capacity: usize,
}

const FULL: LoadSpec = LoadSpec {
    senders: 4,
    requests: 48,
    rate_per_sec: 24.0,
    circuit_cells: &[200, 400],
    workers: 2,
    queue_capacity: 16,
};

const SMOKE: LoadSpec = LoadSpec {
    senders: 2,
    requests: 8,
    rate_per_sec: 16.0,
    circuit_cells: &[120],
    workers: 2,
    queue_capacity: 8,
};

/// Every `STREAM_EVERY`-th request asks for progress frames at this
/// stride, on a workload dense enough to run real diffusion steps.
const STREAM_EVERY: usize = 4;
const STREAM_STRIDE: u32 = 4;

/// One completed request as seen by its sender.
struct Observation {
    outcome: &'static str,
    queue_ns: u64,
    service_ns: u64,
    e2e_ns: u64,
}

fn bench_for(cells: usize, seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("serve", cells, seed).generate();
    b.inflate(&InflationSpec::distributed(0.12, seed ^ 0x51EE));
    b
}

/// A denser pile for the streamed requests: guarantees the job runs a
/// non-trivial number of steps so progress frames actually flow.
fn busy_bench_for(cells: usize, seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("serve", cells, seed).generate();
    b.inflate(&InflationSpec::centered(0.3, 0.25, seed ^ 0x51EE));
    b
}

/// Builds the whole request set up front so generation cost never
/// pollutes the measured window.
fn build_requests(spec: &LoadSpec) -> Vec<JobRequest> {
    (0..spec.requests)
        .map(|i| {
            let cells = spec.circuit_cells[i % spec.circuit_cells.len()];
            let streamed = i % STREAM_EVERY == 0;
            let b = if streamed {
                busy_bench_for(cells, 0xC0FFEE + i as u64)
            } else {
                bench_for(cells, 0xC0FFEE + i as u64)
            };
            JobRequest {
                id: i as u64 + 1,
                deadline_ms: 0,
                progress_stride: if streamed { STREAM_STRIDE } else { 0 },
                kind: if i % 2 == 0 {
                    JobKind::Local
                } else {
                    JobKind::Global
                },
                design: format!("serve_{cells}c_{i}"),
                config: DiffusionConfig {
                    d_max: if streamed { 0.8 } else { 1.0 },
                    ..DiffusionConfig::default()
                },
                netlist: b.netlist,
                die: b.die,
                placement: b.placement,
                vol: None,
                trace: None,
            }
        })
        .collect()
}

/// Deterministic exponential inter-arrival schedule: absolute offsets
/// from the load start, one per request.
fn arrival_schedule(spec: &LoadSpec, seed: u64) -> Vec<Duration> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..spec.requests)
        .map(|_| {
            // Inverse-CDF sample; (0,1] keeps ln() finite.
            let u = 1.0 - rng.random_f64();
            t += -u.ln() / spec.rate_per_sec;
            Duration::from_secs_f64(t)
        })
        .collect()
}

fn latency_json(name: &str, ns: &[u64]) -> String {
    let h = Histogram::new(&Histogram::latency_bounds());
    for &v in ns {
        h.record(v);
    }
    let s = h.snapshot();
    format!(
        "\"{name}\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}, \"mean_us\": {:.1}, \"count\": {}}}",
        s.percentile(0.50) as f64 / 1e3,
        s.percentile(0.95) as f64 / 1e3,
        s.percentile(0.99) as f64 / 1e3,
        s.max as f64 / 1e3,
        s.mean() / 1e3,
        s.count,
    )
}

/// Receives the oldest outstanding reply, counting skipped progress
/// frames, and records the observation.
fn recv_one(
    client: &mut ServeClient,
    inflight: &mut VecDeque<(u64, Instant)>,
    obs: &mut Vec<Observation>,
    progress_seen: &mut u64,
) {
    let reply = client
        .recv_reply_with(|_| *progress_seen += 1)
        .expect("transport stays healthy");
    let (id, sent) = inflight.pop_front().expect("reply without a request");
    let e2e_ns = sent.elapsed().as_nanos() as u64;
    obs.push(match reply {
        Reply::Ok(resp) => {
            assert_eq!(resp.id, id, "pipelined replies out of order");
            Observation {
                outcome: "ok",
                queue_ns: resp.queue_ns,
                service_ns: resp.service_ns,
                e2e_ns,
            }
        }
        Reply::Rejected(e) => Observation {
            outcome: e.code.as_str(),
            queue_ns: 0,
            service_ns: 0,
            e2e_ns,
        },
    });
}

// ---------------------------------------------------------------------------
// Multi-tenant control-plane mode (--tenants N).
// ---------------------------------------------------------------------------

/// Shape of one multi-tenant run.
struct TenantLoad {
    /// ECO rounds per tenant. Rounds with `round % 3 == 2` send a cold
    /// full request; the rest ship only the delta.
    rounds: usize,
    /// Cells in each tenant's baseline design.
    cells: usize,
    /// Idle connections held open across the run.
    idle_connections: usize,
}

const TENANT_FULL: TenantLoad = TenantLoad {
    rounds: 12,
    cells: 220,
    idle_connections: 1500,
};

const TENANT_SMOKE: TenantLoad = TenantLoad {
    rounds: 6,
    cells: 160,
    idle_connections: 1000,
};

/// What one tenant thread observed.
struct TenantOutcome {
    name: String,
    weight: u32,
    ok: usize,
    deltas_sent: usize,
    fulls_sent: usize,
    e2e_ns: Vec<u64>,
}

fn tenant_baseline(cells: usize, seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("ctl_tenant", cells, seed).generate();
    b.inflate(&InflationSpec::centered(0.25, 0.25, seed ^ 0x7E4A));
    b
}

/// One tenant's ECO replay loop: upload-once (implicitly, via the
/// `NeedDesign` handshake on the first delta), then delta-only
/// requests, with a cold full resend every third round so the mix
/// exercises both paths.
fn tenant_loop(
    addr: std::net::SocketAddr,
    name: String,
    weight: u32,
    load: &TenantLoad,
    seed: u64,
) -> TenantOutcome {
    let base = tenant_baseline(load.cells, seed);
    let baseline_hash = design_hash(&base.netlist, &base.die, &base.placement);
    let mut client = ServeClient::connect(addr).expect("tenant connects");
    let mut out = TenantOutcome {
        name: name.clone(),
        weight,
        ok: 0,
        deltas_sent: 0,
        fulls_sent: 0,
        e2e_ns: Vec::with_capacity(load.rounds),
    };
    for round in 0..load.rounds {
        let id = seed * 1_000 + round as u64 + 1;
        let kind = if round % 2 == 0 {
            JobKind::Local
        } else {
            JobKind::Global
        };
        let t0 = Instant::now();
        let reply = if round % 3 == 2 {
            // Cold path: the full design crosses the wire.
            out.fulls_sent += 1;
            let mut eco = tenant_baseline(load.cells, seed);
            eco.apply_eco(&EcoSpec::default(), seed ^ round as u64);
            let req = JobRequest {
                id,
                deadline_ms: 0,
                progress_stride: 0,
                kind,
                design: format!("{name}_full_{round}"),
                config: DiffusionConfig::default(),
                netlist: eco.netlist,
                die: eco.die,
                placement: eco.placement,
                vol: None,
                trace: None,
            };
            client
                .send_request(&req, PayloadEncoding::Binary)
                .expect("send full request");
            client.recv_reply().expect("full reply")
        } else {
            // Warm path: regenerate the deterministic baseline, apply
            // this round's ECO, and ship only the diff.
            out.deltas_sent += 1;
            let mut eco = tenant_baseline(load.cells, seed);
            eco.apply_eco(&EcoSpec::default(), seed ^ round as u64);
            let delta =
                EcoDelta::diff(&base.netlist, &base.placement, &eco.netlist, &eco.placement)
                    .expect("eco keeps the baseline prefix");
            let dreq = DeltaJobRequest {
                id,
                deadline_ms: 0,
                progress_stride: 0,
                kind,
                design: format!("{name}_eco_{round}"),
                tenant: name.clone(),
                config: DiffusionConfig::default(),
                baseline: baseline_hash,
                delta,
                trace: None,
            };
            client
                .request_delta(&dreq, (&base.netlist, &base.die, &base.placement), |_| {})
                .expect("delta reply")
        };
        out.e2e_ns.push(t0.elapsed().as_nanos() as u64);
        match reply {
            Reply::Ok(resp) => {
                assert_eq!(resp.id, id, "reply out of order");
                out.ok += 1;
            }
            Reply::Rejected(e) => panic!(
                "tenant {name} round {round} rejected: {} {}",
                e.code.as_str(),
                e.message
            ),
        }
    }
    out
}

/// An address that refuses connections: bind, snapshot the port, drop.
fn dead_addr() -> std::net::SocketAddr {
    let l = TcpListener::bind("127.0.0.1:0").expect("bind probe listener");
    l.local_addr().expect("probe addr")
}

/// Sends a `StatsRequest` on a raw idle connection and checks a stats
/// frame comes back — proof the connection survived the load multiplex.
fn probe_idle(conn: &mut TcpStream) -> bool {
    if write_frame(conn, FrameKind::StatsRequest, &[]).is_err() {
        return false;
    }
    matches!(
        read_frame(conn, DEFAULT_MAX_FRAME_LEN),
        Ok(Some(frame)) if frame.kind == FrameKind::Stats
    )
}

/// Runs one traced request through the control plane and writes its
/// span tree as Chrome `trace_event` JSONL — the artifact a developer
/// drops into Perfetto to see where a fleet request spent its time.
fn export_trace_sample(addr: std::net::SocketAddr, load: &TenantLoad, path: &str) {
    let mut client = ServeClient::connect(addr)
        .expect("trace client connects")
        .with_tracing(0x7E57_7ACE)
        .with_tenant("tenant0");
    let b = tenant_baseline(load.cells, 0x7E57);
    let mut req = JobRequest {
        id: 999_001,
        deadline_ms: 0,
        progress_stride: 0,
        kind: JobKind::Local,
        design: "trace_sample".into(),
        config: DiffusionConfig::default(),
        netlist: b.netlist,
        die: b.die,
        placement: b.placement,
        vol: None,
        trace: None,
    };
    client.begin_trace(&mut req).expect("tracing armed");
    let reply = client
        .request(&req, PayloadEncoding::Binary)
        .expect("traced sample transport");
    assert!(matches!(reply, Reply::Ok(_)), "traced sample rejected");
    let spans = client.take_trace_spans();
    assert!(!spans.is_empty(), "traced sample produced no spans");
    let mut exporter = TraceExporter::new();
    for s in &spans {
        if s.parent_id == 0 {
            exporter.add_with_args(s, 1, 1, &[("tenant", "tenant0")]);
        } else {
            exporter.add(s, 1, 1);
        }
    }
    std::fs::write(path, exporter.to_jsonl()).expect("write trace jsonl");
    eprintln!("  wrote trace sample ({} spans) to {path}", spans.len());
}

fn run_multi_tenant(out_path: &str, smoke: bool, tenants: usize, trace_out: Option<&str>) {
    let load = if smoke { &TENANT_SMOKE } else { &TENANT_FULL };
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    eprintln!(
        "perf_serve multi-tenant{}: {tenants} tenants x {} rounds, {} idle connections, {cores} hardware thread(s)",
        if smoke { " (smoke)" } else { "" },
        load.rounds,
        load.idle_connections,
    );

    // Backend fleet: two live shard servers and one dead address. The
    // registry starts with the dead one as a primary, so the very first
    // job forces a permanent warm-spare replacement.
    let live_a = Server::start("127.0.0.1:0", ServeConfig::default()).expect("backend a");
    let live_b = Server::start("127.0.0.1:0", ServeConfig::default()).expect("backend b");
    let dead = dead_addr();
    let registry = BackendRegistry::new(
        vec![
            ShardBackend::Tcp(live_a.local_addr()),
            ShardBackend::Tcp(dead),
        ],
        vec![ShardBackend::Tcp(live_b.local_addr())],
    );

    let specs: Vec<TenantSpec> = (0..tenants)
        .map(|i| TenantSpec::new(format!("tenant{i}"), (i % 3) as u32 + 1, 64))
        .collect();
    let weights: Vec<u32> = specs.iter().map(|s| s.weight).collect();
    let ctl = CtlServer::start(CtlConfig {
        workers: 2,
        tenants: specs,
        exec: ExecMode::Sharded {
            shards: 2,
            halo_bins: 2,
            max_halo_rounds: 4,
            registry,
        },
        ..CtlConfig::default()
    })
    .expect("control plane starts");
    let addr = ctl.local_addr();

    // Fill the front-end with idle connections before any load. The
    // accept drain runs once per readiness tick, so pace the connect
    // storm instead of racing the listener backlog.
    let mut idle: Vec<TcpStream> = Vec::with_capacity(load.idle_connections);
    for i in 0..load.idle_connections {
        idle.push(TcpStream::connect(addr).expect("idle connection"));
        if i % 64 == 63 {
            std::thread::sleep(Duration::from_millis(2));
        }
    }

    let t0 = Instant::now();
    let handles: Vec<_> = (0..tenants)
        .map(|i| {
            let name = format!("tenant{i}");
            let weight = weights[i];
            std::thread::spawn(move || tenant_loop(addr, name, weight, load, i as u64 + 1))
        })
        .collect();
    let outcomes: Vec<TenantOutcome> = handles
        .into_iter()
        .map(|h| h.join().expect("tenant thread finishes"))
        .collect();
    let wall = t0.elapsed();

    // The idle pool must still be serviceable after the load: probe the
    // first, middle, and last connections end to end.
    let n = idle.len();
    let mut survivors = 0;
    for idx in [0, n / 2, n - 1] {
        if probe_idle(&mut idle[idx]) {
            survivors += 1;
        }
    }
    assert_eq!(survivors, 3, "idle connections starved by the load");

    let m = ctl.metrics();
    let cache_hits = m.cache_hits.get();
    let delta_requests = m.delta_requests.get();
    let need_design = m.need_design.get();
    let put_designs = m.put_designs.get();
    let failovers = m.failovers.get();
    let replacements = m.replacements.get();
    let served = m.served.get();
    let cache = ctl.cache_stats();
    let reg = ctl
        .registry_snapshot()
        .expect("sharded mode has a registry");

    let total_ok: usize = outcomes.iter().map(|o| o.ok).sum();
    let deltas_sent: usize = outcomes.iter().map(|o| o.deltas_sent).sum();
    let fulls_sent: usize = outcomes.iter().map(|o| o.fulls_sent).sum();
    assert_eq!(
        total_ok,
        tenants * load.rounds,
        "a request was lost or rejected"
    );
    assert_eq!(
        served, total_ok as u64,
        "control plane served a different count"
    );
    // Every tenant's first delta misses (NeedDesign), is uploaded and
    // resent; everything after that hits.
    assert_eq!(need_design, tenants as u64, "one cache miss per tenant");
    assert_eq!(
        put_designs, tenants as u64,
        "one baseline upload per tenant"
    );
    assert_eq!(
        delta_requests,
        (deltas_sent + tenants) as u64,
        "deltas plus resends"
    );
    assert!(cache_hits > 0, "warm rounds must hit the design cache");
    assert_eq!(
        cache_hits, deltas_sent as u64,
        "all but the first delta hit"
    );
    assert!(replacements >= 1, "the dead primary was never replaced");
    assert!(
        !reg.primaries.contains(&ShardBackend::Tcp(dead)),
        "dead backend still a primary after the run"
    );

    eprintln!(
        "  {total_ok} ok ({deltas_sent} deltas + {fulls_sent} fulls) in {:.2}s; cache {cache_hits} hits / {need_design} misses; {replacements} replacement(s), {failovers} failover(s)",
        wall.as_secs_f64()
    );

    let mut per_tenant = String::new();
    for (i, o) in outcomes.iter().enumerate() {
        let sep = if i + 1 == outcomes.len() {
            ""
        } else {
            ",\n    "
        };
        let _ = write!(
            per_tenant,
            "\"{}\": {{\"weight\": {}, \"requests\": {}, {}}}{sep}",
            o.name,
            o.weight,
            o.ok,
            latency_json("e2e", &o.e2e_ns)
        );
    }

    let json = format!(
        "{{\n  \"bench\": \"perf_serve\",\n  \"mode\": \"{mode}\",\n  \"hardware_threads\": {cores},\n  \"tenants\": {tenants},\n  \"idle_connections\": {idle_n},\n  \"config\": {{\"rounds_per_tenant\": {rounds}, \"cells\": {cells}, \"shards\": 2, \"ctl_workers\": 2}},\n  \"wall_seconds\": {wall:.3},\n  \"requests_ok\": {total_ok},\n  \"deltas_sent\": {deltas_sent},\n  \"fulls_sent\": {fulls_sent},\n  \"cache_hits\": {cache_hits},\n  \"delta_requests\": {delta_requests},\n  \"need_design\": {need_design},\n  \"put_designs\": {put_designs},\n  \"failovers\": {failovers},\n  \"replacements\": {replacements},\n  \"cache\": {{\"hits\": {ch}, \"misses\": {cm}, \"evictions\": {ce}, \"resident_bytes\": {cb}, \"entries\": {cn}}},\n  \"per_tenant\": {{\n    {per_tenant}\n  }},\n  \"note\": \"Control-plane replay: each tenant uploads its baseline once via the NeedDesign handshake, then ships ECO deltas; every third round is a cold full resend. Backends are a 2-shard fleet whose dead primary is replaced by a warm spare from the health-checked registry on first use. Idle connections are held open across the run and probed afterwards. Latency is client-observed end to end; percentiles from dpm-obs fixed-bucket histograms.\"\n}}\n",
        mode = if smoke { "multi_tenant_smoke" } else { "multi_tenant" },
        idle_n = n,
        rounds = load.rounds,
        cells = load.cells,
        wall = wall.as_secs_f64(),
        ch = cache.hits,
        cm = cache.misses,
        ce = cache.evictions,
        cb = cache.resident_bytes,
        cn = cache.entries,
    );
    std::fs::write(out_path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote {out_path}");

    if let Some(path) = trace_out {
        export_trace_sample(addr, load, path);
    }

    drop(idle);
    ctl.shutdown();
    live_a.shutdown();
    live_b.shutdown();
}

// ---------------------------------------------------------------------------
// Tracing-overhead mode (--trace-overhead).
// ---------------------------------------------------------------------------

/// One closed-loop request on a persistent client, returning the
/// client-observed end-to-end latency.
fn overhead_one(client: &mut ServeClient, r: &JobRequest, traced: bool) -> u64 {
    let mut req = r.clone();
    if traced {
        client.begin_trace(&mut req).expect("tracing armed");
    }
    let t0 = Instant::now();
    let reply = client
        .request(&req, PayloadEncoding::Binary)
        .expect("transport stays healthy");
    let e2e = t0.elapsed().as_nanos() as u64;
    assert!(matches!(reply, Reply::Ok(_)), "request rejected: {reply:?}");
    if traced {
        assert!(
            !client.take_trace_spans().is_empty(),
            "traced request yielded no spans"
        );
    }
    e2e
}

/// Exact percentile over raw samples — the fixed histogram buckets
/// double per step, far too coarse to resolve a few-percent delta.
fn exact_percentile(ns: &[u64], q: f64) -> u64 {
    let mut sorted = ns.to_vec();
    sorted.sort_unstable();
    sorted[((sorted.len() as f64 - 1.0) * q).round() as usize]
}

/// Measures the end-to-end cost of tracing: the same closed-loop
/// request schedule with tracing off and on, interleaved per request
/// (alternating which arm goes first) so both arms see the same system
/// drift. Each request is repeated `reps` times per arm and only its
/// minimum latency is kept — scheduler preemption is strictly additive
/// noise, so best-of-reps isolates the code-path cost — then exact
/// p50/p99 are taken across the request mix. Span recording is a
/// fixed-size ring write per event and the export rides an existing
/// reply frame, so the target is < 2% on p50.
fn run_trace_overhead(out_path: &str, smoke: bool) {
    let spec = if smoke { &SMOKE } else { &FULL };
    let reps = if smoke { 2 } else { 10 };
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    eprintln!(
        "perf_serve trace-overhead{}: {} requests x {reps} reps x 2 arms, {cores} hardware thread(s)",
        if smoke { " (smoke)" } else { "" },
        spec.requests,
    );
    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            queue_capacity: spec.queue_capacity,
            workers: spec.workers,
            ..ServeConfig::default()
        },
    )
    .expect("server binds an ephemeral port");
    let addr = server.local_addr();
    let requests = build_requests(spec);

    let mut plain = ServeClient::connect(addr).expect("plain client connects");
    let mut traced = ServeClient::connect(addr)
        .expect("traced client connects")
        .with_tracing(0x7E57_0FF5)
        .with_tenant("perf");

    // Warm both code paths (thread pools, allocator, caches) before
    // measuring anything.
    for r in requests.iter().take(4) {
        overhead_one(&mut plain, r, false);
        overhead_one(&mut traced, r, true);
    }

    let mut off = vec![u64::MAX; requests.len()];
    let mut on = vec![u64::MAX; requests.len()];
    for rep in 0..reps {
        for (i, r) in requests.iter().enumerate() {
            if (rep + i) % 2 == 0 {
                off[i] = off[i].min(overhead_one(&mut plain, r, false));
                on[i] = on[i].min(overhead_one(&mut traced, r, true));
            } else {
                on[i] = on[i].min(overhead_one(&mut traced, r, true));
                off[i] = off[i].min(overhead_one(&mut plain, r, false));
            }
        }
    }
    server.shutdown();

    let (off_p50, off_p99) = (exact_percentile(&off, 0.50), exact_percentile(&off, 0.99));
    let (on_p50, on_p99) = (exact_percentile(&on, 0.50), exact_percentile(&on, 0.99));
    let pct = |off: u64, on: u64| (on as f64 - off as f64) / off.max(1) as f64 * 100.0;
    eprintln!(
        "  e2e p50 {:.1}us off vs {:.1}us on ({:+.2}%), p99 {:.1}us vs {:.1}us ({:+.2}%)",
        off_p50 as f64 / 1e3,
        on_p50 as f64 / 1e3,
        pct(off_p50, on_p50),
        off_p99 as f64 / 1e3,
        on_p99 as f64 / 1e3,
        pct(off_p99, on_p99),
    );

    let json = format!(
        "{{\n  \"bench\": \"perf_serve\",\n  \"mode\": \"trace_overhead{smoke_tag}\",\n  \"hardware_threads\": {cores},\n  \"requests_per_arm\": {n},\n  \"reps_per_request\": {reps},\n  \"trace_overhead\": {{\"off_p50_us\": {op50:.1}, \"off_p99_us\": {op99:.1}, \"on_p50_us\": {np50:.1}, \"on_p99_us\": {np99:.1}, \"overhead_p50_pct\": {d50:.2}, \"overhead_p99_pct\": {d99:.2}}},\n  \"note\": \"Closed-loop: the same request schedule with tracing off and on, interleaved per request so both arms share system drift (client arms a root context per request; the server exports its span tree on the reply). Per-request best-of-reps filters scheduler preemption, then exact p50/p99 across the request mix. Target: < 2% p50 regression.\"\n}}\n",
        smoke_tag = if smoke { "_smoke" } else { "" },
        n = off.len(),
        op50 = off_p50 as f64 / 1e3,
        op99 = off_p99 as f64 / 1e3,
        np50 = on_p50 as f64 / 1e3,
        np99 = on_p99 as f64 / 1e3,
        d50 = pct(off_p50, on_p50),
        d99 = pct(off_p99, on_p99),
    );
    std::fs::write(out_path, &json).expect("write trace-overhead JSON");
    println!("{json}");
    eprintln!("wrote {out_path}");
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut smoke = false;
    let mut pipeline = 1usize;
    let mut tenants = 0usize;
    let mut trace_out: Option<String> = None;
    let mut trace_overhead = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--pipeline" {
            pipeline = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .expect("--pipeline needs a depth >= 1");
        } else if arg == "--tenants" {
            tenants = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .expect("--tenants needs a count >= 1");
        } else if arg == "--trace-out" {
            trace_out = Some(args.next().expect("--trace-out needs a path"));
        } else if arg == "--trace-overhead" {
            trace_overhead = true;
        } else {
            out_path = arg;
        }
    }
    if trace_overhead {
        run_trace_overhead(&out_path, smoke);
        return;
    }
    if tenants > 0 {
        run_multi_tenant(&out_path, smoke, tenants, trace_out.as_deref());
        return;
    }
    let spec = if smoke { &SMOKE } else { &FULL };
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    eprintln!(
        "perf_serve{}: {} requests, {} senders, depth {pipeline}, {:.0} req/s offered, {cores} hardware thread(s)",
        if smoke { " (smoke)" } else { "" },
        spec.requests,
        spec.senders,
        spec.rate_per_sec
    );

    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            queue_capacity: spec.queue_capacity,
            workers: spec.workers,
            ..ServeConfig::default()
        },
    )
    .expect("server binds an ephemeral port");
    let addr = server.local_addr();

    let requests = build_requests(spec);
    let schedule = arrival_schedule(spec, 0xA1157);
    let started = Arc::new(AtomicU64::new(0));
    let progress_total = Arc::new(AtomicU64::new(0));

    // Sender k owns arrivals k, k+senders, k+2*senders, ... — open-loop
    // within the sender pool's ability to keep up. With a pipeline
    // depth above 1 a sender only blocks once `pipeline` requests are
    // outstanding on its connection.
    let t0 = Instant::now();
    let handles: Vec<_> = (0..spec.senders)
        .map(|k| {
            let mine: Vec<(Duration, JobRequest)> = requests
                .iter()
                .zip(&schedule)
                .skip(k)
                .step_by(spec.senders)
                .map(|(r, &d)| (d, r.clone()))
                .collect();
            let started = Arc::clone(&started);
            let progress_total = Arc::clone(&progress_total);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                let mut obs = Vec::with_capacity(mine.len());
                let mut inflight: VecDeque<(u64, Instant)> = VecDeque::with_capacity(pipeline);
                let mut progress_seen = 0u64;
                for (offset, req) in mine {
                    if let Some(wait) = offset.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    started.fetch_add(1, Ordering::Relaxed);
                    client
                        .send_request(&req, PayloadEncoding::Binary)
                        .expect("transport stays healthy");
                    inflight.push_back((req.id, Instant::now()));
                    while inflight.len() >= pipeline {
                        recv_one(&mut client, &mut inflight, &mut obs, &mut progress_seen);
                    }
                }
                while !inflight.is_empty() {
                    recv_one(&mut client, &mut inflight, &mut obs, &mut progress_seen);
                }
                progress_total.fetch_add(progress_seen, Ordering::Relaxed);
                obs
            })
        })
        .collect();

    let observations: Vec<Observation> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("sender thread finishes"))
        .collect();
    let wall = t0.elapsed();
    let progress_seen = progress_total.load(Ordering::Relaxed);

    // Wire-level stats probe before shutdown: the server's own counters
    // must agree with what the clients observed.
    let snapshot = ServeClient::connect(addr)
        .expect("stats client connects")
        .stats()
        .expect("stats frame decodes");
    let stats = server.shutdown();

    // Every scheduled request must have been answered one way or the
    // other, and the server must account for each admitted job.
    assert_eq!(observations.len(), spec.requests, "lost replies");
    assert_eq!(
        stats.admitted,
        stats.served + stats.deadline_expired,
        "shutdown left jobs unaccounted"
    );
    assert_eq!(
        snapshot.received, stats.received,
        "wire stats disagree with in-process stats"
    );
    assert_eq!(
        stats.progress_frames, progress_seen,
        "server sent a different number of progress frames than clients saw"
    );
    assert!(
        progress_seen > 0,
        "streamed requests produced no progress frames"
    );

    let ok: Vec<&Observation> = observations.iter().filter(|o| o.outcome == "ok").collect();
    let rejected = observations.len() - ok.len();
    let throughput = ok.len() as f64 / wall.as_secs_f64();
    eprintln!(
        "  {} ok / {} rejected in {:.2}s ({throughput:.1} req/s served), {progress_seen} progress frames",
        ok.len(),
        rejected,
        wall.as_secs_f64()
    );

    let mut outcome_counts: Vec<(&'static str, usize)> = Vec::new();
    for o in &observations {
        match outcome_counts
            .iter_mut()
            .find(|(name, _)| *name == o.outcome)
        {
            Some((_, n)) => *n += 1,
            None => outcome_counts.push((o.outcome, 1)),
        }
    }
    let mut outcomes_json = String::new();
    for (i, (name, n)) in outcome_counts.iter().enumerate() {
        let sep = if i + 1 == outcome_counts.len() {
            ""
        } else {
            ", "
        };
        let _ = write!(outcomes_json, "\"{name}\": {n}{sep}");
    }

    // Head-of-line delta: what the client paid on top of the server's
    // own queue + service accounting (reply ordering, transport).
    let hol: Vec<u64> = ok
        .iter()
        .map(|o| o.e2e_ns.saturating_sub(o.queue_ns + o.service_ns))
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"perf_serve\",\n  \"mode\": \"{mode}\",\n  \"hardware_threads\": {cores},\n  \"config\": {{\"senders\": {senders}, \"requests\": {requests}, \"pipeline\": {pipeline}, \"offered_rate_per_sec\": {rate:.1}, \"server_workers\": {workers}, \"queue_capacity\": {cap}, \"circuit_cells\": {cells:?}}},\n  \"wall_seconds\": {wall:.3},\n  \"served_per_sec\": {throughput:.2},\n  \"progress_frames\": {progress_seen},\n  \"outcomes\": {{{outcomes}}},\n  \"latency\": {{\n    {queue},\n    {service},\n    {e2e},\n    {hol}\n  }},\n  \"note\": \"Open-loop exponential arrivals from a fixed dpm-rng seed; queue/service split measured server-side, e2e client-side; percentiles from dpm-obs fixed-bucket histograms (bucket upper bounds). head_of_line = e2e - (queue + service): reply-ordering plus transport cost, nonzero mainly when --pipeline > 1. Overloaded rejections are counted, not retried.\"\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        senders = spec.senders,
        requests = spec.requests,
        rate = spec.rate_per_sec,
        workers = spec.workers,
        cap = spec.queue_capacity,
        cells = spec.circuit_cells,
        wall = wall.as_secs_f64(),
        outcomes = outcomes_json,
        queue = latency_json("queue", &ok.iter().map(|o| o.queue_ns).collect::<Vec<_>>()),
        service = latency_json("service", &ok.iter().map(|o| o.service_ns).collect::<Vec<_>>()),
        e2e = latency_json(
            "e2e",
            &observations.iter().map(|o| o.e2e_ns).collect::<Vec<_>>()
        ),
        hol = latency_json("head_of_line", &hol),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
