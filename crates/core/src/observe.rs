//! Observer hooks for the diffusion runners.
//!
//! [`DiffusionObserver`] is the single seam through which anything
//! watches a run: per-step telemetry, kernel timings, trajectory
//! tracing ([`trace_global_diffusion`](crate::trace_global_diffusion))
//! and the streaming progress frames of `dpm-serve` all hang off the
//! same three callbacks instead of growing their own copies of the
//! diffusion loop.
//!
//! Observers are strictly read-only witnesses: every callback receives
//! shared references to already-computed state, after the arithmetic of
//! the step has finished. An attached observer therefore cannot perturb
//! the dynamics — runs with and without observers produce bit-identical
//! placements (asserted by tests in `global.rs` and `local.rs`).

use crate::StepRecord;
use dpm_netlist::Netlist;
use dpm_place::Placement;
use std::time::Duration;

/// Which parallel kernel a [`KernelEvent`] timed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelKind {
    /// The FTCS density step (Eq. 4).
    Ftcs,
    /// The velocity-field computation (Eq. 5).
    Velocity,
    /// Cell advection through the interpolated field (Eq. 6).
    Advect,
    /// The density splat building/refreshing the bin map.
    Splat,
}

/// Emitted after every completed diffusion step.
///
/// `record` is the exact [`StepRecord`] pushed to the run's
/// [`Telemetry`](crate::Telemetry); `placement` and `netlist` let an
/// observer derive anything else (cell positions for tracing, HPWL,
/// region densities) from the post-step state.
#[derive(Debug)]
pub struct StepEvent<'a> {
    /// The step's telemetry record (movement, overflow, max density).
    pub record: StepRecord,
    /// The local-diffusion round this step belongs to (1 for global).
    pub round: usize,
    /// The placement after the step's advection.
    pub placement: &'a Placement,
    /// The netlist being migrated.
    pub netlist: &'a Netlist,
}

/// Emitted by local diffusion at the start of each executed round,
/// right after the dynamic density update measured the real placement.
#[derive(Debug, Clone, Copy)]
pub struct RoundEvent {
    /// The 1-based round number.
    pub round: usize,
    /// Total measured local overflow at the round boundary.
    pub measured_overflow: f64,
    /// Maximum windowed-average overflow over the target.
    pub max_window_overflow: f64,
    /// Diffusion steps completed before this round.
    pub steps_so_far: usize,
}

/// Emitted after each timed kernel invocation.
#[derive(Debug, Clone, Copy)]
pub struct KernelEvent {
    /// Which kernel ran.
    pub kernel: KernelKind,
    /// Wall time of this invocation.
    pub elapsed: Duration,
    /// Worker-pool threads the kernel ran on.
    pub threads: usize,
}

/// A witness attached to a diffusion run.
///
/// All methods default to no-ops, so an observer implements only what
/// it needs. Callbacks run on the thread driving the diffusion loop,
/// between steps — keep them cheap (or hand off to a channel) to avoid
/// slowing the run; they can never change its outcome.
pub trait DiffusionObserver {
    /// Called after each diffusion step completes.
    fn on_step(&mut self, _event: &StepEvent<'_>) {}

    /// Called at each executed local-diffusion round boundary (never
    /// called by global diffusion, which is a single round).
    fn on_round(&mut self, _event: &RoundEvent) {}

    /// Called after each timed kernel invocation.
    fn on_kernel(&mut self, _event: &KernelEvent) {}
}

/// The observer that observes nothing; attached by the plain
/// `run`/`run_with_cancel` entry points.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopObserver;

impl DiffusionObserver for NoopObserver {}

impl KernelKind {
    /// Stable span/metric name for this kernel.
    pub fn span_name(self) -> &'static str {
        match self {
            KernelKind::Ftcs => "kernel.ftcs",
            KernelKind::Velocity => "kernel.velocity",
            KernelKind::Advect => "kernel.advect",
            KernelKind::Splat => "kernel.splat",
        }
    }
}

/// Default cap on per-kernel spans recorded by one [`SpanObserver`].
///
/// A long run fires thousands of kernel events; a trace needs the first
/// few to show the per-kernel breakdown, not all of them. The cap
/// bounds both the span ring pressure and the wire-export size.
pub const KERNEL_SPAN_CAP: usize = 64;

/// Bridges [`DiffusionObserver`] kernel events into distributed-trace
/// spans.
///
/// Each timed kernel invocation becomes a child span of `parent` in
/// `recorder`, with ids minted deterministically from the seed. Kernel
/// events report only their elapsed wall time, so the span's interval
/// is reconstructed as `[now - elapsed, now]` in the recorder's epoch.
/// At most `cap` kernel spans are recorded (the rest are counted in
/// [`SpanObserver::kernel_events`]); every event is still forwarded to
/// the optional chained observer, so progress streaming composes with
/// tracing. Like every observer, this is a read-only witness — the
/// placement is bit-identical with or without it.
pub struct SpanObserver<'a> {
    recorder: &'a dpm_obs::SpanRecorder,
    parent: dpm_obs::TraceContext,
    ids: dpm_obs::TraceIdGen,
    cap: usize,
    recorded: usize,
    events: u64,
    inner: Option<&'a mut dyn DiffusionObserver>,
}

impl<'a> SpanObserver<'a> {
    /// Creates a bridge recording kernel spans under `parent`.
    ///
    /// `seed` drives span-id minting; pass something derived from the
    /// inherited context (e.g. `parent.span_id`) so the ids are a pure
    /// function of the root trace seed.
    pub fn new(
        recorder: &'a dpm_obs::SpanRecorder,
        parent: dpm_obs::TraceContext,
        seed: u64,
    ) -> Self {
        Self {
            recorder,
            parent,
            ids: dpm_obs::TraceIdGen::seeded(seed),
            cap: KERNEL_SPAN_CAP,
            recorded: 0,
            events: 0,
            inner: None,
        }
    }

    /// Chains another observer that receives every event unchanged.
    pub fn with_inner(mut self, inner: &'a mut dyn DiffusionObserver) -> Self {
        self.inner = Some(inner);
        self
    }

    /// Overrides the kernel-span cap.
    pub fn with_cap(mut self, cap: usize) -> Self {
        self.cap = cap;
        self
    }

    /// Total kernel events seen (recorded or not).
    pub fn kernel_events(&self) -> u64 {
        self.events
    }
}

impl DiffusionObserver for SpanObserver<'_> {
    fn on_step(&mut self, event: &StepEvent<'_>) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_step(event);
        }
    }

    fn on_round(&mut self, event: &RoundEvent) {
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_round(event);
        }
    }

    fn on_kernel(&mut self, event: &KernelEvent) {
        self.events += 1;
        if self.recorded < self.cap {
            self.recorded += 1;
            let now = self.recorder.now_ns();
            let elapsed = u64::try_from(event.elapsed.as_nanos()).unwrap_or(u64::MAX);
            let ctx = self.ids.child_of(&self.parent);
            self.recorder.record_traced(
                event.kernel.span_name(),
                now.saturating_sub(elapsed),
                now,
                ctx,
            );
        }
        if let Some(inner) = self.inner.as_deref_mut() {
            inner.on_kernel(event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_methods_are_callable_noops() {
        struct OnlySteps(usize);
        impl DiffusionObserver for OnlySteps {
            fn on_step(&mut self, _event: &StepEvent<'_>) {
                self.0 += 1;
            }
        }
        let mut obs = OnlySteps(0);
        obs.on_round(&RoundEvent {
            round: 1,
            measured_overflow: 0.0,
            max_window_overflow: 0.0,
            steps_so_far: 0,
        });
        obs.on_kernel(&KernelEvent {
            kernel: KernelKind::Ftcs,
            elapsed: Duration::ZERO,
            threads: 1,
        });
        assert_eq!(obs.0, 0);
    }

    #[test]
    fn span_observer_records_capped_kernel_spans_and_chains() {
        struct CountKernels(u64);
        impl DiffusionObserver for CountKernels {
            fn on_kernel(&mut self, _event: &KernelEvent) {
                self.0 += 1;
            }
        }
        let recorder = dpm_obs::SpanRecorder::new(64);
        // Let the recorder's epoch age past the events' elapsed time, or
        // `now - elapsed` would clamp at zero and shorten the spans.
        while recorder.now_ns() < 20_000 {
            std::hint::spin_loop();
        }
        let parent = dpm_obs::TraceIdGen::seeded(9).root();
        let mut chained = CountKernels(0);
        let mut bridge = SpanObserver::new(&recorder, parent, parent.span_id)
            .with_cap(3)
            .with_inner(&mut chained);
        for _ in 0..5 {
            bridge.on_kernel(&KernelEvent {
                kernel: KernelKind::Velocity,
                elapsed: Duration::from_micros(10),
                threads: 2,
            });
        }
        assert_eq!(bridge.kernel_events(), 5);
        assert_eq!(chained.0, 5, "chained observer sees every event");
        let records = recorder.records();
        assert_eq!(records.len(), 3, "cap limits recorded spans");
        for r in &records {
            assert_eq!(r.name, "kernel.velocity");
            assert_eq!(r.trace_id, parent.trace_id);
            assert_eq!(r.parent_id, parent.span_id);
            assert!(r.duration_ns() >= 10_000);
        }
        // Ids are a pure function of the seed.
        let recorder2 = dpm_obs::SpanRecorder::new(64);
        let mut bridge2 = SpanObserver::new(&recorder2, parent, parent.span_id).with_cap(3);
        for _ in 0..3 {
            bridge2.on_kernel(&KernelEvent {
                kernel: KernelKind::Velocity,
                elapsed: Duration::from_micros(10),
                threads: 2,
            });
        }
        let ids: Vec<u64> = records.iter().map(|r| r.span_id).collect();
        let ids2: Vec<u64> = recorder2.records().iter().map(|r| r.span_id).collect();
        assert_eq!(ids, ids2);
    }
}
