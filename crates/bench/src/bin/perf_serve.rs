//! Open-loop load generator for the `dpm-serve` migration service.
//!
//! Starts a server on an ephemeral port, replays a deterministic
//! arrival schedule (exponential inter-arrivals from `dpm-rng`) from a
//! pool of sender threads, and reports throughput plus p50/p95/p99/max
//! latency, split into queue wait and service time as measured by the
//! server and end-to-end wall time as seen by the client. Latency
//! aggregation uses the fixed-bucket `dpm-obs` histograms — the same
//! instrument the server itself exports over the wire.
//!
//! Open-loop means arrivals do not wait for earlier replies: if the
//! server falls behind, requests pile into its bounded queue and the
//! `Overloaded` rejections are counted rather than hidden — the honest
//! way to measure a service under offered load.
//!
//! `--pipeline N` keeps up to N requests outstanding per connection
//! (send without waiting, matching replies in submission order). The
//! reported `head_of_line` histogram is the per-request difference
//! between client-observed end-to-end time and the server-side
//! queue + service time — the cost of waiting behind earlier replies on
//! the same connection plus transport overhead.
//!
//! A slice of the schedule requests streamed progress frames, and the
//! run ends with a wire-level stats probe; the JSON records how many
//! progress frames the clients saw and cross-checks the server's own
//! counter.
//!
//! Usage: `cargo run --release --bin perf_serve [-- <output-path>]
//! [--smoke] [--pipeline N]`
//!
//! `--smoke` runs a seconds-scale schedule (used by `scripts/ci.sh`) and
//! applies the same acceptance checks: every request answered, clean
//! shutdown, valid JSON written.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dpm_diffusion::DiffusionConfig;
use dpm_gen::{Benchmark, CircuitSpec, InflationSpec};
use dpm_obs::Histogram;
use dpm_rng::Rng;
use dpm_serve::wire::{JobKind, JobRequest, PayloadEncoding, Reply};
use dpm_serve::{ServeClient, ServeConfig, Server};

struct LoadSpec {
    /// Concurrent sender threads (each with its own connection).
    senders: usize,
    /// Total requests in the schedule.
    requests: usize,
    /// Mean offered arrival rate, requests per second.
    rate_per_sec: f64,
    /// Cells per circuit preset (requests cycle through these).
    circuit_cells: &'static [usize],
    /// Server worker threads.
    workers: usize,
    /// Server queue capacity.
    queue_capacity: usize,
}

const FULL: LoadSpec = LoadSpec {
    senders: 4,
    requests: 48,
    rate_per_sec: 24.0,
    circuit_cells: &[200, 400],
    workers: 2,
    queue_capacity: 16,
};

const SMOKE: LoadSpec = LoadSpec {
    senders: 2,
    requests: 8,
    rate_per_sec: 16.0,
    circuit_cells: &[120],
    workers: 2,
    queue_capacity: 8,
};

/// Every `STREAM_EVERY`-th request asks for progress frames at this
/// stride, on a workload dense enough to run real diffusion steps.
const STREAM_EVERY: usize = 4;
const STREAM_STRIDE: u32 = 4;

/// One completed request as seen by its sender.
struct Observation {
    outcome: &'static str,
    queue_ns: u64,
    service_ns: u64,
    e2e_ns: u64,
}

fn bench_for(cells: usize, seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("serve", cells, seed).generate();
    b.inflate(&InflationSpec::distributed(0.12, seed ^ 0x51EE));
    b
}

/// A denser pile for the streamed requests: guarantees the job runs a
/// non-trivial number of steps so progress frames actually flow.
fn busy_bench_for(cells: usize, seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("serve", cells, seed).generate();
    b.inflate(&InflationSpec::centered(0.3, 0.25, seed ^ 0x51EE));
    b
}

/// Builds the whole request set up front so generation cost never
/// pollutes the measured window.
fn build_requests(spec: &LoadSpec) -> Vec<JobRequest> {
    (0..spec.requests)
        .map(|i| {
            let cells = spec.circuit_cells[i % spec.circuit_cells.len()];
            let streamed = i % STREAM_EVERY == 0;
            let b = if streamed {
                busy_bench_for(cells, 0xC0FFEE + i as u64)
            } else {
                bench_for(cells, 0xC0FFEE + i as u64)
            };
            JobRequest {
                id: i as u64 + 1,
                deadline_ms: 0,
                progress_stride: if streamed { STREAM_STRIDE } else { 0 },
                kind: if i % 2 == 0 {
                    JobKind::Local
                } else {
                    JobKind::Global
                },
                design: format!("serve_{cells}c_{i}"),
                config: DiffusionConfig {
                    d_max: if streamed { 0.8 } else { 1.0 },
                    ..DiffusionConfig::default()
                },
                netlist: b.netlist,
                die: b.die,
                placement: b.placement,
            }
        })
        .collect()
}

/// Deterministic exponential inter-arrival schedule: absolute offsets
/// from the load start, one per request.
fn arrival_schedule(spec: &LoadSpec, seed: u64) -> Vec<Duration> {
    let mut rng = Rng::seed_from_u64(seed);
    let mut t = 0.0f64;
    (0..spec.requests)
        .map(|_| {
            // Inverse-CDF sample; (0,1] keeps ln() finite.
            let u = 1.0 - rng.random_f64();
            t += -u.ln() / spec.rate_per_sec;
            Duration::from_secs_f64(t)
        })
        .collect()
}

fn latency_json(name: &str, ns: &[u64]) -> String {
    let h = Histogram::new(&Histogram::latency_bounds());
    for &v in ns {
        h.record(v);
    }
    let s = h.snapshot();
    format!(
        "\"{name}\": {{\"p50_us\": {:.1}, \"p95_us\": {:.1}, \"p99_us\": {:.1}, \"max_us\": {:.1}, \"mean_us\": {:.1}, \"count\": {}}}",
        s.percentile(0.50) as f64 / 1e3,
        s.percentile(0.95) as f64 / 1e3,
        s.percentile(0.99) as f64 / 1e3,
        s.max as f64 / 1e3,
        s.mean() / 1e3,
        s.count,
    )
}

/// Receives the oldest outstanding reply, counting skipped progress
/// frames, and records the observation.
fn recv_one(
    client: &mut ServeClient,
    inflight: &mut VecDeque<(u64, Instant)>,
    obs: &mut Vec<Observation>,
    progress_seen: &mut u64,
) {
    let reply = client
        .recv_reply_with(|_| *progress_seen += 1)
        .expect("transport stays healthy");
    let (id, sent) = inflight.pop_front().expect("reply without a request");
    let e2e_ns = sent.elapsed().as_nanos() as u64;
    obs.push(match reply {
        Reply::Ok(resp) => {
            assert_eq!(resp.id, id, "pipelined replies out of order");
            Observation {
                outcome: "ok",
                queue_ns: resp.queue_ns,
                service_ns: resp.service_ns,
                e2e_ns,
            }
        }
        Reply::Rejected(e) => Observation {
            outcome: e.code.as_str(),
            queue_ns: 0,
            service_ns: 0,
            e2e_ns,
        },
    });
}

fn main() {
    let mut out_path = "BENCH_serve.json".to_string();
    let mut smoke = false;
    let mut pipeline = 1usize;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--smoke" {
            smoke = true;
        } else if arg == "--pipeline" {
            pipeline = args
                .next()
                .and_then(|v| v.parse().ok())
                .filter(|&n| n >= 1)
                .expect("--pipeline needs a depth >= 1");
        } else {
            out_path = arg;
        }
    }
    let spec = if smoke { &SMOKE } else { &FULL };
    let cores = std::thread::available_parallelism().map_or(0, |c| c.get());
    eprintln!(
        "perf_serve{}: {} requests, {} senders, depth {pipeline}, {:.0} req/s offered, {cores} hardware thread(s)",
        if smoke { " (smoke)" } else { "" },
        spec.requests,
        spec.senders,
        spec.rate_per_sec
    );

    let server = Server::start(
        "127.0.0.1:0",
        ServeConfig {
            queue_capacity: spec.queue_capacity,
            workers: spec.workers,
            ..ServeConfig::default()
        },
    )
    .expect("server binds an ephemeral port");
    let addr = server.local_addr();

    let requests = build_requests(spec);
    let schedule = arrival_schedule(spec, 0xA1157);
    let started = Arc::new(AtomicU64::new(0));
    let progress_total = Arc::new(AtomicU64::new(0));

    // Sender k owns arrivals k, k+senders, k+2*senders, ... — open-loop
    // within the sender pool's ability to keep up. With a pipeline
    // depth above 1 a sender only blocks once `pipeline` requests are
    // outstanding on its connection.
    let t0 = Instant::now();
    let handles: Vec<_> = (0..spec.senders)
        .map(|k| {
            let mine: Vec<(Duration, JobRequest)> = requests
                .iter()
                .zip(&schedule)
                .skip(k)
                .step_by(spec.senders)
                .map(|(r, &d)| (d, r.clone()))
                .collect();
            let started = Arc::clone(&started);
            let progress_total = Arc::clone(&progress_total);
            std::thread::spawn(move || {
                let mut client = ServeClient::connect(addr).expect("client connects");
                let mut obs = Vec::with_capacity(mine.len());
                let mut inflight: VecDeque<(u64, Instant)> = VecDeque::with_capacity(pipeline);
                let mut progress_seen = 0u64;
                for (offset, req) in mine {
                    if let Some(wait) = offset.checked_sub(t0.elapsed()) {
                        std::thread::sleep(wait);
                    }
                    started.fetch_add(1, Ordering::Relaxed);
                    client
                        .send_request(&req, PayloadEncoding::Binary)
                        .expect("transport stays healthy");
                    inflight.push_back((req.id, Instant::now()));
                    while inflight.len() >= pipeline {
                        recv_one(&mut client, &mut inflight, &mut obs, &mut progress_seen);
                    }
                }
                while !inflight.is_empty() {
                    recv_one(&mut client, &mut inflight, &mut obs, &mut progress_seen);
                }
                progress_total.fetch_add(progress_seen, Ordering::Relaxed);
                obs
            })
        })
        .collect();

    let observations: Vec<Observation> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("sender thread finishes"))
        .collect();
    let wall = t0.elapsed();
    let progress_seen = progress_total.load(Ordering::Relaxed);

    // Wire-level stats probe before shutdown: the server's own counters
    // must agree with what the clients observed.
    let snapshot = ServeClient::connect(addr)
        .expect("stats client connects")
        .stats()
        .expect("stats frame decodes");
    let stats = server.shutdown();

    // Every scheduled request must have been answered one way or the
    // other, and the server must account for each admitted job.
    assert_eq!(observations.len(), spec.requests, "lost replies");
    assert_eq!(
        stats.admitted,
        stats.served + stats.deadline_expired,
        "shutdown left jobs unaccounted"
    );
    assert_eq!(
        snapshot.received, stats.received,
        "wire stats disagree with in-process stats"
    );
    assert_eq!(
        stats.progress_frames, progress_seen,
        "server sent a different number of progress frames than clients saw"
    );
    assert!(
        progress_seen > 0,
        "streamed requests produced no progress frames"
    );

    let ok: Vec<&Observation> = observations.iter().filter(|o| o.outcome == "ok").collect();
    let rejected = observations.len() - ok.len();
    let throughput = ok.len() as f64 / wall.as_secs_f64();
    eprintln!(
        "  {} ok / {} rejected in {:.2}s ({throughput:.1} req/s served), {progress_seen} progress frames",
        ok.len(),
        rejected,
        wall.as_secs_f64()
    );

    let mut outcome_counts: Vec<(&'static str, usize)> = Vec::new();
    for o in &observations {
        match outcome_counts
            .iter_mut()
            .find(|(name, _)| *name == o.outcome)
        {
            Some((_, n)) => *n += 1,
            None => outcome_counts.push((o.outcome, 1)),
        }
    }
    let mut outcomes_json = String::new();
    for (i, (name, n)) in outcome_counts.iter().enumerate() {
        let sep = if i + 1 == outcome_counts.len() {
            ""
        } else {
            ", "
        };
        let _ = write!(outcomes_json, "\"{name}\": {n}{sep}");
    }

    // Head-of-line delta: what the client paid on top of the server's
    // own queue + service accounting (reply ordering, transport).
    let hol: Vec<u64> = ok
        .iter()
        .map(|o| o.e2e_ns.saturating_sub(o.queue_ns + o.service_ns))
        .collect();

    let json = format!(
        "{{\n  \"bench\": \"perf_serve\",\n  \"mode\": \"{mode}\",\n  \"hardware_threads\": {cores},\n  \"config\": {{\"senders\": {senders}, \"requests\": {requests}, \"pipeline\": {pipeline}, \"offered_rate_per_sec\": {rate:.1}, \"server_workers\": {workers}, \"queue_capacity\": {cap}, \"circuit_cells\": {cells:?}}},\n  \"wall_seconds\": {wall:.3},\n  \"served_per_sec\": {throughput:.2},\n  \"progress_frames\": {progress_seen},\n  \"outcomes\": {{{outcomes}}},\n  \"latency\": {{\n    {queue},\n    {service},\n    {e2e},\n    {hol}\n  }},\n  \"note\": \"Open-loop exponential arrivals from a fixed dpm-rng seed; queue/service split measured server-side, e2e client-side; percentiles from dpm-obs fixed-bucket histograms (bucket upper bounds). head_of_line = e2e - (queue + service): reply-ordering plus transport cost, nonzero mainly when --pipeline > 1. Overloaded rejections are counted, not retried.\"\n}}\n",
        mode = if smoke { "smoke" } else { "full" },
        senders = spec.senders,
        requests = spec.requests,
        rate = spec.rate_per_sec,
        workers = spec.workers,
        cap = spec.queue_capacity,
        cells = spec.circuit_cells,
        wall = wall.as_secs_f64(),
        outcomes = outcomes_json,
        queue = latency_json("queue", &ok.iter().map(|o| o.queue_ns).collect::<Vec<_>>()),
        service = latency_json("service", &ok.iter().map(|o| o.service_ns).collect::<Vec<_>>()),
        e2e = latency_json(
            "e2e",
            &observations.iter().map(|o| o.e2e_ns).collect::<Vec<_>>()
        ),
        hol = latency_json("head_of_line", &hol),
    );
    std::fs::write(&out_path, &json).expect("write BENCH_serve.json");
    println!("{json}");
    eprintln!("wrote {out_path}");
}
