//! Cell-movement statistics between two placements.

use crate::Placement;
use dpm_netlist::Netlist;
use std::fmt;

/// Summary of how far cells moved between two placements — the
/// max/avg/avg²/#moved breakdown of the paper's Tables VIII, XII and XV.
///
/// Distances are Euclidean, measured between cell lower-left corners.
///
/// # Examples
///
/// ```
/// use dpm_geom::Point;
/// use dpm_netlist::{NetlistBuilder, CellKind, CellId};
/// use dpm_place::{MovementStats, Placement};
///
/// let mut b = NetlistBuilder::new();
/// b.add_cell("a", 1.0, 1.0, CellKind::Movable);
/// b.add_cell("b", 1.0, 1.0, CellKind::Movable);
/// let nl = b.build()?;
/// let before = Placement::new(2);
/// let mut after = before.clone();
/// after.set(CellId::new(0), Point::new(3.0, 4.0));
/// let m = MovementStats::between(&nl, &before, &after);
/// assert_eq!(m.max, 5.0);
/// assert_eq!(m.moved, 1);
/// assert_eq!(m.total, 5.0);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct MovementStats {
    /// Largest single-cell displacement.
    pub max: f64,
    /// Sum of displacements over all movable cells.
    pub total: f64,
    /// Mean displacement over *moved* cells (0 if nothing moved).
    pub avg: f64,
    /// Mean squared displacement over moved cells.
    pub avg_sq: f64,
    /// Number of cells that moved more than [`Self::MOVE_THRESHOLD`].
    pub moved: usize,
    /// Number of movable cells considered.
    pub movable: usize,
}

impl MovementStats {
    /// Displacements below this are considered "not moved" when counting
    /// `moved` (floating-point noise guard).
    pub const MOVE_THRESHOLD: f64 = 1e-9;

    /// Computes movement statistics between two placements of the same
    /// netlist, over movable cells only.
    ///
    /// # Panics
    ///
    /// Panics if the placements have different lengths.
    pub fn between(netlist: &Netlist, before: &Placement, after: &Placement) -> Self {
        assert_eq!(
            before.len(),
            after.len(),
            "placements must cover the same cells"
        );
        let mut s = Self::default();
        for cell in netlist.movable_cell_ids() {
            s.movable += 1;
            let d = (after.get(cell) - before.get(cell)).length();
            s.total += d;
            s.max = s.max.max(d);
            if d > Self::MOVE_THRESHOLD {
                s.moved += 1;
                s.avg += d;
                s.avg_sq += d * d;
            }
        }
        if s.moved > 0 {
            s.avg /= s.moved as f64;
            s.avg_sq /= s.moved as f64;
        }
        s
    }
}

impl fmt::Display for MovementStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "max {:.2}, total {:.2}, avg {:.2}, avg² {:.2}, moved {}/{}",
            self.max, self.total, self.avg, self.avg_sq, self.moved, self.movable
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Point;
    use dpm_netlist::{CellId, CellKind, NetlistBuilder};

    fn netlist(n: usize) -> Netlist {
        let mut b = NetlistBuilder::new();
        for i in 0..n {
            b.add_cell(format!("c{i}"), 1.0, 1.0, CellKind::Movable);
        }
        b.build().expect("valid")
    }

    #[test]
    fn no_movement_is_all_zero() {
        let nl = netlist(3);
        let p = Placement::new(3);
        let m = MovementStats::between(&nl, &p, &p);
        assert_eq!(m.max, 0.0);
        assert_eq!(m.total, 0.0);
        assert_eq!(m.moved, 0);
        assert_eq!(m.movable, 3);
    }

    #[test]
    fn aggregates_multiple_moves() {
        let nl = netlist(3);
        let before = Placement::new(3);
        let mut after = before.clone();
        after.set(CellId::new(0), Point::new(3.0, 4.0)); // 5
        after.set(CellId::new(1), Point::new(0.0, 1.0)); // 1
        let m = MovementStats::between(&nl, &before, &after);
        assert_eq!(m.max, 5.0);
        assert_eq!(m.total, 6.0);
        assert_eq!(m.moved, 2);
        assert_eq!(m.avg, 3.0);
        assert_eq!(m.avg_sq, 13.0);
    }

    #[test]
    fn fixed_cells_excluded() {
        let mut b = NetlistBuilder::new();
        b.add_cell("c", 1.0, 1.0, CellKind::Movable);
        b.add_cell("m", 5.0, 5.0, CellKind::FixedMacro);
        let nl = b.build().expect("valid");
        let before = Placement::new(2);
        let mut after = before.clone();
        after.set(CellId::new(1), Point::new(10.0, 0.0)); // macro "moved" (shouldn't count)
        let m = MovementStats::between(&nl, &before, &after);
        assert_eq!(m.movable, 1);
        assert_eq!(m.moved, 0);
        assert_eq!(m.total, 0.0);
    }

    #[test]
    fn display_mentions_counts() {
        let nl = netlist(1);
        let p = Placement::new(1);
        let m = MovementStats::between(&nl, &p, &p);
        assert!(m.to_string().contains("moved 0/1"));
    }
}
