//! End-to-end tests: a real server on an ephemeral TCP port, real
//! clients, real diffusion jobs.

use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use dpm_diffusion::{DiffusionConfig, GlobalDiffusion, LocalDiffusion, SolverKind};
use dpm_gen::{Benchmark, CircuitSpec, InflationSpec};
use dpm_serve::wire::{
    read_frame, write_frame, ErrorCode, FrameKind, JobKind, JobRequest, PayloadEncoding, Reply,
    DEFAULT_MAX_FRAME_LEN, MAGIC, VERSION,
};
use dpm_serve::{ProgressUpdate, ServeClient, ServeConfig, Server};

/// A small inflated benchmark: overlapping, so diffusion has real work.
fn bench(seed: u64) -> Benchmark {
    let mut b = CircuitSpec::with_size("e2e", 300, seed).generate();
    b.inflate(&InflationSpec::distributed(0.15, seed ^ 0x9e37));
    b
}

/// A config whose stopping criterion is unreachable (d_max far below the
/// average movable density) but whose individual steps stay cheap — the
/// reliable way to have a job still running when a deadline fires,
/// without timing-sensitive sleeps in the engine.
fn unconverging_config() -> DiffusionConfig {
    DiffusionConfig {
        d_max: 0.01,
        max_steps: 50_000_000,
        ..DiffusionConfig::default()
    }
}

fn request(id: u64, kind: JobKind, config: DiffusionConfig, deadline_ms: u32) -> JobRequest {
    let b = bench(0xB0B + id);
    JobRequest {
        id,
        deadline_ms,
        progress_stride: 0,
        kind,
        design: format!("e2e_{id}"),
        config,
        netlist: b.netlist,
        die: b.die,
        placement: b.placement,
        vol: None,
        trace: None,
    }
}

/// A request guaranteed to run a non-trivial number of diffusion steps
/// and still converge quickly: a centered pile of inflated cells plus a
/// density target below the pile's peak.
fn busy_request(id: u64, kind: JobKind) -> JobRequest {
    let seed = 0xB0B + id;
    let mut b = CircuitSpec::with_size("e2e", 300, seed).generate();
    b.inflate(&InflationSpec::centered(0.3, 0.25, seed ^ 0x9e37));
    JobRequest {
        id,
        deadline_ms: 0,
        progress_stride: 0,
        kind,
        design: format!("busy_{id}"),
        config: DiffusionConfig {
            d_max: 0.8,
            ..DiffusionConfig::default()
        },
        netlist: b.netlist,
        die: b.die,
        placement: b.placement,
        vol: None,
        trace: None,
    }
}

fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(10);
    while !cond() {
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

fn send(addr: SocketAddr, req: &JobRequest, encoding: PayloadEncoding) -> Reply {
    let mut client = ServeClient::connect(addr).expect("connects");
    client.request(req, encoding).expect("transport ok")
}

#[test]
fn tcp_round_trip_is_bit_identical_to_direct_call() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    for (id, kind) in [(1u64, JobKind::Local), (2, JobKind::Global)] {
        let req = request(id, kind, DiffusionConfig::default(), 0);

        // The ground truth: run the engine in-process on a copy.
        let mut direct = req.placement.clone();
        let expect = match kind {
            JobKind::Global => {
                GlobalDiffusion::new(req.config.clone()).run(&req.netlist, &req.die, &mut direct)
            }
            JobKind::Local => {
                LocalDiffusion::new(req.config.clone()).run(&req.netlist, &req.die, &mut direct)
            }
        };

        for encoding in [PayloadEncoding::Binary, PayloadEncoding::Bookshelf] {
            let reply = send(addr, &req, encoding);
            let resp = match reply {
                Reply::Ok(resp) => resp,
                Reply::Rejected(e) => panic!("rejected: {} ({})", e.message, e.code.as_str()),
            };
            assert_eq!(resp.id, id);
            assert_eq!(resp.steps, expect.steps as u64);
            assert_eq!(resp.rounds, expect.rounds as u64);
            assert_eq!(resp.converged, expect.converged);
            assert_eq!(resp.positions.len(), req.netlist.num_cells());
            for (got, want) in resp.positions.iter().zip(direct.as_slice()) {
                assert_eq!(got.x.to_bits(), want.x.to_bits(), "{encoding:?} x drifted");
                assert_eq!(got.y.to_bits(), want.y.to_bits(), "{encoding:?} y drifted");
            }
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.served, 4);
    assert_eq!(stats.received, 4);
}

#[test]
fn queue_full_requests_are_rejected_with_overloaded() {
    let cfg = ServeConfig {
        queue_capacity: 1,
        workers: 1,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("binds");
    let addr = server.local_addr();

    // Job 1 occupies the single worker for its whole 1200 ms deadline.
    let c1 = std::thread::spawn(move || {
        send(
            addr,
            &request(1, JobKind::Global, unconverging_config(), 1200),
            PayloadEncoding::Binary,
        )
    });
    wait_until("worker busy", || server.stats().started >= 1);

    // Job 2 fills the single queue slot.
    let c2 = std::thread::spawn(move || {
        send(
            addr,
            &request(2, JobKind::Global, unconverging_config(), 1200),
            PayloadEncoding::Binary,
        )
    });
    wait_until("queue full", || server.stats().admitted >= 2);

    // Job 3 must be rejected immediately — no waiting out the deadline.
    let t0 = Instant::now();
    let reply = send(
        addr,
        &request(3, JobKind::Local, DiffusionConfig::default(), 0),
        PayloadEncoding::Binary,
    );
    let rejected_in = t0.elapsed();
    match reply {
        Reply::Rejected(e) => {
            assert_eq!(e.code, ErrorCode::Overloaded);
            assert_eq!(e.id, 3);
        }
        Reply::Ok(_) => panic!("overloaded server accepted a third job"),
    }
    assert!(
        rejected_in < Duration::from_millis(500),
        "backpressure reply took {rejected_in:?}"
    );

    // The two slow jobs expire (mid-run or in queue) rather than hang.
    for c in [c1, c2] {
        match c.join().expect("client thread ok") {
            Reply::Rejected(e) => assert_eq!(e.code, ErrorCode::DeadlineExpired),
            Reply::Ok(r) => panic!("unconverging job claimed convergence: {r:?}"),
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.overloaded, 1);
    assert_eq!(stats.deadline_expired, 2);
    assert_eq!(stats.served, 0);
}

#[test]
fn deadline_expiry_mid_diffusion_reports_partial_progress() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    let t0 = Instant::now();
    let reply = send(
        addr,
        &request(7, JobKind::Global, unconverging_config(), 200),
        PayloadEncoding::Binary,
    );
    let elapsed = t0.elapsed();

    match reply {
        Reply::Rejected(e) => {
            assert_eq!(e.code, ErrorCode::DeadlineExpired);
            assert_eq!(e.id, 7);
            // The job was genuinely cancelled mid-diffusion: it made real
            // progress first (steps are cheap, 200 ms fits thousands).
            assert!(e.steps >= 1, "no partial progress reported");
            assert!(!e.message.is_empty());
        }
        Reply::Ok(r) => panic!("unconverging job finished: {r:?}"),
    }
    // The deadline actually bounded the wall time (generous upper margin
    // for a loaded CI machine).
    assert!(elapsed >= Duration::from_millis(200));
    assert!(
        elapsed < Duration::from_secs(5),
        "deadline ignored: {elapsed:?}"
    );

    let stats = server.shutdown();
    assert_eq!(stats.deadline_expired, 1);
}

#[test]
fn graceful_shutdown_drains_admitted_jobs() {
    let cfg = ServeConfig {
        queue_capacity: 4,
        workers: 1,
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("binds");
    let addr = server.local_addr();

    // Job 1 keeps the worker busy until its 400 ms deadline.
    let c1 = std::thread::spawn(move || {
        send(
            addr,
            &request(1, JobKind::Global, unconverging_config(), 400),
            PayloadEncoding::Binary,
        )
    });
    wait_until("worker busy", || server.stats().started >= 1);

    // Job 2 is admitted but still queued when shutdown begins.
    let req2 = request(2, JobKind::Local, DiffusionConfig::default(), 0);
    let mut direct2 = req2.placement.clone();
    LocalDiffusion::new(req2.config.clone()).run(&req2.netlist, &req2.die, &mut direct2);
    let c2 = std::thread::spawn(move || send(addr, &req2, PayloadEncoding::Binary));
    wait_until("second job admitted", || server.stats().admitted >= 2);

    // Shutdown must drain both: finish job 1 (expiring), then run job 2
    // from the closed queue to completion.
    let stats = server.shutdown();

    match c1.join().expect("client 1 ok") {
        Reply::Rejected(e) => assert_eq!(e.code, ErrorCode::DeadlineExpired),
        Reply::Ok(r) => panic!("unconverging job finished: {r:?}"),
    }
    match c2.join().expect("client 2 ok") {
        Reply::Ok(resp) => {
            assert_eq!(resp.id, 2);
            for (got, want) in resp.positions.iter().zip(direct2.as_slice()) {
                assert_eq!(got.x.to_bits(), want.x.to_bits());
                assert_eq!(got.y.to_bits(), want.y.to_bits());
            }
        }
        Reply::Rejected(e) => panic!("drained job rejected: {} ({})", e.message, e.code.as_str()),
    }

    assert_eq!(stats.admitted, 2);
    assert_eq!(stats.served, 1);
    assert_eq!(stats.deadline_expired, 1);
    assert_eq!(stats.rejected_shutdown, 0);
}

#[test]
fn invalid_config_is_rejected_with_a_typed_error() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    let bad = DiffusionConfig {
        bin_size: -4.0,
        ..DiffusionConfig::default()
    };
    let reply = send(
        addr,
        &request(11, JobKind::Local, bad, 0),
        PayloadEncoding::Binary,
    );
    match reply {
        Reply::Rejected(e) => {
            assert_eq!(e.code, ErrorCode::InvalidConfig);
            assert_eq!(e.id, 11);
            assert!(
                e.message.contains("bin_size"),
                "unhelpful message: {}",
                e.message
            );
        }
        Reply::Ok(_) => panic!("negative bin size accepted"),
    }

    let nan = DiffusionConfig {
        d_max: f64::NAN,
        ..DiffusionConfig::default()
    };
    let reply = send(
        addr,
        &request(12, JobKind::Global, nan, 0),
        PayloadEncoding::Binary,
    );
    assert!(matches!(reply, Reply::Rejected(e) if e.code == ErrorCode::InvalidConfig));

    let stats = server.shutdown();
    assert_eq!(stats.invalid_config, 2);
    assert_eq!(stats.served, 0);
}

#[test]
fn nonsensical_spectral_config_is_rejected_with_a_typed_error() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    // A spectral run with a zero step budget can never advance time: the
    // server must answer with an InvalidConfig error frame, not run it.
    let bad = DiffusionConfig {
        max_steps: 0,
        ..DiffusionConfig::default()
    }
    .with_solver(SolverKind::Spectral);
    let reply = send(
        addr,
        &request(21, JobKind::Global, bad, 0),
        PayloadEncoding::Binary,
    );
    match reply {
        Reply::Rejected(e) => {
            assert_eq!(e.code, ErrorCode::InvalidConfig);
            assert_eq!(e.id, 21);
            assert!(
                e.message.contains("spectral"),
                "unhelpful message: {}",
                e.message
            );
        }
        Reply::Ok(_) => panic!("zero-budget spectral config accepted"),
    }

    // Spectral + paper mirror boundaries is also rejected: the DCT basis
    // encodes the engine's conservative boundary, not the paper's.
    let mirror = DiffusionConfig {
        paper_boundaries: true,
        ..DiffusionConfig::default()
    }
    .with_solver(SolverKind::Spectral);
    let reply = send(
        addr,
        &request(22, JobKind::Global, mirror, 0),
        PayloadEncoding::Binary,
    );
    assert!(matches!(reply, Reply::Rejected(e) if e.code == ErrorCode::InvalidConfig));

    let stats = server.shutdown();
    assert_eq!(stats.invalid_config, 2);
    assert_eq!(stats.served, 0);
}

#[test]
fn spectral_request_over_tcp_matches_direct_spectral_run() {
    // The solver choice must survive the wire: a spectral request run
    // through the server lands bit-identically with an in-process
    // spectral run, and differs from the FTCS answer for the same design.
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    let mut req = busy_request(31, JobKind::Global);
    req.config = req.config.with_solver(SolverKind::Spectral);
    let mut direct = req.placement.clone();
    GlobalDiffusion::new(req.config.clone()).run(&req.netlist, &req.die, &mut direct);

    let mut ftcs = req.placement.clone();
    GlobalDiffusion::new(req.config.clone().with_solver(SolverKind::Ftcs)).run(
        &req.netlist,
        &req.die,
        &mut ftcs,
    );

    let reply = send(addr, &req, PayloadEncoding::Binary);
    let resp = match reply {
        Reply::Ok(resp) => resp,
        Reply::Rejected(e) => panic!("rejected: {} ({})", e.message, e.code.as_str()),
    };
    assert_eq!(resp.id, 31);
    let mut any_differs_from_ftcs = false;
    for (got, (want, f)) in resp
        .positions
        .iter()
        .zip(direct.as_slice().iter().zip(ftcs.as_slice()))
    {
        assert_eq!(got.x.to_bits(), want.x.to_bits());
        assert_eq!(got.y.to_bits(), want.y.to_bits());
        any_differs_from_ftcs |= got.x.to_bits() != f.x.to_bits();
    }
    assert!(
        any_differs_from_ftcs,
        "spectral e2e result is identical to FTCS — solver byte likely dropped on the wire"
    );
    server.shutdown();
}

#[test]
fn malformed_payloads_get_error_replies_not_crashes() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    // Garbage payload inside a well-formed frame: the server answers with
    // a malformed-error frame and keeps the connection usable.
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        write_frame(&mut stream, FrameKind::Request, &[0xAB; 37]).expect("writes");
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .expect("reads")
            .expect("reply present");
        match Reply::from_frame(&frame).expect("decodes") {
            Reply::Rejected(e) => {
                assert_eq!(e.code, ErrorCode::Malformed);
                assert_eq!(e.id, 0, "undecodable request cannot echo an id");
            }
            Reply::Ok(_) => panic!("garbage decoded to a response"),
        }

        // Same connection, now a real request: still served.
        let req = request(21, JobKind::Local, DiffusionConfig::default(), 0);
        let payload = dpm_serve::wire::encode_request(&req, PayloadEncoding::Binary);
        write_frame(&mut stream, FrameKind::Request, &payload).expect("writes");
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .expect("reads")
            .expect("reply present");
        assert!(matches!(
            Reply::from_frame(&frame).expect("decodes"),
            Reply::Ok(resp) if resp.id == 21
        ));
    }

    // Corrupt framing (bad magic): one error reply, then the server drops
    // the connection since the stream position is unrecoverable.
    {
        use std::io::Write as _;
        let mut stream = TcpStream::connect(addr).expect("connects");
        let mut header = Vec::new();
        header.extend_from_slice(b"XXXX");
        header.extend_from_slice(&VERSION.to_le_bytes());
        header.push(1);
        header.extend_from_slice(&0u32.to_le_bytes());
        stream.write_all(&header).expect("writes");
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .expect("reads")
            .expect("reply present");
        assert!(matches!(
            Reply::from_frame(&frame).expect("decodes"),
            Reply::Rejected(e) if e.code == ErrorCode::Malformed
        ));
        assert!(
            read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
                .expect("clean close")
                .is_none(),
            "server kept a corrupt connection open"
        );
    }

    // A response frame sent to the server is also malformed traffic.
    {
        let mut stream = TcpStream::connect(addr).expect("connects");
        write_frame(&mut stream, FrameKind::Error, &[]).expect("writes");
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .expect("reads")
            .expect("reply present");
        assert!(matches!(
            Reply::from_frame(&frame).expect("decodes"),
            Reply::Rejected(e) if e.code == ErrorCode::Malformed
        ));
    }

    let stats = server.shutdown();
    assert_eq!(stats.malformed, 3);
    assert_eq!(stats.served, 1);
    // Sanity: magic constant is what the docs promise.
    assert_eq!(&MAGIC, b"DPMS");
}

#[test]
fn request_log_captures_every_outcome_as_jsonl() {
    let dir = std::env::temp_dir().join("dpm_serve_e2e_log");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join(format!("requests_{}.jsonl", std::process::id()));
    let _ = std::fs::remove_file(&path);

    let cfg = ServeConfig {
        log_path: Some(path.clone()),
        ..ServeConfig::default()
    };
    let server = Server::start("127.0.0.1:0", cfg).expect("binds");
    let addr = server.local_addr();

    let ok = send(
        addr,
        &request(31, JobKind::Local, DiffusionConfig::default(), 0),
        PayloadEncoding::Binary,
    );
    assert!(matches!(ok, Reply::Ok(_)));
    let bad = DiffusionConfig {
        n_u: 0,
        ..DiffusionConfig::default()
    };
    let rejected = send(
        addr,
        &request(32, JobKind::Local, bad, 0),
        PayloadEncoding::Binary,
    );
    assert!(matches!(rejected, Reply::Rejected(_)));

    server.shutdown();

    let text = std::fs::read_to_string(&path).expect("log readable");
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 2, "one JSONL line per request: {text}");
    let ok_line = lines
        .iter()
        .find(|l| l.contains("\"id\":31"))
        .expect("ok line");
    assert!(ok_line.contains("\"outcome\":\"ok\""));
    assert!(ok_line.contains("\"kind\":\"local\""));
    assert!(ok_line.contains("\"design\":\"e2e_31\""));
    assert!(ok_line.contains("\"cells\":") && !ok_line.contains("\"cells\":0,"));
    assert!(ok_line.contains("\"service_ns\":"));
    let bad_line = lines
        .iter()
        .find(|l| l.contains("\"id\":32"))
        .expect("bad line");
    assert!(bad_line.contains("\"outcome\":\"invalid_config\""));
    for l in &lines {
        assert!(l.starts_with('{') && l.ends_with('}'));
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn progress_frames_stream_while_the_job_runs() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    // Ground truth: the same request without streaming.
    let mut plain = busy_request(41, JobKind::Global);
    let baseline = send(addr, &plain, PayloadEncoding::Binary);
    let baseline = match baseline {
        Reply::Ok(resp) => resp,
        Reply::Rejected(e) => panic!("baseline rejected: {}", e.message),
    };

    // Streamed run: a progress frame after every diffusion step.
    plain.progress_stride = 1;
    let mut client = ServeClient::connect(addr).expect("connects");
    let mut updates: Vec<ProgressUpdate> = Vec::new();
    let reply = client
        .request_streaming(&plain, PayloadEncoding::Binary, |p| updates.push(*p))
        .expect("transport ok");
    let resp = match reply {
        Reply::Ok(resp) => resp,
        Reply::Rejected(e) => panic!("streamed run rejected: {}", e.message),
    };

    // At least one in-flight progress frame arrived before the terminal
    // response, and the stream covered every step.
    assert!(
        !updates.is_empty(),
        "no progress frames before the response"
    );
    assert_eq!(updates.len() as u64, resp.steps);
    for (i, p) in updates.iter().enumerate() {
        assert_eq!(p.id, 41);
        assert_eq!(p.step, i as u64 + 1, "steps arrive in order");
        assert!(p.max_density.is_finite());
        assert!(p.movement >= 0.0);
    }
    // FTCS diffusion obeys a maximum principle: the peak computed
    // density never increases step over step.
    for w in updates.windows(2) {
        assert!(
            w[1].max_density <= w[0].max_density + 1e-12,
            "max density rose: {} -> {}",
            w[0].max_density,
            w[1].max_density
        );
    }
    // Cumulative movement is non-decreasing.
    for w in updates.windows(2) {
        assert!(w[1].movement >= w[0].movement - 1e-12);
    }

    // Observation changed nothing: bit-identical to the unstreamed run.
    assert_eq!(resp.steps, baseline.steps);
    assert_eq!(resp.converged, baseline.converged);
    for (got, want) in resp.positions.iter().zip(baseline.positions.iter()) {
        assert_eq!(got.x.to_bits(), want.x.to_bits(), "streaming moved a cell");
        assert_eq!(got.y.to_bits(), want.y.to_bits(), "streaming moved a cell");
    }

    let stats = server.shutdown();
    assert_eq!(stats.served, 2);
    assert_eq!(stats.progress_frames, resp.steps);
}

#[test]
fn stats_snapshot_matches_the_submitted_jobs() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    for id in 1..=3u64 {
        let reply = send(
            addr,
            &busy_request(id, JobKind::Local),
            PayloadEncoding::Binary,
        );
        assert!(matches!(reply, Reply::Ok(_)));
    }
    let bad = DiffusionConfig {
        bin_size: -1.0,
        ..DiffusionConfig::default()
    };
    let reply = send(
        addr,
        &request(4, JobKind::Local, bad, 0),
        PayloadEncoding::Binary,
    );
    assert!(matches!(reply, Reply::Rejected(_)));

    let mut client = ServeClient::connect(addr).expect("connects");
    let stats = client.stats().expect("stats frame");
    assert_eq!(stats.received, 4);
    assert_eq!(stats.admitted, 3);
    assert_eq!(stats.served, 3);
    assert_eq!(stats.invalid_config, 1);
    assert_eq!(stats.queue_depth, 0);
    // One latency sample per run in every histogram.
    assert_eq!(stats.queue_hist.count, 3);
    assert_eq!(stats.service_hist.count, 3);
    assert_eq!(stats.e2e_hist.count, 3);
    // End-to-end covers queue + service, so its mean cannot be smaller.
    assert!(stats.e2e_hist.sum >= stats.service_hist.sum);
    assert!(stats.e2e_hist.percentile(0.5) > 0);
    // Kernel timings were merged from the three completed runs.
    assert!(stats.kernels.ftcs.calls > 0, "no FTCS kernel time recorded");
    assert!(stats.kernels.velocity.calls > 0);

    // The in-process views agree with the wire snapshot.
    assert_eq!(server.stats().served, 3);
    let text = server.metrics_text();
    assert!(text.contains("jobs_served_total 3"), "exposition: {text}");
    assert!(text.contains("requests_received_total 4"));
    assert!(!server.spans().is_empty(), "no job spans recorded");

    server.shutdown();
}

#[test]
fn pipelined_requests_are_answered_in_submission_order() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    let reqs: Vec<JobRequest> = (1..=4u64)
        .map(|id| request(id, JobKind::Local, DiffusionConfig::default(), 0))
        .collect();
    let mut client = ServeClient::connect(addr).expect("connects");
    for req in &reqs {
        client
            .send_request(req, PayloadEncoding::Binary)
            .expect("send ok");
    }
    for req in &reqs {
        match client.recv_reply().expect("recv ok") {
            Reply::Ok(resp) => assert_eq!(resp.id, req.id, "replies out of order"),
            Reply::Rejected(e) => panic!("pipelined job rejected: {}", e.message),
        }
    }

    let stats = server.shutdown();
    assert_eq!(stats.served, 4);
}

#[test]
fn clients_unaware_of_progress_frames_still_get_their_reply() {
    let server = Server::start("127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();

    // A "legacy" reader: consumes frames manually and only understands
    // terminal reply kinds, skipping anything else — the documented
    // upgrade path for old clients.
    let mut streamed = busy_request(51, JobKind::Global);
    streamed.progress_stride = 4;

    let mut stream = TcpStream::connect(addr).expect("connects");
    let payload = dpm_serve::wire::encode_request(&streamed, PayloadEncoding::Binary);
    write_frame(&mut stream, FrameKind::Request, &payload).expect("writes");
    let mut skipped = 0u64;
    let resp = loop {
        let frame = read_frame(&mut stream, DEFAULT_MAX_FRAME_LEN)
            .expect("reads")
            .expect("frame present");
        match frame.kind {
            FrameKind::Response | FrameKind::Error => {
                break Reply::from_frame(&frame).expect("decodes")
            }
            _ => skipped += 1,
        }
    };
    assert!(skipped >= 1, "expected in-flight frames to skip");
    assert!(matches!(resp, Reply::Ok(resp) if resp.id == 51));

    server.shutdown();
}
