//! Adversarial-input tests: the Bookshelf parsers must return `Err`,
//! never panic, on truncated, mutated, or garbage files.
//!
//! The corpus is deterministic — every mutation is derived from
//! `dpm-rng` with fixed seeds, so a failure reproduces exactly.

use dpm_bookshelf::{load_design, parse_nets, parse_nodes, parse_pl, parse_scl, BookshelfDesign};
use dpm_gen::CircuitSpec;
use dpm_rng::Rng;

/// A small valid design rendered to the four Bookshelf texts.
fn valid_files() -> [String; 4] {
    let bench = CircuitSpec::with_size("robust", 60, 0xF00D)
        .with_macros(1)
        .generate();
    let design = BookshelfDesign::from_parts(&bench.netlist, &bench.die, &bench.placement);
    [
        design.write_nodes(),
        design.write_nets(),
        design.write_pl(),
        design.write_scl(),
    ]
}

/// Truncates `text` at a char boundary near `at`.
fn truncate_at(text: &str, at: usize) -> &str {
    let mut cut = at.min(text.len());
    while !text.is_char_boundary(cut) {
        cut -= 1;
    }
    &text[..cut]
}

/// `load_design` with each file slot swapped for `mutant`; parsing may
/// fail, but must not panic.
fn feed(files: &[String; 4], slot: usize, mutant: &str) {
    let texts: Vec<&str> = files
        .iter()
        .enumerate()
        .map(|(i, f)| if i == slot { mutant } else { f.as_str() })
        .collect();
    let _ = load_design(texts[0], texts[1], texts[2], texts[3]);
}

#[test]
fn truncated_files_error_never_panic() {
    let files = valid_files();
    let mut rng = Rng::seed_from_u64(0x7254_4E43);
    for slot in 0..4 {
        let text = &files[slot];
        // 64 deterministic cut points per file, plus the degenerate ones.
        let mut cuts: Vec<usize> = (0..64).map(|_| rng.random_range(0..text.len())).collect();
        cuts.push(0);
        cuts.push(text.len() - 1);
        for cut in cuts {
            feed(&files, slot, truncate_at(text, cut));
        }
    }
}

#[test]
fn byte_flips_error_never_panic() {
    let files = valid_files();
    let mut rng = Rng::seed_from_u64(0x464C_4950);
    for slot in 0..4 {
        let text = &files[slot];
        for _ in 0..96 {
            let mut bytes = text.as_bytes().to_vec();
            let at = rng.random_range(0..bytes.len());
            bytes[at] ^= (rng.next_u64() % 255 + 1) as u8;
            // Keep it text: lossy conversion mirrors what a reader that
            // replaces invalid UTF-8 would hand the parser.
            let mutant = String::from_utf8_lossy(&bytes).into_owned();
            feed(&files, slot, &mutant);
        }
    }
}

#[test]
fn token_replacements_error_never_panic() {
    let files = valid_files();
    let garbage = [
        "NaN",
        "-NaN",
        "inf",
        "-inf",
        "1e999",
        "-1e999",
        "0",
        "-0",
        "",
        ":",
        "::",
        "terminal",
        "NetDegree",
        "CoreRow",
        "End",
        "/FIXED",
        "\u{fffd}",
        "π",
        "99999999999999999999",
    ];
    let mut rng = Rng::seed_from_u64(0x4741_5242);
    for slot in 0..4 {
        let text = &files[slot];
        for _ in 0..96 {
            let mut tokens: Vec<&str> = text.split(' ').collect();
            if tokens.is_empty() {
                continue;
            }
            let at = rng.random_range(0..tokens.len());
            tokens[at] = garbage[rng.random_range(0..garbage.len())];
            let mutant = tokens.join(" ");
            feed(&files, slot, &mutant);
        }
    }
}

#[test]
fn pure_garbage_files_error_never_panic() {
    let files = valid_files();
    let mut rng = Rng::seed_from_u64(0x4741_5242);
    for slot in 0..4 {
        for len in [0usize, 1, 17, 255, 4096] {
            let mutant: String = (0..len)
                .map(|_| char::from_u32(rng.random_range(32u32..0xFF)).unwrap_or(' '))
                .collect();
            feed(&files, slot, &mutant);
        }
        // Binary-ish garbage surviving lossy UTF-8 conversion.
        let raw: Vec<u8> = (0..512).map(|_| (rng.next_u64() & 0xFF) as u8).collect();
        let mutant = String::from_utf8_lossy(&raw).into_owned();
        feed(&files, slot, &mutant);
    }
}

#[test]
fn nan_row_geometry_is_a_typed_error_not_a_panic() {
    let files = valid_files();
    // NaN parses as a valid f64, so it sails through parse_scl; the die
    // assembly must still refuse it.
    let scl = "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : NaN\n Height : 12\n Sitespacing : 1\n SubrowOrigin : 0 NumSites : 100\nEnd\n";
    let err = load_design(&files[0], &files[1], &files[2], scl).unwrap_err();
    assert!(
        matches!(
            err,
            dpm_bookshelf::ParseBookshelfError::DegenerateRows { .. }
        ),
        "got {err:?}"
    );
    assert!(err.to_string().contains("degenerate"));

    // Zero-height rows: die would have no rows.
    let scl = "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n Height : 0\n Sitespacing : 1\n SubrowOrigin : 0 NumSites : 100\nEnd\n";
    let err = load_design(&files[0], &files[1], &files[2], scl).unwrap_err();
    assert!(matches!(
        err,
        dpm_bookshelf::ParseBookshelfError::DegenerateRows { .. }
    ));

    // Zero-width rows.
    let scl = "UCLA scl 1.0\nNumRows : 1\nCoreRow Horizontal\n Coordinate : 0\n Height : 12\n Sitespacing : 1\n SubrowOrigin : 0 NumSites : 0\nEnd\n";
    let err = load_design(&files[0], &files[1], &files[2], scl).unwrap_err();
    assert!(matches!(
        err,
        dpm_bookshelf::ParseBookshelfError::DegenerateRows { .. }
    ));
}

#[test]
fn individual_parsers_survive_the_corpus_too() {
    // The component parsers get the same treatment as the assembled
    // loader — callers use them directly for `.aux`-driven loading.
    let files = valid_files();
    let mut rng = Rng::seed_from_u64(0x5041_5253);
    let parsers: [fn(&str) -> bool; 4] = [
        |t| parse_nodes(t).is_ok(),
        |t| parse_nets(t).is_ok(),
        |t| parse_pl(t).is_ok(),
        |t| parse_scl(t).is_ok(),
    ];
    for (slot, parse) in parsers.iter().enumerate() {
        let text = &files[slot];
        assert!(parse(text), "valid file {slot} must parse");
        for _ in 0..64 {
            let cut = rng.random_range(0..text.len());
            let _ = parse(truncate_at(text, cut));
            let mut bytes = text.as_bytes().to_vec();
            let at = rng.random_range(0..bytes.len());
            bytes[at] = (rng.next_u64() & 0xFF) as u8;
            let _ = parse(&String::from_utf8_lossy(&bytes));
        }
    }
}
