#![warn(missing_docs)]

//! SVG visualization of placements and placement migrations.
//!
//! Renders the pictures the paper uses to make its qualitative argument:
//! placement snapshots (Fig. 14), movement-vector plots showing how each
//! legalizer perturbed the design (Figs. 15–18), and density heatmaps.
//! Output is plain SVG text — no external dependencies — written by the
//! benchmark harness next to its result tables.
//!
//! # Examples
//!
//! ```
//! use dpm_gen::CircuitSpec;
//! use dpm_viz::SvgScene;
//!
//! let bench = CircuitSpec::small(2).generate();
//! let svg = SvgScene::new(bench.die.outline())
//!     .with_placement(&bench.netlist, &bench.placement)
//!     .render();
//! assert!(svg.starts_with("<svg"));
//! assert!(svg.ends_with("</svg>\n"));
//! ```

use dpm_geom::{Point, Rect};
use dpm_netlist::{CellKind, Netlist};
use dpm_place::{DensityMap, Placement};
use std::fmt::Write as _;

/// Builder for an SVG picture of a die region.
///
/// Coordinates are flipped so y grows upward (die convention), and the
/// viewport is normalized to a fixed pixel width.
#[derive(Debug, Clone)]
pub struct SvgScene {
    region: Rect,
    width_px: f64,
    body: String,
}

impl SvgScene {
    /// Creates a scene covering `region`, rendered 800 px wide.
    pub fn new(region: Rect) -> Self {
        Self {
            region,
            width_px: 800.0,
            body: String::new(),
        }
    }

    /// Sets the output width in pixels (height follows the aspect ratio).
    ///
    /// # Panics
    ///
    /// Panics if `width_px` is not positive.
    pub fn with_width_px(mut self, width_px: f64) -> Self {
        assert!(width_px > 0.0, "width must be positive");
        self.width_px = width_px;
        self
    }

    fn scale(&self) -> f64 {
        self.width_px / self.region.width()
    }

    fn tx(&self, p: Point) -> (f64, f64) {
        let s = self.scale();
        ((p.x - self.region.llx) * s, (self.region.ury - p.y) * s)
    }

    /// Draws every cell: movable cells colored by their position (hue
    /// encodes original location so order disruption is visible), macros
    /// dark gray, pads omitted.
    pub fn with_placement(mut self, netlist: &Netlist, placement: &Placement) -> Self {
        let s = self.scale();
        for cell in netlist.cell_ids() {
            let c = netlist.cell(cell);
            if c.kind == CellKind::Pad {
                continue;
            }
            let r = placement.cell_rect(netlist, cell);
            let (x, y_top) = self.tx(Point::new(r.llx, r.ury));
            let color = if c.kind == CellKind::FixedMacro {
                "#444444".to_string()
            } else {
                // Hue from the cell's position within the region.
                let hx = ((r.llx - self.region.llx) / self.region.width()).clamp(0.0, 1.0);
                let hy = ((r.lly - self.region.lly) / self.region.height()).clamp(0.0, 1.0);
                format!("hsl({:.0}, 70%, {:.0}%)", hx * 300.0, 35.0 + hy * 30.0)
            };
            let _ = writeln!(
                self.body,
                r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="{}" />"#,
                x,
                y_top,
                r.width() * s,
                r.height() * s,
                color
            );
        }
        self
    }

    /// Draws an arrow for every cell that moved more than `min_move`
    /// between `before` and `after` — the paper's Figs. 15–18.
    pub fn with_movements(
        mut self,
        netlist: &Netlist,
        before: &Placement,
        after: &Placement,
        min_move: f64,
    ) -> Self {
        for cell in netlist.movable_cell_ids() {
            let a = before.cell_center(netlist, cell);
            let b = after.cell_center(netlist, cell);
            if (b - a).length() < min_move {
                continue;
            }
            let (x1, y1) = self.tx(a);
            let (x2, y2) = self.tx(b);
            let _ = writeln!(
                self.body,
                r##"<line x1="{x1:.2}" y1="{y1:.2}" x2="{x2:.2}" y2="{y2:.2}" stroke="#c0392b" stroke-width="0.8" marker-end="url(#arr)" />"##
            );
        }
        self
    }

    /// Draws polylines (e.g. cell migration trajectories, routed paths)
    /// in world coordinates.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_geom::{Point, Rect};
    /// use dpm_viz::SvgScene;
    /// let svg = SvgScene::new(Rect::new(0.0, 0.0, 100.0, 100.0))
    ///     .with_polylines(&[vec![Point::new(0.0, 0.0), Point::new(50.0, 80.0)]], "black")
    ///     .render();
    /// assert!(svg.contains("<polyline"));
    /// ```
    pub fn with_polylines(mut self, lines: &[Vec<Point>], stroke: &str) -> Self {
        for line in lines {
            if line.len() < 2 {
                continue;
            }
            let pts: Vec<String> = line
                .iter()
                .map(|&p| {
                    let (x, y) = self.tx(p);
                    format!("{x:.1},{y:.1}")
                })
                .collect();
            let _ = writeln!(
                self.body,
                r#"<polyline points="{}" fill="none" stroke="{stroke}" stroke-width="1.2"/>"#,
                pts.join(" ")
            );
        }
        self
    }

    /// Draws the density map as a translucent heat overlay.
    pub fn with_density(mut self, map: &DensityMap, d_max: f64) -> Self {
        let s = self.scale();
        let grid = map.grid();
        for idx in grid.iter() {
            let d = map.density(idx);
            if d <= 0.0 {
                continue;
            }
            let r = grid.bin_rect(idx);
            let (x, y_top) = self.tx(Point::new(r.llx, r.ury));
            let heat = (d / (2.0 * d_max)).clamp(0.0, 1.0);
            let _ = writeln!(
                self.body,
                r#"<rect x="{:.2}" y="{:.2}" width="{:.2}" height="{:.2}" fill="rgb(255,{:.0},0)" fill-opacity="{:.2}" />"#,
                x,
                y_top,
                r.width() * s,
                r.height() * s,
                (1.0 - heat) * 200.0,
                0.15 + 0.5 * heat,
            );
        }
        self
    }

    /// Finalizes the SVG document.
    pub fn render(&self) -> String {
        let h_px = self.region.height() * self.scale();
        let mut out = String::new();
        let _ = writeln!(
            out,
            r#"<svg xmlns="http://www.w3.org/2000/svg" width="{:.0}" height="{:.0}" viewBox="0 0 {:.0} {:.0}">"#,
            self.width_px, h_px, self.width_px, h_px
        );
        let _ = writeln!(
            out,
            r##"<defs><marker id="arr" viewBox="0 0 10 10" refX="9" refY="5" markerWidth="5" markerHeight="5" orient="auto"><path d="M0,0 L10,5 L0,10 z" fill="#c0392b"/></marker></defs>"##
        );
        let _ = writeln!(
            out,
            r##"<rect width="100%" height="100%" fill="#fdfdfd" stroke="#333"/>"##
        );
        out.push_str(&self.body);
        out.push_str("</svg>\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_gen::CircuitSpec;

    #[test]
    fn renders_well_formed_svg() {
        let bench = CircuitSpec::small(1).generate();
        let svg = SvgScene::new(bench.die.outline())
            .with_placement(&bench.netlist, &bench.placement)
            .render();
        assert!(svg.starts_with("<svg"));
        assert!(svg.ends_with("</svg>\n"));
        assert_eq!(svg.matches("<svg").count(), 1);
        // Every opened rect is self-closed.
        assert!(svg.matches("<rect").count() > 100);
    }

    #[test]
    fn movements_draw_arrows_only_over_threshold() {
        let bench = CircuitSpec::small(2).generate();
        let mut moved = bench.placement.clone();
        let some_cell = bench.netlist.movable_cell_ids().next().expect("cells");
        let p = moved.get(some_cell);
        moved.set(some_cell, Point::new(p.x + 100.0, p.y));
        let svg = SvgScene::new(bench.die.outline())
            .with_movements(&bench.netlist, &bench.placement, &moved, 50.0)
            .render();
        assert_eq!(svg.matches("<line").count(), 1);
        let svg_none = SvgScene::new(bench.die.outline())
            .with_movements(&bench.netlist, &bench.placement, &moved, 500.0)
            .render();
        assert_eq!(svg_none.matches("<line").count(), 0);
    }

    #[test]
    fn density_overlay_renders() {
        use dpm_place::{BinGrid, DensityMap};
        let bench = CircuitSpec::small(3).generate();
        let grid = BinGrid::new(bench.die.outline(), 3.0 * bench.die.row_height());
        let map = DensityMap::from_placement(&bench.netlist, &bench.placement, grid);
        let svg = SvgScene::new(bench.die.outline())
            .with_density(&map, 1.0)
            .render();
        assert!(svg.contains("fill-opacity"));
    }

    #[test]
    fn macros_render_dark() {
        let bench = CircuitSpec::small(4).with_macros(1).generate();
        let svg = SvgScene::new(bench.die.outline())
            .with_placement(&bench.netlist, &bench.placement)
            .render();
        assert!(svg.contains("#444444"));
    }
}
