//! The discrete diffusion engine: FTCS density evolution and per-axis
//! velocities over a wall-aware bin grid, planar ([`Dims::D2`]) or
//! volumetric ([`Dims::D3`]).

use crate::dims::Dims;
use crate::telemetry::KernelTimers;
use crate::velocity::interpolate_velocity;
use dpm_geom::{Point, Point3, Vector, Vector3};
use dpm_par::{parallel_for_chunks, parallel_for_chunks2, parallel_for_chunks3, ThreadPool};
use dpm_place::DensityMap;
use std::time::Instant;

/// Density below which a bin is considered empty for velocity purposes
/// (guards the division in Eq. 5).
const DENSITY_FLOOR: f64 = 1e-9;

/// X-major lines per parallel work chunk for the FTCS and velocity kernels.
///
/// Fixed (never derived from the thread count) so the work decomposition
/// — and therefore every floating-point result — is identical no matter
/// how many workers execute it.
const ROW_CHUNK: usize = 16;

/// Discrete diffusion simulator over a [`Dims`] bin grid.
///
/// The engine holds the evolving density field `d(n)`, a *wall* mask
/// (bins covered by fixed macros or outside the image — density never
/// updates, velocity is zero, cells may not enter), and a *frozen* mask
/// (bins excluded from the current local-diffusion window — treated like
/// walls for the duration of a round, per Algorithm 2).
///
/// Coordinates are bin coordinates: bin `(j, k)` spans
/// `[j, j+1) × [k, k+1)` with its center at `(j+0.5, k+0.5)`; on a
/// volumetric grid tier `z` spans `[z, z+1)` the same way. The kernels
/// are written per axis, so a [`Dims::D3`] grid simply diffuses along
/// three axes; on a [`Dims::D2`] grid the z axis does not exist and the
/// arithmetic is bit-identical to the historical planar engine.
///
/// # Examples
///
/// The worked example of the paper's Fig. 1: with `Δt = 0.2`, a bin at
/// density 1.0 whose neighbors hold 1.4/0.4 horizontally and 1.6/0.4
/// vertically steps to 0.98 and gets velocity `(0.5, 0.6)`:
///
/// ```
/// use dpm_diffusion::DiffusionEngine;
///
/// let mut d = vec![1.0; 16]; // 4×4 grid
/// let at = |j: usize, k: usize| k * 4 + j;
/// d[at(1, 1)] = 1.0;
/// d[at(0, 1)] = 1.4;
/// d[at(2, 1)] = 0.4;
/// d[at(1, 0)] = 1.6;
/// d[at(1, 2)] = 0.4;
/// let mut e = DiffusionEngine::from_raw(4, 4, d, None);
///
/// e.compute_velocities();
/// let v = e.bin_velocity(1, 1);
/// assert!((v.x - 0.5).abs() < 1e-12);
/// assert!((v.y - 0.6).abs() < 1e-12);
///
/// e.step_density(0.2);
/// assert!((e.density(1, 1) - 0.98).abs() < 1e-12);
/// ```
#[derive(Debug, Clone)]
pub struct DiffusionEngine {
    dims: Dims,
    density: Vec<f64>,
    next: Vec<f64>,
    wall: Vec<bool>,
    frozen: Vec<bool>,
    /// Per-axis velocity buffers; `vel[2]` is empty on a planar grid.
    vel: [Vec<f64>; 3],
    conservative: bool,
    pool: ThreadPool,
    timers: KernelTimers,
}

/// Immutable view of the density field and masks, shared by the serial
/// and parallel kernel paths so their arithmetic cannot diverge.
#[derive(Clone, Copy)]
struct FieldView<'a> {
    dims: Dims,
    density: &'a [f64],
    wall: &'a [bool],
    frozen: &'a [bool],
    conservative: bool,
}

impl FieldView<'_> {
    /// Flat index of the neighbor of bin `idx = [j, k, z]` one step in
    /// direction `dir` along `axis`, if it exists and is live.
    #[inline]
    fn live_neighbor(&self, idx: [usize; 3], axis: usize, dir: isize) -> Option<usize> {
        let n = [self.dims.nx(), self.dims.ny(), self.dims.nz()];
        let c = idx[axis] as isize + dir;
        if c < 0 || c >= n[axis] as isize {
            return None;
        }
        let mut q = idx;
        q[axis] = c as usize;
        let i = self.dims.flat(q[0], q[1], q[2]);
        if self.wall[i] || self.frozen[i] {
            None
        } else {
            Some(i)
        }
    }

    /// Density of the neighbor of `idx` along `axis` in direction `dir`,
    /// with the paper's mirror boundary rule: if the neighbor is outside
    /// the grid, a wall, or frozen, the *opposite* neighbor's density is
    /// used (and the bin's own density if that is unavailable too), which
    /// makes the normal gradient zero.
    fn neighbor_density(&self, idx: [usize; 3], axis: usize, dir: isize) -> f64 {
        match self.live_neighbor(idx, axis, dir) {
            Some(i) => self.density[i],
            None => match self.live_neighbor(idx, axis, -dir) {
                Some(i) => self.density[i],
                None => self.density[self.dims.flat(idx[0], idx[1], idx[2])],
            },
        }
    }

    /// Like [`neighbor_density`](Self::neighbor_density) but with the
    /// conservative ghost (`d_ghost = d_center`) when enabled. Used only
    /// by the density step; velocities always use the mirror rule so the
    /// component normal to a boundary is exactly zero.
    fn neighbor_density_for_step(&self, idx: [usize; 3], axis: usize, dir: isize) -> f64 {
        if self.conservative {
            match self.live_neighbor(idx, axis, dir) {
                Some(i) => self.density[i],
                None => self.density[self.dims.flat(idx[0], idx[1], idx[2])],
            }
        } else {
            self.neighbor_density(idx, axis, dir)
        }
    }

    /// Velocity field (Eq. 5) of x-major lines `l0..l1`, written into the
    /// per-axis slices of `out` (which cover exactly those lines).
    /// `out.len()` is the grid's `ndim`.
    fn velocity_lines(&self, l0: usize, l1: usize, out: &mut [&mut [f64]]) {
        let nx = self.dims.nx();
        let ny = self.dims.ny();
        for l in l0..l1 {
            let (k, z) = (l % ny, l / ny);
            for j in 0..nx {
                let i = l * nx + j;
                let o = (l - l0) * nx + j;
                if self.wall[i] || self.frozen[i] {
                    for v in out.iter_mut() {
                        v[o] = 0.0;
                    }
                    continue;
                }
                let d = self.density[i];
                if d <= DENSITY_FLOOR {
                    for v in out.iter_mut() {
                        v[o] = 0.0;
                    }
                    continue;
                }
                let idx = [j, k, z];
                for (axis, v) in out.iter_mut().enumerate() {
                    let dp = self.neighbor_density(idx, axis, 1);
                    let dm = self.neighbor_density(idx, axis, -1);
                    v[o] = -(dp - dm) / (2.0 * d);
                }
            }
        }
    }

    /// FTCS update of x-major lines `l0..l1`, written into `out` (which
    /// covers exactly those lines).
    fn ftcs_lines(&self, l0: usize, l1: usize, half: f64, out: &mut [f64]) {
        let nx = self.dims.nx();
        let ny = self.dims.ny();
        let ndim = self.dims.ndim();
        for l in l0..l1 {
            let (k, z) = (l % ny, l / ny);
            for j in 0..nx {
                let i = l * nx + j;
                let o = (l - l0) * nx + j;
                if self.wall[i] || self.frozen[i] {
                    out[o] = self.density[i];
                    continue;
                }
                let d = self.density[i];
                let idx = [j, k, z];
                let mut acc = d;
                for axis in 0..ndim {
                    let dp = self.neighbor_density_for_step(idx, axis, 1);
                    let dm = self.neighbor_density_for_step(idx, axis, -1);
                    acc += half * (dp + dm - 2.0 * d);
                }
                out[o] = acc;
            }
        }
    }
}

impl DiffusionEngine {
    /// Creates an engine from a measured [`DensityMap`] (macro bins become
    /// walls).
    pub fn from_density_map(map: &DensityMap) -> Self {
        Self::from_raw(
            map.grid().nx(),
            map.grid().ny(),
            map.densities().to_vec(),
            Some(map.fixed_mask().to_vec()),
        )
    }

    /// Creates a planar engine from raw row-major density values and an
    /// optional wall mask.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match `nx * ny` or the grid is
    /// empty.
    pub fn from_raw(nx: usize, ny: usize, density: Vec<f64>, wall: Option<Vec<bool>>) -> Self {
        Self::from_raw_dims(Dims::d2(nx, ny), density, wall)
    }

    /// Creates a volumetric engine from raw plane-major density values
    /// (layout `(z·ny + k)·nx + j`) and an optional wall mask.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match `nx * ny * nz` or the
    /// grid is empty.
    pub fn from_raw_3d(
        nx: usize,
        ny: usize,
        nz: usize,
        density: Vec<f64>,
        wall: Option<Vec<bool>>,
    ) -> Self {
        Self::from_raw_dims(Dims::d3(nx, ny, nz), density, wall)
    }

    /// Creates an engine of the given [`Dims`] from raw density values and
    /// an optional wall mask.
    ///
    /// # Panics
    ///
    /// Panics if the buffer lengths do not match `dims.len()`.
    pub fn from_raw_dims(dims: Dims, density: Vec<f64>, wall: Option<Vec<bool>>) -> Self {
        let n = dims.len();
        assert_eq!(density.len(), n, "density buffer length mismatch");
        let wall = wall.unwrap_or_else(|| vec![false; n]);
        assert_eq!(wall.len(), n, "wall buffer length mismatch");
        let vz = if dims.ndim() == 3 {
            vec![0.0; n]
        } else {
            Vec::new()
        };
        Self {
            dims,
            next: density.clone(),
            density,
            wall,
            frozen: vec![false; n],
            vel: [vec![0.0; n], vec![0.0; n], vz],
            conservative: true,
            pool: ThreadPool::single(),
            timers: KernelTimers::default(),
        }
    }

    /// Reloads density and walls from a [`DensityMap`] of the same grid,
    /// reusing every existing buffer (no allocation). Frozen bins and
    /// velocities are cleared; thread pool, boundary rule and kernel
    /// timers are kept.
    ///
    /// This is the hot path of the local-diffusion round loop, which
    /// re-measures the placement every round (dynamic density update).
    ///
    /// # Panics
    ///
    /// Panics if the map's grid dimensions do not match the engine's.
    pub fn reload_from_density_map(&mut self, map: &DensityMap) {
        assert_eq!(
            Dims::d2(map.grid().nx(), map.grid().ny()),
            self.dims,
            "density map grid does not match engine grid"
        );
        self.density.copy_from_slice(map.densities());
        self.wall.copy_from_slice(map.fixed_mask());
        self.frozen.iter_mut().for_each(|f| *f = false);
        for axis in &mut self.vel {
            axis.iter_mut().for_each(|v| *v = 0.0);
        }
    }

    /// Switches between a conservative boundary rule (the default) and
    /// the paper's literal rule.
    ///
    /// The paper (Section V-B) substitutes the *opposite* neighbor's
    /// density for a missing neighbor at chip/macro boundaries. That makes
    /// the worked examples of its Fig. 5 exact, but the resulting density
    /// step does not conserve mass: flow toward a boundary is
    /// double-counted by the boundary bin, so after density-map
    /// manipulation (Eq. 8) the equilibrium can drift above `d_max` and
    /// global diffusion never reaches its stopping criterion. With
    /// `conservative = true` (the default) the engine instead uses the
    /// bin's own density as the ghost value — a standard zero-flux
    /// Neumann discretization that conserves the total live density
    /// exactly. Velocity computation always uses the paper's mirror rule,
    /// which guarantees zero velocity normal to every boundary.
    ///
    /// Pass `false` to reproduce the paper's printed boundary updates
    /// (used by the Fig. 5 regression tests and the ablation bench).
    pub fn set_conservative_boundaries(&mut self, conservative: bool) {
        self.conservative = conservative;
    }

    /// The grid shape.
    #[inline]
    pub fn dims(&self) -> Dims {
        self.dims
    }

    /// Number of spatial axes (2 or 3).
    #[inline]
    pub fn ndim(&self) -> usize {
        self.dims.ndim()
    }

    /// Grid width in bins.
    #[inline]
    pub fn nx(&self) -> usize {
        self.dims.nx()
    }

    /// Grid height in bins.
    #[inline]
    pub fn ny(&self) -> usize {
        self.dims.ny()
    }

    /// Number of tiers (1 for a planar grid).
    #[inline]
    pub fn nz(&self) -> usize {
        self.dims.nz()
    }

    #[inline]
    fn at(&self, j: usize, k: usize) -> usize {
        debug_assert!(j < self.nx() && k < self.ny());
        k * self.nx() + j
    }

    /// Density of bin `(j, k)` (tier 0 on a volumetric grid).
    #[inline]
    pub fn density(&self, j: usize, k: usize) -> f64 {
        self.density[self.at(j, k)]
    }

    /// Density of bin `(j, k, z)`.
    #[inline]
    pub fn density3(&self, j: usize, k: usize, z: usize) -> f64 {
        self.density[self.dims.flat(j, k, z)]
    }

    /// Overwrites the density of bin `(j, k)` (used by tests and by the
    /// dynamic density update).
    #[inline]
    pub fn set_density(&mut self, j: usize, k: usize, d: f64) {
        let i = self.at(j, k);
        self.density[i] = d;
    }

    /// Raw plane-major density buffer.
    #[inline]
    pub fn densities(&self) -> &[f64] {
        &self.density
    }

    /// Replaces the whole density field (dynamic density update).
    ///
    /// # Panics
    ///
    /// Panics if the buffer length does not match the grid.
    pub fn load_densities(&mut self, density: &[f64]) {
        assert_eq!(
            density.len(),
            self.density.len(),
            "density buffer length mismatch"
        );
        self.density.copy_from_slice(density);
    }

    /// `true` if bin `(j, k)` is a wall (fixed macro).
    #[inline]
    pub fn is_wall(&self, j: usize, k: usize) -> bool {
        self.wall[self.at(j, k)]
    }

    /// `true` if bin `(j, k, z)` is a wall.
    #[inline]
    pub fn is_wall3(&self, j: usize, k: usize, z: usize) -> bool {
        self.wall[self.dims.flat(j, k, z)]
    }

    /// Plane-major wall mask.
    #[inline]
    pub fn wall_mask(&self) -> &[bool] {
        &self.wall
    }

    /// Plane-major frozen mask.
    #[inline]
    pub fn frozen_mask(&self) -> &[bool] {
        &self.frozen
    }

    /// `true` if bin `(j, k)` is frozen out of the current diffusion
    /// window.
    #[inline]
    pub fn is_frozen(&self, j: usize, k: usize) -> bool {
        self.frozen[self.at(j, k)]
    }

    /// `true` if the bin participates in diffusion (neither wall nor
    /// frozen).
    #[inline]
    pub fn is_live(&self, j: usize, k: usize) -> bool {
        let i = self.at(j, k);
        !self.wall[i] && !self.frozen[i]
    }

    /// Installs a frozen mask (from [`identify_windows`]); `true` entries
    /// are excluded from diffusion. Wall bins stay walls regardless.
    ///
    /// # Panics
    ///
    /// Panics if the mask length does not match the grid.
    ///
    /// [`identify_windows`]: crate::identify_windows
    pub fn set_frozen_mask(&mut self, frozen: &[bool]) {
        assert_eq!(
            frozen.len(),
            self.frozen.len(),
            "frozen mask length mismatch"
        );
        self.frozen.copy_from_slice(frozen);
    }

    /// Unfreezes every bin (global diffusion mode).
    pub fn clear_frozen(&mut self) {
        self.frozen.iter_mut().for_each(|f| *f = false);
    }

    /// Number of live (diffusing) bins.
    pub fn live_bins(&self) -> usize {
        self.wall
            .iter()
            .zip(&self.frozen)
            .filter(|(&w, &f)| !w && !f)
            .count()
    }

    /// Maximum density over live bins (0 if none).
    pub fn max_live_density(&self) -> f64 {
        let mut m = 0.0f64;
        for i in 0..self.density.len() {
            if !self.wall[i] && !self.frozen[i] {
                m = m.max(self.density[i]);
            }
        }
        m
    }

    /// Sum of density over live bins.
    pub fn total_live_density(&self) -> f64 {
        let mut s = 0.0;
        for i in 0..self.density.len() {
            if !self.wall[i] && !self.frozen[i] {
                s += self.density[i];
            }
        }
        s
    }

    /// Total overflow `Σ max(d − d_max, 0)` over live bins.
    pub fn total_overflow(&self, d_max: f64) -> f64 {
        let mut s = 0.0;
        for i in 0..self.density.len() {
            if !self.wall[i] && !self.frozen[i] {
                s += (self.density[i] - d_max).max(0.0);
            }
        }
        s
    }

    /// Number of worker threads the kernels may use (1 = serial).
    ///
    /// The FTCS update and the velocity field are embarrassingly parallel
    /// over x-major bin lines, cell advection over cell chunks; on large
    /// grids (hundreds of bins per side) extra threads cut the kernel time
    /// roughly linearly on multicore hardware. Work is decomposed into
    /// fixed chunks independent of the thread count, so results are
    /// bit-identical to the serial path.
    pub fn set_threads(&mut self, threads: usize) {
        self.pool = ThreadPool::new(threads);
    }

    /// The worker-thread count currently configured.
    #[inline]
    pub fn threads(&self) -> usize {
        self.pool.threads()
    }

    /// The worker pool the engine's kernels run on (advection borrows it
    /// so the whole loop shares one pool configuration).
    #[inline]
    pub fn pool(&self) -> &ThreadPool {
        &self.pool
    }

    /// Accumulated per-kernel wall-time counters for this engine.
    #[inline]
    pub fn kernel_timers(&self) -> &KernelTimers {
        &self.timers
    }

    /// Mutable access to the kernel counters (the diffusion runners record
    /// advection and splat time here so one struct holds the whole loop).
    #[inline]
    pub fn kernel_timers_mut(&mut self) -> &mut KernelTimers {
        &mut self.timers
    }

    /// Advances the density field by one FTCS step (Eq. 4):
    ///
    /// `d(n+1) = d(n) + Σ_axis Δt/2·(d_+ + d_− − 2d)`
    ///
    /// with mirror substitution at chip/macro boundaries (Section V-B).
    /// Wall and frozen bins do not update. On a planar grid the sum runs
    /// over x and y — exactly the paper's Eq. 4; a volumetric grid adds
    /// the tier axis.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `dt` is outside the stability region
    /// `(0, 1/ndim]`.
    pub fn step_density(&mut self, dt: f64) {
        debug_assert!(
            dt > 0.0 && dt * self.dims.ndim() as f64 <= 1.0,
            "dt outside FTCS stability region"
        );
        let half = dt / 2.0;
        let start = Instant::now();
        let view = FieldView {
            dims: self.dims,
            density: &self.density,
            wall: &self.wall,
            frozen: &self.frozen,
            conservative: self.conservative,
        };
        let nx = self.dims.nx();
        parallel_for_chunks(
            &self.pool,
            &mut self.next,
            ROW_CHUNK * nx,
            |_, range, out| {
                view.ftcs_lines(range.start / nx, range.end / nx, half, out);
            },
        );
        self.timers
            .ftcs
            .record(start.elapsed(), self.pool.threads());
        std::mem::swap(&mut self.density, &mut self.next);
    }

    /// Recomputes the per-bin velocity field from the current density
    /// (Eq. 5), one component per axis:
    ///
    /// `v_axis = −(d_+ − d_−) / (2d)`
    ///
    /// Mirror substitution makes the component normal to a chip or macro
    /// boundary zero, as the paper requires; wall and frozen bins have
    /// zero velocity outright. Bins with (numerically) no density get zero
    /// velocity — there is nothing there to move.
    pub fn compute_velocities(&mut self) {
        let start = Instant::now();
        let view = FieldView {
            dims: self.dims,
            density: &self.density,
            wall: &self.wall,
            frozen: &self.frozen,
            conservative: self.conservative,
        };
        let nx = self.dims.nx();
        let [vx, vy, vz] = &mut self.vel;
        match self.dims {
            Dims::D2 { .. } => {
                parallel_for_chunks2(&self.pool, vx, vy, ROW_CHUNK * nx, |_, range, cx, cy| {
                    view.velocity_lines(range.start / nx, range.end / nx, &mut [cx, cy]);
                });
            }
            Dims::D3 { .. } => {
                parallel_for_chunks3(
                    &self.pool,
                    vx,
                    vy,
                    vz,
                    ROW_CHUNK * nx,
                    |_, range, cx, cy, cz| {
                        view.velocity_lines(range.start / nx, range.end / nx, &mut [cx, cy, cz]);
                    },
                );
            }
        }
        self.timers
            .velocity
            .record(start.elapsed(), self.pool.threads());
    }

    /// The velocity assigned to bin `(j, k)` (tier 0 on a volumetric
    /// grid) by the latest
    /// [`compute_velocities`](Self::compute_velocities) call.
    #[inline]
    pub fn bin_velocity(&self, j: usize, k: usize) -> Vector {
        let i = self.at(j, k);
        Vector::new(self.vel[0][i], self.vel[1][i])
    }

    /// The per-axis velocity of bin `(j, k, z)` on a volumetric grid.
    ///
    /// # Panics
    ///
    /// Panics if the engine is planar (there is no z component).
    #[inline]
    pub fn bin_velocity3(&self, j: usize, k: usize, z: usize) -> Vector3 {
        assert_eq!(self.dims.ndim(), 3, "bin_velocity3 needs a D3 engine");
        let i = self.dims.flat(j, k, z);
        Vector3::new(self.vel[0][i], self.vel[1][i], self.vel[2][i])
    }

    /// Overrides a bin's velocity (test hook for the paper's worked
    /// interpolation example).
    #[inline]
    pub fn set_bin_velocity(&mut self, j: usize, k: usize, v: Vector) {
        let i = self.at(j, k);
        self.vel[0][i] = v.x;
        self.vel[1][i] = v.y;
    }

    /// Overrides a volumetric bin's velocity (test hook).
    ///
    /// # Panics
    ///
    /// Panics if the engine is planar.
    #[inline]
    pub fn set_bin_velocity3(&mut self, j: usize, k: usize, z: usize, v: Vector3) {
        assert_eq!(self.dims.ndim(), 3, "set_bin_velocity3 needs a D3 engine");
        let i = self.dims.flat(j, k, z);
        self.vel[0][i] = v.x;
        self.vel[1][i] = v.y;
        self.vel[2][i] = v.z;
    }

    /// The velocity at an arbitrary point in bin coordinates, bilinearly
    /// interpolated between the four nearest bin centers (Eq. 6).
    ///
    /// Points within half a bin of the grid edge clamp to the edge bin's
    /// velocity (velocity is replicated outward). On a volumetric grid
    /// this samples tier 0; use [`velocity_at3`](Self::velocity_at3).
    pub fn velocity_at(&self, p: Point) -> Vector {
        let xs = p.x + 0.5;
        let ys = p.y + 0.5;
        let alpha = xs - xs.floor();
        let beta = ys - ys.floor();
        // p,q = lower-left of the four nearest centers; may be -1 at edges.
        let pj = xs.floor() as isize - 1;
        let qk = ys.floor() as isize - 1;
        let clamp_j = |v: isize| v.clamp(0, self.nx() as isize - 1) as usize;
        let clamp_k = |v: isize| v.clamp(0, self.ny() as isize - 1) as usize;
        let v00 = self.bin_velocity(clamp_j(pj), clamp_k(qk));
        let v10 = self.bin_velocity(clamp_j(pj + 1), clamp_k(qk));
        let v01 = self.bin_velocity(clamp_j(pj), clamp_k(qk + 1));
        let v11 = self.bin_velocity(clamp_j(pj + 1), clamp_k(qk + 1));
        interpolate_velocity(v00, v10, v01, v11, alpha, beta)
    }

    /// The velocity at an arbitrary point of a volumetric grid,
    /// trilinearly interpolated between the eight nearest bin centers
    /// (Eq. 6 extended with a tier axis).
    ///
    /// Points within half a bin of any grid face clamp to the face bin's
    /// velocity, mirroring [`velocity_at`](Self::velocity_at).
    ///
    /// # Panics
    ///
    /// Panics if the engine is planar.
    pub fn velocity_at3(&self, p: Point3) -> Vector3 {
        assert_eq!(self.dims.ndim(), 3, "velocity_at3 needs a D3 engine");
        let xs = p.x + 0.5;
        let ys = p.y + 0.5;
        let zs = p.z + 0.5;
        let alpha = xs - xs.floor();
        let beta = ys - ys.floor();
        let gamma = zs - zs.floor();
        let pj = xs.floor() as isize - 1;
        let qk = ys.floor() as isize - 1;
        let rz = zs.floor() as isize - 1;
        let cj = |v: isize| v.clamp(0, self.nx() as isize - 1) as usize;
        let ck = |v: isize| v.clamp(0, self.ny() as isize - 1) as usize;
        let cz = |v: isize| v.clamp(0, self.nz() as isize - 1) as usize;
        let corner = |dj: isize, dk: isize, dz: isize| {
            self.bin_velocity3(cj(pj + dj), ck(qk + dk), cz(rz + dz))
        };
        let lerp = |a: Vector3, b: Vector3, t: f64| a + (b - a) * t;
        let c00 = lerp(corner(0, 0, 0), corner(1, 0, 0), alpha);
        let c10 = lerp(corner(0, 1, 0), corner(1, 1, 0), alpha);
        let c01 = lerp(corner(0, 0, 1), corner(1, 0, 1), alpha);
        let c11 = lerp(corner(0, 1, 1), corner(1, 1, 1), alpha);
        let c0 = lerp(c00, c10, beta);
        let c1 = lerp(c01, c11, beta);
        lerp(c0, c1, gamma)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(nx: usize, j: usize, k: usize) -> usize {
        k * nx + j
    }

    /// Engine matching the paper's Fig. 1 neighborhood.
    fn fig1_engine() -> DiffusionEngine {
        let mut d = vec![1.0; 16];
        d[at(4, 1, 1)] = 1.0;
        d[at(4, 0, 1)] = 1.4;
        d[at(4, 2, 1)] = 0.4;
        d[at(4, 1, 0)] = 1.6;
        d[at(4, 1, 2)] = 0.4;
        DiffusionEngine::from_raw(4, 4, d, None)
    }

    #[test]
    fn fig1_density_step() {
        let mut e = fig1_engine();
        e.step_density(0.2);
        assert!((e.density(1, 1) - 0.98).abs() < 1e-12);
    }

    #[test]
    fn fig1_velocity() {
        let mut e = fig1_engine();
        e.compute_velocities();
        let v = e.bin_velocity(1, 1);
        assert!((v.x - 0.5).abs() < 1e-12);
        assert!((v.y - 0.6).abs() < 1e-12);
    }

    /// Fig. 5: FTCS under macro mirror boundary conditions.
    fn fig5_engine() -> DiffusionEngine {
        let nx = 7;
        let ny = 7;
        let mut d = vec![1.0; nx * ny];
        let mut w = vec![false; nx * ny];
        // Fixed block over bins (4,3)..(5,4).
        for k in 3..=4 {
            for j in 4..=5 {
                w[at(nx, j, k)] = true;
                d[at(nx, j, k)] = 1.0;
            }
        }
        d[at(nx, 3, 6)] = 1.0;
        d[at(nx, 4, 6)] = 0.2;
        d[at(nx, 2, 5)] = 1.2;
        d[at(nx, 3, 5)] = 0.4;
        d[at(nx, 4, 5)] = 0.8;
        d[at(nx, 5, 5)] = 0.6;
        d[at(nx, 2, 4)] = 1.4;
        d[at(nx, 3, 4)] = 0.8;
        d[at(nx, 3, 3)] = 1.6;
        let mut e = DiffusionEngine::from_raw(nx, ny, d, Some(w));
        // The Fig. 5 worked example uses the paper's literal boundary rule.
        e.set_conservative_boundaries(false);
        e
    }

    #[test]
    fn fig5_macro_boundary_updates() {
        let mut e = fig5_engine();
        e.step_density(0.2);
        // d(3,4): right neighbor is the macro, mirror with left (2,4)=1.4.
        assert!(
            (e.density(3, 4) - 0.96).abs() < 1e-12,
            "got {}",
            e.density(3, 4)
        );
        // d(4,5): lower neighbor is the macro, mirror with upper (4,6)=0.2.
        assert!(
            (e.density(4, 5) - 0.62).abs() < 1e-12,
            "got {}",
            e.density(4, 5)
        );
        // Macro bins never change.
        assert_eq!(e.density(4, 4), 1.0);
        assert_eq!(e.density(5, 3), 1.0);
    }

    #[test]
    fn walls_have_zero_velocity_and_normal_component_vanishes() {
        let mut e = fig5_engine();
        e.compute_velocities();
        assert_eq!(e.bin_velocity(4, 4), Vector::ZERO);
        // Bin (3,4) sits left of the macro: mirror makes its horizontal
        // gradient zero, so vx = 0.
        assert_eq!(e.bin_velocity(3, 4).x, 0.0);
        // Bin (4,5) sits above the macro: vy = 0.
        assert_eq!(e.bin_velocity(4, 5).y, 0.0);
    }

    #[test]
    fn chip_edge_velocity_points_inward_only() {
        // Dense bin in a corner: velocity must not point off-chip.
        let mut d = vec![0.1; 9];
        d[0] = 2.0;
        let mut e = DiffusionEngine::from_raw(3, 3, d, None);
        e.compute_velocities();
        let v = e.bin_velocity(0, 0);
        assert!(
            v.x >= 0.0 && v.y >= 0.0,
            "corner velocity {v:?} points off-chip"
        );
    }

    #[test]
    fn interior_mass_is_conserved_between_steps() {
        // Away from boundaries FTCS is exactly conservative: compare the
        // change of one interior bin against what its neighbors exchanged.
        let mut e = fig1_engine();
        let m0: f64 = e.densities().iter().sum();
        e.step_density(0.2);
        // One step on a 4x4 grid does touch boundaries, so compare against
        // the known non-conservative drift bound instead of exactness.
        let m1: f64 = e.densities().iter().sum();
        assert!((m1 - m0).abs() < 0.5, "implausible drift {m0} -> {m1}");
    }

    #[test]
    fn paper_boundary_rule_drifts_but_stays_bounded() {
        // The paper's mirror rule (Section V-B) is not conservative: flow
        // toward a boundary is double-counted. Document the behavior: the
        // total drifts, but remains bounded by the uniform-equilibrium
        // band [min, max] of the initial field times the bin count.
        let mut e = fig5_engine();
        let m0 = e.total_live_density();
        for _ in 0..200 {
            e.step_density(0.2);
        }
        let m1 = e.total_live_density();
        assert!(
            (m1 - m0).abs() / m0 < 0.1,
            "drift exceeded 10%: {m0} -> {m1}"
        );
    }

    #[test]
    fn conservative_mode_conserves_mass_exactly() {
        let mut e = fig5_engine();
        e.set_conservative_boundaries(true);
        let m0 = e.total_live_density();
        for _ in 0..500 {
            e.step_density(0.2);
        }
        let m1 = e.total_live_density();
        assert!((m0 - m1).abs() < 1e-9, "mass drifted from {m0} to {m1}");
    }

    #[test]
    fn diffusion_flattens_toward_uniform() {
        let mut d = vec![0.0; 25];
        d[12] = 5.0; // spike in the middle
        let mut e = DiffusionEngine::from_raw(5, 5, d, None);
        for _ in 0..2000 {
            e.step_density(0.2);
        }
        // Equilibrium is uniform (its level depends on the boundary rule).
        let lo = e.densities().iter().cloned().fold(f64::INFINITY, f64::min);
        let hi = e.densities().iter().cloned().fold(0.0f64, f64::max);
        assert!(hi - lo < 1e-6, "not uniform: [{lo}, {hi}]");
    }

    #[test]
    fn conservative_diffusion_flattens_to_exact_average() {
        let mut d = vec![0.0; 25];
        d[12] = 5.0;
        let mut e = DiffusionEngine::from_raw(5, 5, d, None);
        e.set_conservative_boundaries(true);
        for _ in 0..2000 {
            e.step_density(0.2);
        }
        for k in 0..5 {
            for j in 0..5 {
                assert!(
                    (e.density(j, k) - 0.2).abs() < 1e-6,
                    "bin ({j},{k}) = {}",
                    e.density(j, k)
                );
            }
        }
    }

    #[test]
    fn frozen_bins_act_as_walls() {
        let mut d = vec![0.0; 9];
        d[at(3, 0, 0)] = 1.0;
        let mut e = DiffusionEngine::from_raw(3, 3, d, None);
        e.set_conservative_boundaries(true);
        // Freeze the right column; density must stay in the left 2x3 block.
        let mut frozen = vec![false; 9];
        for k in 0..3 {
            frozen[at(3, 2, k)] = true;
        }
        e.set_frozen_mask(&frozen);
        for _ in 0..500 {
            e.step_density(0.2);
        }
        for k in 0..3 {
            assert_eq!(
                e.density(2, k),
                0.0,
                "density leaked into frozen bin (2,{k})"
            );
        }
        assert!((e.total_live_density() - 1.0).abs() < 1e-9);
        assert_eq!(e.live_bins(), 6);
        e.clear_frozen();
        assert_eq!(e.live_bins(), 9);
    }

    #[test]
    fn max_and_overflow_metrics() {
        let mut d = vec![0.5; 4];
        d[0] = 1.5;
        let e = DiffusionEngine::from_raw(2, 2, d, None);
        assert_eq!(e.max_live_density(), 1.5);
        assert!((e.total_overflow(1.0) - 0.5).abs() < 1e-12);
        assert_eq!(e.total_overflow(2.0), 0.0);
    }

    #[test]
    fn velocity_interpolation_matches_paper_example() {
        // Fig. 2: v(1,1)=(0.5,0.6), v(2,1)=(0.25,-0.25), v(1,2)=(0.5,0),
        // v(2,2)=(-0.125,0.125), query point (1.6,1.8) with α=0.1, β=0.3.
        // Evaluating the paper's own Eq. 6 with these inputs yields
        // (0.46375, 0.36425); the values printed in the paper's prose
        // (0.45625, 0.40175) do not satisfy Eq. 6 — a known arithmetic
        // slip in the text. We pin the equation, not the typo.
        let mut e = DiffusionEngine::from_raw(4, 4, vec![1.0; 16], None);
        e.set_bin_velocity(1, 1, Vector::new(0.5, 0.6));
        e.set_bin_velocity(2, 1, Vector::new(0.25, -0.25));
        e.set_bin_velocity(1, 2, Vector::new(0.5, 0.0));
        e.set_bin_velocity(2, 2, Vector::new(-0.125, 0.125));
        let v = e.velocity_at(Point::new(1.6, 1.8));
        assert!((v.x - 0.46375).abs() < 1e-12, "vx = {}", v.x);
        assert!((v.y - 0.36425).abs() < 1e-12, "vy = {}", v.y);
    }

    #[test]
    fn velocity_at_bin_center_is_bin_velocity() {
        let mut e = DiffusionEngine::from_raw(3, 3, vec![1.0; 9], None);
        e.set_bin_velocity(1, 1, Vector::new(0.3, -0.7));
        let v = e.velocity_at(Point::new(1.5, 1.5));
        assert!((v.x - 0.3).abs() < 1e-12);
        assert!((v.y + 0.7).abs() < 1e-12);
    }

    #[test]
    fn velocity_at_edges_clamps() {
        let mut e = DiffusionEngine::from_raw(2, 2, vec![1.0; 4], None);
        e.set_bin_velocity(0, 0, Vector::new(1.0, 1.0));
        // Point in the lower-left quarter-bin: all four clamped corners are
        // bin (0,0) — result is exactly its velocity.
        let v = e.velocity_at(Point::new(0.1, 0.2));
        assert!((v.x - 1.0).abs() < 1e-12);
        assert!((v.y - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_bin_gets_zero_velocity() {
        let mut d = vec![1.0; 9];
        d[at(3, 1, 1)] = 0.0;
        let mut e = DiffusionEngine::from_raw(3, 3, d, None);
        e.compute_velocities();
        assert_eq!(e.bin_velocity(1, 1), Vector::ZERO);
    }

    #[test]
    fn load_densities_replaces_field() {
        let mut e = DiffusionEngine::from_raw(2, 2, vec![0.0; 4], None);
        e.load_densities(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(e.density(1, 1), 4.0);
        assert_eq!(e.densities(), &[1.0, 2.0, 3.0, 4.0]);
    }

    /// A bumpy 64×64 field with a wall block and a frozen stripe —
    /// exercises every boundary rule the kernels implement.
    fn bumpy_engine(threads: usize) -> DiffusionEngine {
        let n = 64usize;
        let density: Vec<f64> = (0..n * n)
            .map(|i| 0.25 + ((i * 2654435761usize) % 997) as f64 / 997.0)
            .collect();
        let mut wall = vec![false; n * n];
        for k in 20..28 {
            for j in 30..44 {
                wall[k * n + j] = true;
            }
        }
        let mut e = DiffusionEngine::from_raw(n, n, density, Some(wall));
        let mut frozen = vec![false; n * n];
        for k in 48..56 {
            for j in 8..20 {
                frozen[k * n + j] = true;
            }
        }
        e.set_frozen_mask(&frozen);
        e.set_threads(threads);
        e
    }

    #[test]
    fn parallel_step_is_bit_identical_to_serial() {
        let mut serial = bumpy_engine(1);
        for _ in 0..25 {
            serial.step_density(0.2);
        }
        for threads in [2, 4, 8] {
            let mut parallel = bumpy_engine(threads);
            for _ in 0..25 {
                parallel.step_density(0.2);
            }
            assert_eq!(
                serial.densities(),
                parallel.densities(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn parallel_velocities_are_bit_identical_to_serial() {
        let mut serial = bumpy_engine(1);
        serial.compute_velocities();
        for threads in [2, 4, 8] {
            let mut parallel = bumpy_engine(threads);
            parallel.compute_velocities();
            for k in 0..serial.ny() {
                for j in 0..serial.nx() {
                    assert_eq!(
                        serial.bin_velocity(j, k),
                        parallel.bin_velocity(j, k),
                        "bin ({j},{k}), threads = {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn kernel_timers_accumulate() {
        let mut e = bumpy_engine(2);
        e.step_density(0.2);
        e.compute_velocities();
        e.compute_velocities();
        let t = e.kernel_timers();
        assert_eq!(t.ftcs.calls, 1);
        assert_eq!(t.velocity.calls, 2);
        assert_eq!(t.ftcs.max_threads, 2);
        assert_eq!(t.ftcs.serial_ns, 0);
        assert!(t.velocity.parallel_ns > 0);
    }

    #[test]
    fn reload_reuses_buffers_and_clears_state() {
        use dpm_geom::{Point, Rect};
        use dpm_netlist::{CellKind, NetlistBuilder};
        use dpm_place::{BinGrid, Placement};

        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", 10.0, 10.0, CellKind::Movable);
        let nl = b.build().expect("valid");
        let mut p = Placement::new(1);
        p.set(c, Point::new(0.0, 0.0));
        let grid = BinGrid::new(Rect::new(0.0, 0.0, 40.0, 40.0), 10.0);
        let map = DensityMap::from_placement(&nl, &p, grid.clone());

        let mut e = DiffusionEngine::from_density_map(&map);
        e.set_frozen_mask(&[true; 16]);
        e.compute_velocities();
        p.set(c, Point::new(30.0, 30.0));
        let map2 = DensityMap::from_placement(&nl, &p, grid);
        e.reload_from_density_map(&map2);
        assert_eq!(e.densities(), map2.densities());
        assert_eq!(e.live_bins(), 16, "frozen mask must be cleared");
        assert_eq!(e.bin_velocity(0, 0), Vector::ZERO);
    }

    #[test]
    fn tiny_grid_falls_back_to_serial() {
        let mut e = DiffusionEngine::from_raw(3, 3, vec![1.0; 9], None);
        e.set_threads(8); // more threads than rows: must still work
        e.step_density(0.2);
        assert!((e.total_live_density() - 9.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn bad_density_buffer_rejected() {
        let _ = DiffusionEngine::from_raw(2, 2, vec![0.0; 3], None);
    }

    // ---- volumetric (D3) coverage ----

    fn at3(nx: usize, ny: usize, j: usize, k: usize, z: usize) -> usize {
        (z * ny + k) * nx + j
    }

    #[test]
    fn single_tier_volume_matches_planar_engine() {
        // A D3 grid with nz = 1 must produce the exact planar floats: the
        // z axis contributes a zero-gradient term that the per-axis loop
        // adds as `half * (d + d - 2d)`, which is exactly +0.0 on every
        // finite density, and `x + 0.0` only differs from `x` at
        // `x = -0.0` — densities here are positive.
        let d: Vec<f64> = (0..64 * 64)
            .map(|i| 0.25 + ((i * 2654435761usize) % 997) as f64 / 997.0)
            .collect();
        let mut planar = DiffusionEngine::from_raw(64, 64, d.clone(), None);
        let mut volume = DiffusionEngine::from_raw_3d(64, 64, 1, d, None);
        for _ in 0..10 {
            planar.step_density(0.2);
            volume.step_density(0.2);
        }
        assert_eq!(planar.densities(), volume.densities());
        planar.compute_velocities();
        volume.compute_velocities();
        for k in 0..64 {
            for j in 0..64 {
                let v2 = planar.bin_velocity(j, k);
                let v3 = volume.bin_velocity3(j, k, 0);
                assert_eq!((v2.x, v2.y, 0.0), (v3.x, v3.y, v3.z), "bin ({j},{k})");
            }
        }
    }

    #[test]
    fn volumetric_spike_diffuses_along_z() {
        let (nx, ny, nz) = (3, 3, 4);
        let mut d = vec![0.0; nx * ny * nz];
        d[at3(nx, ny, 1, 1, 0)] = 4.0; // spike on the bottom tier
        let mut e = DiffusionEngine::from_raw_3d(nx, ny, nz, d, None);
        e.step_density(0.2);
        assert!(
            e.density3(1, 1, 1) > 0.0,
            "no mass moved to the next tier: {}",
            e.density3(1, 1, 1)
        );
        for _ in 0..3000 {
            e.step_density(0.2);
        }
        let avg = 4.0 / (nx * ny * nz) as f64;
        for z in 0..nz {
            for k in 0..ny {
                for j in 0..nx {
                    assert!(
                        (e.density3(j, k, z) - avg).abs() < 1e-6,
                        "bin ({j},{k},{z}) = {}",
                        e.density3(j, k, z)
                    );
                }
            }
        }
    }

    #[test]
    fn volumetric_mass_is_conserved() {
        let (nx, ny, nz) = (5, 4, 3);
        let d: Vec<f64> = (0..nx * ny * nz)
            .map(|i| ((i * 2654435761usize) % 97) as f64 / 97.0)
            .collect();
        let mut wall = vec![false; nx * ny * nz];
        for z in 0..nz {
            wall[at3(nx, ny, 2, 2, z)] = true; // through-stack macro column
        }
        let mut e = DiffusionEngine::from_raw_3d(nx, ny, nz, d, Some(wall));
        let m0 = e.total_live_density();
        for _ in 0..300 {
            e.step_density(0.2);
        }
        let m1 = e.total_live_density();
        assert!((m0 - m1).abs() < 1e-9, "mass drifted from {m0} to {m1}");
    }

    #[test]
    fn volumetric_velocity_points_away_from_overfull_tier() {
        let (nx, ny, nz) = (3, 3, 5);
        let mut d = vec![0.5; nx * ny * nz];
        d[at3(nx, ny, 1, 1, 2)] = 2.0; // hot middle tier
        let mut e = DiffusionEngine::from_raw_3d(nx, ny, nz, d, None);
        e.compute_velocities();
        // Interior bin below the spike is pushed down (away), above up.
        // (The outermost tiers get zero normal velocity from the mirror
        // rule, exactly like the 2D chip edge.)
        assert!(e.bin_velocity3(1, 1, 1).z < 0.0);
        assert!(e.bin_velocity3(1, 1, 3).z > 0.0);
        assert_eq!(e.bin_velocity3(1, 1, 0).z, 0.0);
        // The spike itself has zero z-velocity (symmetric neighbors).
        assert_eq!(e.bin_velocity3(1, 1, 2).z, 0.0);
    }

    #[test]
    fn volumetric_parallel_step_is_bit_identical_to_serial() {
        let build = |threads: usize| {
            let (nx, ny, nz) = (32, 24, 5);
            let d: Vec<f64> = (0..nx * ny * nz)
                .map(|i| 0.25 + ((i * 2654435761usize) % 997) as f64 / 997.0)
                .collect();
            let mut wall = vec![false; nx * ny * nz];
            for z in 0..nz {
                for k in 8..12 {
                    for j in 10..20 {
                        wall[at3(nx, ny, j, k, z)] = true;
                    }
                }
            }
            let mut e = DiffusionEngine::from_raw_3d(nx, ny, nz, d, Some(wall));
            e.set_threads(threads);
            e
        };
        let mut serial = build(1);
        serial.compute_velocities();
        for _ in 0..20 {
            serial.step_density(0.2);
        }
        for threads in [2, 4, 8] {
            let mut parallel = build(threads);
            parallel.compute_velocities();
            for _ in 0..20 {
                parallel.step_density(0.2);
            }
            assert_eq!(
                serial.densities(),
                parallel.densities(),
                "threads = {threads}"
            );
        }
    }

    #[test]
    fn trilinear_velocity_at_bin_center_is_bin_velocity() {
        let mut e = DiffusionEngine::from_raw_3d(3, 3, 3, vec![1.0; 27], None);
        e.set_bin_velocity3(1, 1, 1, Vector3::new(0.3, -0.7, 0.2));
        let v = e.velocity_at3(Point3::new(1.5, 1.5, 1.5));
        assert!((v.x - 0.3).abs() < 1e-12);
        assert!((v.y + 0.7).abs() < 1e-12);
        assert!((v.z - 0.2).abs() < 1e-12);
    }

    #[test]
    fn trilinear_velocity_interpolates_between_tiers() {
        let mut e = DiffusionEngine::from_raw_3d(2, 2, 2, vec![1.0; 8], None);
        e.set_bin_velocity3(0, 0, 0, Vector3::new(0.0, 0.0, 1.0));
        e.set_bin_velocity3(0, 0, 1, Vector3::new(0.0, 0.0, 3.0));
        // Query a quarter of the way between the two tier centers.
        let v = e.velocity_at3(Point3::new(0.5, 0.5, 0.75));
        assert!((v.z - 1.5).abs() < 1e-12, "vz = {}", v.z);
    }
}
