//! Table IX — legalization performance vs density-update period N_U on
//! ckt2: movement, TWL, WNS, CPU.

use dpm_bench::suite::diffusion_cfg;
use dpm_bench::{fnum, print_table, scale_from_env, Experiment, TextTable, CKT_DEFAULT_SCALE};
use dpm_gen::suites::ckt_suite;
use dpm_legalize::DiffusionLegalizer;

fn main() {
    let scale = scale_from_env(CKT_DEFAULT_SCALE);
    println!("Reproducing Table IX at scale {scale} (ckt2, N_U sweep).");
    let entry = &ckt_suite(scale)[1];
    let base = entry.spec.generate();
    let (bench, _) = entry.generate_inflated();
    let cfg0 = diffusion_cfg(&bench);
    let exp = Experiment::new(bench, &base);

    let mut t = TextTable::new(["N_U", "movement", "TWL", "WNS", "CPU(s)"]);
    for n_u in [1usize, 5, 10, 15, 20, 25, 30, 40] {
        let legalizer = DiffusionLegalizer::local(cfg0.clone().with_update_period(n_u));
        let r = exp.run(&legalizer);
        t.row([
            n_u.to_string(),
            fnum(r.movement.total),
            fnum(r.metrics.twl),
            fnum(r.metrics.wns),
            format!("{:.3}", r.runtime.as_secs_f64()),
        ]);
        eprintln!("  N_U = {n_u} done");
    }
    print_table(
        "Table IX: N_U sweep (paper: longer periods give similar quality at lower CPU; N_U=30 chosen)",
        &t,
    );
}
