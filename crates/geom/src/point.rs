//! Points and displacement vectors in the placement plane.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

/// A location in the placement plane.
///
/// `Point` is a position; the difference of two points is a [`Vector`].
///
/// # Examples
///
/// ```
/// use dpm_geom::{Point, Vector};
///
/// let a = Point::new(1.0, 2.0);
/// let b = Point::new(4.0, 6.0);
/// let d: Vector = b - a;
/// assert_eq!(d, Vector::new(3.0, 4.0));
/// assert_eq!(d.length(), 5.0);
/// assert_eq!(a + d, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Point {
    /// Horizontal coordinate.
    pub x: f64,
    /// Vertical coordinate.
    pub y: f64,
}

impl Point {
    /// Creates a point at `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The origin `(0, 0)`.
    pub const ORIGIN: Point = Point::new(0.0, 0.0);

    /// Euclidean distance to `other`.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_geom::Point;
    /// let d = Point::new(0.0, 0.0).distance(Point::new(3.0, 4.0));
    /// assert_eq!(d, 5.0);
    /// ```
    #[inline]
    pub fn distance(self, other: Point) -> f64 {
        (self - other).length()
    }

    /// Manhattan (L1) distance to `other` — the metric used for wirelength.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_geom::Point;
    /// let d = Point::new(0.0, 0.0).manhattan_distance(Point::new(3.0, 4.0));
    /// assert_eq!(d, 7.0);
    /// ```
    #[inline]
    pub fn manhattan_distance(self, other: Point) -> f64 {
        (self.x - other.x).abs() + (self.y - other.y).abs()
    }

    /// Returns a point whose coordinates are clamped into the given ranges.
    #[inline]
    pub fn clamped(self, x_lo: f64, x_hi: f64, y_lo: f64, y_hi: f64) -> Point {
        Point::new(
            crate::clamp(self.x, x_lo, x_hi),
            crate::clamp(self.y, y_lo, y_hi),
        )
    }

    /// Returns `true` if both coordinates are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Point {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.x, self.y)
    }
}

/// A displacement in the placement plane.
///
/// Produced by subtracting two [`Point`]s; used for cell movement and for the
/// diffusion velocity field.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Vector {
    /// Horizontal component.
    pub x: f64,
    /// Vertical component.
    pub y: f64,
}

impl Vector {
    /// Creates a vector with components `(x, y)`.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Self { x, y }
    }

    /// The zero vector.
    pub const ZERO: Vector = Vector::new(0.0, 0.0);

    /// Euclidean length.
    #[inline]
    pub fn length(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean length (avoids the square root).
    #[inline]
    pub fn length_squared(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Manhattan (L1) length.
    #[inline]
    pub fn manhattan_length(self) -> f64 {
        self.x.abs() + self.y.abs()
    }

    /// Component-wise absolute maximum (L∞ norm).
    #[inline]
    pub fn linf_length(self) -> f64 {
        self.x.abs().max(self.y.abs())
    }

    /// Returns this vector scaled so its L∞ norm does not exceed `max`.
    ///
    /// Used to enforce the CFL-style stability bound `|v|·Δt ≤ Δx` on
    /// diffusion velocities. A zero vector is returned unchanged.
    ///
    /// # Examples
    ///
    /// ```
    /// use dpm_geom::Vector;
    /// let v = Vector::new(4.0, 2.0).clamped_linf(1.0);
    /// assert_eq!(v, Vector::new(1.0, 0.5));
    /// let w = Vector::new(0.3, -0.2).clamped_linf(1.0);
    /// assert_eq!(w, Vector::new(0.3, -0.2));
    /// ```
    #[inline]
    pub fn clamped_linf(self, max: f64) -> Vector {
        let n = self.linf_length();
        if n > max && n > 0.0 {
            self * (max / n)
        } else {
            self
        }
    }

    /// Returns `true` if both components are finite.
    #[inline]
    pub fn is_finite(self) -> bool {
        self.x.is_finite() && self.y.is_finite()
    }
}

impl fmt::Display for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "<{}, {}>", self.x, self.y)
    }
}

impl Sub for Point {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Point) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Add<Vector> for Point {
    type Output = Point;
    #[inline]
    fn add(self, rhs: Vector) -> Point {
        Point::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign<Vector> for Point {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub<Vector> for Point {
    type Output = Point;
    #[inline]
    fn sub(self, rhs: Vector) -> Point {
        Point::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign<Vector> for Point {
    #[inline]
    fn sub_assign(&mut self, rhs: Vector) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Add for Vector {
    type Output = Vector;
    #[inline]
    fn add(self, rhs: Vector) -> Vector {
        Vector::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vector {
    #[inline]
    fn add_assign(&mut self, rhs: Vector) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vector {
    type Output = Vector;
    #[inline]
    fn sub(self, rhs: Vector) -> Vector {
        Vector::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl Mul<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn mul(self, rhs: f64) -> Vector {
        Vector::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vector {
    type Output = Vector;
    #[inline]
    fn div(self, rhs: f64) -> Vector {
        Vector::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vector {
    type Output = Vector;
    #[inline]
    fn neg(self) -> Vector {
        Vector::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_arithmetic_round_trips() {
        let p = Point::new(3.0, -2.0);
        let v = Vector::new(1.5, 4.0);
        assert_eq!((p + v) - v, p);
        assert_eq!((p + v) - p, v);
    }

    #[test]
    fn distances() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert_eq!(a.distance(b), 5.0);
        assert_eq!(a.manhattan_distance(b), 7.0);
        assert_eq!(b.manhattan_distance(a), 7.0);
    }

    #[test]
    fn vector_norms() {
        let v = Vector::new(-3.0, 4.0);
        assert_eq!(v.length(), 5.0);
        assert_eq!(v.length_squared(), 25.0);
        assert_eq!(v.manhattan_length(), 7.0);
        assert_eq!(v.linf_length(), 4.0);
    }

    #[test]
    fn linf_clamp_preserves_direction() {
        let v = Vector::new(-8.0, 4.0);
        let c = v.clamped_linf(2.0);
        assert_eq!(c, Vector::new(-2.0, 1.0));
        // Already-small vectors untouched.
        assert_eq!(
            Vector::new(0.1, 0.1).clamped_linf(2.0),
            Vector::new(0.1, 0.1)
        );
        // Zero vector stays zero.
        assert_eq!(Vector::ZERO.clamped_linf(1.0), Vector::ZERO);
    }

    #[test]
    fn scalar_ops() {
        let v = Vector::new(2.0, -6.0);
        assert_eq!(v * 0.5, Vector::new(1.0, -3.0));
        assert_eq!(v / 2.0, Vector::new(1.0, -3.0));
        assert_eq!(-v, Vector::new(-2.0, 6.0));
    }

    #[test]
    fn clamped_point() {
        let p = Point::new(-5.0, 100.0).clamped(0.0, 10.0, 0.0, 10.0);
        assert_eq!(p, Point::new(0.0, 10.0));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Point::new(1.0, 2.0).to_string(), "(1, 2)");
        assert_eq!(Vector::new(1.0, 2.0).to_string(), "<1, 2>");
    }
}
