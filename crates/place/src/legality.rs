//! Legality checking: row alignment, die containment, overlap freedom.

use crate::{Die, Placement};
use dpm_geom::Rect;
use dpm_netlist::{CellId, CellKind, Netlist};
use std::fmt;

/// A single legality violation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Violation {
    /// The cell extends beyond the die outline.
    OutsideDie {
        /// The offending cell.
        cell: CellId,
    },
    /// The cell's lower edge is not on a row boundary.
    NotRowAligned {
        /// The offending cell.
        cell: CellId,
        /// Distance from the nearest row boundary.
        offset: f64,
    },
    /// Two movable cells overlap.
    CellOverlap {
        /// First cell (lower id).
        a: CellId,
        /// Second cell.
        b: CellId,
        /// Overlap area.
        area: f64,
    },
    /// A movable cell overlaps a fixed macro.
    MacroOverlap {
        /// The movable cell.
        cell: CellId,
        /// The macro.
        macro_cell: CellId,
        /// Overlap area.
        area: f64,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::OutsideDie { cell } => write!(f, "cell {cell} extends outside the die"),
            Violation::NotRowAligned { cell, offset } => {
                write!(f, "cell {cell} is {offset} off the nearest row boundary")
            }
            Violation::CellOverlap { a, b, area } => {
                write!(f, "cells {a} and {b} overlap by area {area}")
            }
            Violation::MacroOverlap {
                cell,
                macro_cell,
                area,
            } => {
                write!(f, "cell {cell} overlaps macro {macro_cell} by area {area}")
            }
        }
    }
}

/// Result of [`check_legality`]: the list of violations found (possibly
/// truncated) and summary statistics.
#[derive(Debug, Clone, Default)]
pub struct LegalityReport {
    /// Violations found, up to the caller's limit.
    pub violations: Vec<Violation>,
    /// Total number of violations (even when `violations` is truncated).
    pub violation_count: usize,
    /// Total pairwise overlap area between movable cells.
    pub total_overlap_area: f64,
}

impl LegalityReport {
    /// `true` if the placement is fully legal.
    #[inline]
    pub fn is_legal(&self) -> bool {
        self.violation_count == 0
    }
}

impl fmt::Display for LegalityReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_legal() {
            write!(f, "legal placement")
        } else {
            write!(
                f,
                "{} violations, total overlap area {:.3}",
                self.violation_count, self.total_overlap_area
            )
        }
    }
}

/// Tolerance (in placement units) for row alignment and containment checks.
pub(crate) const EPS: f64 = 1e-6;

/// Checks a placement for legality: every movable cell inside the die, on a
/// row boundary, and not overlapping any other movable cell or macro.
///
/// At most `max_reported` violations are materialized into the report (the
/// count is always exact). Macros and pads are exempt from the row and
/// containment checks.
///
/// # Examples
///
/// ```
/// use dpm_geom::Point;
/// use dpm_netlist::{NetlistBuilder, CellKind};
/// use dpm_place::{check_legality, Die, Placement};
///
/// let mut b = NetlistBuilder::new();
/// let u = b.add_cell("u", 4.0, 12.0, CellKind::Movable);
/// let v = b.add_cell("v", 4.0, 12.0, CellKind::Movable);
/// let nl = b.build()?;
/// let die = Die::new(100.0, 48.0, 12.0);
/// let mut p = Placement::new(2);
/// p.set(u, Point::new(0.0, 0.0));
/// p.set(v, Point::new(2.0, 0.0)); // overlaps u
/// let report = check_legality(&nl, &die, &p, 10);
/// assert!(!report.is_legal());
/// assert_eq!(report.violation_count, 1);
/// # Ok::<(), dpm_netlist::BuildNetlistError>(())
/// ```
pub fn check_legality(
    netlist: &Netlist,
    die: &Die,
    placement: &Placement,
    max_reported: usize,
) -> LegalityReport {
    let mut report = LegalityReport::default();
    let outline = die.outline();

    let push = |report: &mut LegalityReport, v: Violation| {
        if report.violations.len() < max_reported {
            report.violations.push(v);
        }
        report.violation_count += 1;
    };

    // Containment and row alignment.
    let mut by_row: Vec<Vec<(CellId, Rect)>> = vec![Vec::new(); die.num_rows()];
    for cell in netlist.cell_ids() {
        if netlist.cell(cell).kind != CellKind::Movable {
            continue;
        }
        let r = placement.cell_rect(netlist, cell);
        if r.llx < outline.llx - EPS
            || r.urx > outline.urx + EPS
            || r.lly < outline.lly - EPS
            || r.ury > outline.ury + EPS
        {
            push(&mut report, Violation::OutsideDie { cell });
        }
        let snapped = die.snap_y(r.lly);
        let off = (r.lly - snapped).abs();
        if off > EPS {
            push(&mut report, Violation::NotRowAligned { cell, offset: off });
        }
        // Bucket into every row the cell's vertical span touches so that
        // unaligned or multi-row-tall cells still get overlap-checked.
        let row_lo = die.row_of_y(r.lly + EPS);
        let row_hi = die.row_of_y(r.ury - EPS);
        #[allow(clippy::needless_range_loop)]
        for row in row_lo..=row_hi {
            by_row[row].push((cell, r));
        }
    }

    // Pairwise overlap within each row bucket (sweep over sorted x).
    let mut seen_pairs = std::collections::HashSet::new();
    for bucket in &mut by_row {
        bucket.sort_by(|a, b| a.1.llx.total_cmp(&b.1.llx));
        for i in 0..bucket.len() {
            let (a, ra) = bucket[i];
            for &(b, rb) in bucket.iter().skip(i + 1) {
                if rb.llx >= ra.urx - EPS {
                    break;
                }
                let area = ra.overlap_area(&rb);
                if area > EPS && seen_pairs.insert((a.min(b), a.max(b))) {
                    report.total_overlap_area += area;
                    push(
                        &mut report,
                        Violation::CellOverlap {
                            a: a.min(b),
                            b: a.max(b),
                            area,
                        },
                    );
                }
            }
        }
    }

    // Overlap with macros.
    let macros: Vec<(CellId, Rect)> = netlist
        .macro_ids()
        .map(|m| (m, placement.cell_rect(netlist, m)))
        .collect();
    if !macros.is_empty() {
        for cell in netlist.cell_ids() {
            if netlist.cell(cell).kind != CellKind::Movable {
                continue;
            }
            let r = placement.cell_rect(netlist, cell);
            for &(m, mr) in &macros {
                let area = r.overlap_area(&mr);
                if area > EPS {
                    push(
                        &mut report,
                        Violation::MacroOverlap {
                            cell,
                            macro_cell: m,
                            area,
                        },
                    );
                }
            }
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_geom::Point;
    use dpm_netlist::NetlistBuilder;

    fn setup(cells: &[(f64, f64)]) -> (Netlist, Die, Placement) {
        let mut b = NetlistBuilder::new();
        for (i, _) in cells.iter().enumerate() {
            b.add_cell(format!("c{i}"), 4.0, 12.0, CellKind::Movable);
        }
        let nl = b.build().expect("valid");
        let die = Die::new(100.0, 48.0, 12.0);
        let mut p = Placement::new(nl.num_cells());
        for (i, &(x, y)) in cells.iter().enumerate() {
            p.set(CellId::new(i as u32), Point::new(x, y));
        }
        (nl, die, p)
    }

    #[test]
    fn legal_placement_passes() {
        let (nl, die, p) = setup(&[(0.0, 0.0), (4.0, 0.0), (0.0, 12.0)]);
        let r = check_legality(&nl, &die, &p, 10);
        assert!(r.is_legal(), "{r}");
    }

    #[test]
    fn abutting_cells_are_legal() {
        let (nl, die, p) = setup(&[(0.0, 0.0), (4.0, 0.0), (8.0, 0.0)]);
        assert!(check_legality(&nl, &die, &p, 10).is_legal());
    }

    #[test]
    fn overlap_detected_once_per_pair() {
        let (nl, die, p) = setup(&[(0.0, 0.0), (2.0, 0.0)]);
        let r = check_legality(&nl, &die, &p, 10);
        assert_eq!(r.violation_count, 1);
        assert!((r.total_overlap_area - 2.0 * 12.0).abs() < 1e-9);
        assert!(matches!(r.violations[0], Violation::CellOverlap { .. }));
    }

    #[test]
    fn misaligned_cell_flagged() {
        let (nl, die, p) = setup(&[(0.0, 3.0)]);
        let r = check_legality(&nl, &die, &p, 10);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::NotRowAligned { .. })));
    }

    #[test]
    fn outside_die_flagged() {
        let (nl, die, p) = setup(&[(98.0, 0.0)]);
        let r = check_legality(&nl, &die, &p, 10);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::OutsideDie { .. })));
    }

    #[test]
    fn macro_overlap_flagged() {
        let mut b = NetlistBuilder::new();
        let c = b.add_cell("c", 4.0, 12.0, CellKind::Movable);
        let m = b.add_cell("m", 24.0, 24.0, CellKind::FixedMacro);
        let nl = b.build().expect("valid");
        let die = Die::new(100.0, 48.0, 12.0);
        let mut p = Placement::new(2);
        p.set(c, Point::new(10.0, 12.0));
        p.set(m, Point::new(8.0, 12.0));
        let r = check_legality(&nl, &die, &p, 10);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::MacroOverlap { .. })));
    }

    #[test]
    fn report_truncation_keeps_exact_count() {
        let cells: Vec<(f64, f64)> = (0..10).map(|i| (i as f64 * 0.5, 0.0)).collect();
        let (nl, die, p) = setup(&cells);
        let r = check_legality(&nl, &die, &p, 3);
        assert_eq!(r.violations.len(), 3);
        assert!(r.violation_count > 3);
    }

    #[test]
    fn display_formats() {
        let v = Violation::OutsideDie {
            cell: CellId::new(1),
        };
        assert!(v.to_string().contains("outside"));
        let mut rep = LegalityReport::default();
        assert_eq!(rep.to_string(), "legal placement");
        rep.violation_count = 2;
        assert!(rep.to_string().contains("2 violations"));
    }
}
