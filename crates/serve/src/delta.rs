//! ECO deltas: the incremental request payload of wire v3.
//!
//! A physical-synthesis loop changes only a sliver of the design per
//! iteration — a few cells resized by gate repowering, a few moved, a
//! few buffers inserted. Instead of re-shipping the whole netlist, a
//! client uploads the baseline design once ([`PutDesign`]), then each
//! iteration sends a [`DeltaJobRequest`] naming that baseline by its
//! FNV content hash plus an [`EcoDelta`] describing the edits. The
//! server applies the delta to its cached parsed baseline and runs an
//! ordinary job.
//!
//! # Why deltas carry geometry only
//!
//! An [`EcoDelta`] records cell **geometry** edits (resize, move, add)
//! and deliberately ignores net connectivity. The diffusion engines in
//! `dpm-core` never read nets or pins — placement migration depends
//! only on cell rectangles, the die, and the starting positions — so a
//! delta-applied design produces a placement *bit-identical* to
//! resending the fully modified design, even when the modification also
//! rewired nets (e.g. buffer insertion). The e2e suite pins this.
//! Added cells therefore enter the applied netlist with no pins; pin
//! offsets of resized cells are kept from the baseline.
//!
//! [`PutDesign`]: crate::wire::PutDesign

use std::error::Error;
use std::fmt;

use dpm_diffusion::{DiffusionConfig, SolverKind};
use dpm_geom::Point;
use dpm_netlist::{CellKind, Netlist, NetlistBuilder};
use dpm_place::{Die, Placement};

use crate::wire::{
    cell_kind_from_u8, cell_kind_to_u8, malformed, put_config, put_f64, put_str, put_trace,
    put_u32, put_u64, put_u8, solver_kind_from_u8, take_config, take_trace, Cur, JobKind,
    JobRequest, WireError,
};
use dpm_obs::TraceContext;

/// A width/height change to an existing baseline cell (gate repowering).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellResize {
    /// Index of the cell in the baseline netlist.
    pub cell: u32,
    /// New width (exact `f64` bit pattern travels on the wire).
    pub width: f64,
    /// New height.
    pub height: f64,
}

/// A position change to an existing baseline cell.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellMove {
    /// Index of the cell in the baseline netlist.
    pub cell: u32,
    /// New lower-left x.
    pub x: f64,
    /// New lower-left y.
    pub y: f64,
}

/// A cell that exists in the modified design but not the baseline
/// (buffer insertion). Appended after the baseline cells, in order, so
/// baseline cell indices are stable.
#[derive(Debug, Clone, PartialEq)]
pub struct NewCell {
    /// Instance name.
    pub name: String,
    /// Width.
    pub width: f64,
    /// Height.
    pub height: f64,
    /// Movability class.
    pub kind: CellKind,
    /// Intrinsic delay.
    pub delay: f64,
    /// Initial lower-left x.
    pub x: f64,
    /// Initial lower-left y.
    pub y: f64,
}

/// The cell-geometry edits of one ECO iteration, applied to a cached
/// baseline design. See the module docs for why nets are not carried.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct EcoDelta {
    /// Cells whose width/height changed.
    pub resized: Vec<CellResize>,
    /// Cells whose position changed.
    pub moved: Vec<CellMove>,
    /// Cells added after the baseline's last cell.
    pub added: Vec<NewCell>,
}

/// Errors applying or deriving a delta.
#[derive(Debug)]
pub enum DeltaError {
    /// A resize or move names a cell index outside the baseline.
    CellOutOfRange {
        /// The offending index.
        cell: u32,
        /// Baseline cell count.
        num_cells: usize,
    },
    /// A geometry value is not finite or a dimension is not positive.
    BadGeometry {
        /// Which entry was bad.
        context: &'static str,
    },
    /// `diff` was asked to compare designs that do not share a baseline
    /// prefix (cell count shrank, or a prefix cell's name/kind changed).
    IncompatibleBase {
        /// What mismatched.
        detail: String,
    },
    /// The rebuilt netlist failed validation.
    Rebuild(String),
}

impl fmt::Display for DeltaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaError::CellOutOfRange { cell, num_cells } => {
                write!(f, "delta names cell {cell} but baseline has {num_cells}")
            }
            DeltaError::BadGeometry { context } => {
                write!(f, "non-finite or non-positive geometry in {context}")
            }
            DeltaError::IncompatibleBase { detail } => {
                write!(f, "designs do not share a baseline prefix: {detail}")
            }
            DeltaError::Rebuild(e) => write!(f, "rebuilding netlist from delta failed: {e}"),
        }
    }
}

impl Error for DeltaError {}

impl EcoDelta {
    /// `true` when the delta changes nothing.
    pub fn is_empty(&self) -> bool {
        self.resized.is_empty() && self.moved.is_empty() && self.added.is_empty()
    }

    /// Applies this delta to a baseline design, producing the modified
    /// netlist and placement. The die is unchanged by construction.
    ///
    /// The baseline's nets and pins are copied verbatim (pin offsets of
    /// resized cells included) and added cells carry no pins — see the
    /// module docs for why this still yields bit-identical placements.
    ///
    /// # Errors
    ///
    /// [`DeltaError::CellOutOfRange`] / [`DeltaError::BadGeometry`] on
    /// an invalid delta, [`DeltaError::Rebuild`] if the edited netlist
    /// fails validation.
    pub fn apply(
        &self,
        base_nl: &Netlist,
        base_pl: &Placement,
    ) -> Result<(Netlist, Placement), DeltaError> {
        let n = base_nl.num_cells();
        for r in &self.resized {
            if r.cell as usize >= n {
                return Err(DeltaError::CellOutOfRange {
                    cell: r.cell,
                    num_cells: n,
                });
            }
            if !(r.width.is_finite() && r.width > 0.0 && r.height.is_finite() && r.height > 0.0) {
                return Err(DeltaError::BadGeometry { context: "resize" });
            }
        }
        for m in &self.moved {
            if m.cell as usize >= n {
                return Err(DeltaError::CellOutOfRange {
                    cell: m.cell,
                    num_cells: n,
                });
            }
            if !(m.x.is_finite() && m.y.is_finite()) {
                return Err(DeltaError::BadGeometry { context: "move" });
            }
        }
        for a in &self.added {
            if !(a.width.is_finite()
                && a.width > 0.0
                && a.height.is_finite()
                && a.height > 0.0
                && a.x.is_finite()
                && a.y.is_finite())
            {
                return Err(DeltaError::BadGeometry { context: "add" });
            }
        }

        // Dense lookup of edits by baseline index (last write wins, so a
        // delta may carry several edits of the same cell).
        let mut new_size: Vec<Option<(f64, f64)>> = vec![None; n];
        for r in &self.resized {
            new_size[r.cell as usize] = Some((r.width, r.height));
        }
        let mut new_pos: Vec<Option<Point>> = vec![None; n];
        for m in &self.moved {
            new_pos[m.cell as usize] = Some(Point::new(m.x, m.y));
        }

        let total = n + self.added.len();
        let mut b = NetlistBuilder::with_capacity(total, base_nl.num_nets(), base_nl.num_pins());
        for c in base_nl.cell_ids() {
            let cell = base_nl.cell(c);
            let (w, h) = new_size[c.index()].unwrap_or((cell.width, cell.height));
            b.add_cell_with_delay(cell.name.clone(), w, h, cell.kind, cell.delay);
        }
        for a in &self.added {
            b.add_cell_with_delay(a.name.clone(), a.width, a.height, a.kind, a.delay);
        }
        for nid in base_nl.net_ids() {
            let net = base_nl.net(nid);
            let new_net = b.add_net(net.name.clone());
            for &pid in &net.pins {
                let pin = base_nl.pin(pid);
                b.connect(pin.cell, new_net, pin.dir, pin.offset.x, pin.offset.y);
            }
        }
        let netlist = b.build().map_err(|e| DeltaError::Rebuild(e.to_string()))?;

        let mut placement = Placement::new(total);
        for c in base_nl.cell_ids() {
            let pos = new_pos[c.index()].unwrap_or_else(|| base_pl.get(c));
            placement.as_mut_slice()[c.index()] = pos;
        }
        for (i, a) in self.added.iter().enumerate() {
            placement.as_mut_slice()[n + i] = Point::new(a.x, a.y);
        }
        Ok((netlist, placement))
    }

    /// Derives the delta that turns `base` into `modified`, comparing
    /// `f64` values by bit pattern so applying the result reproduces the
    /// modified geometry exactly.
    ///
    /// The modified design must extend the baseline: at least as many
    /// cells, with every baseline-prefix cell keeping its name and
    /// kind. Net changes are intentionally not diffed (module docs).
    ///
    /// # Errors
    ///
    /// [`DeltaError::IncompatibleBase`] when the designs do not share a
    /// baseline prefix.
    pub fn diff(
        base_nl: &Netlist,
        base_pl: &Placement,
        mod_nl: &Netlist,
        mod_pl: &Placement,
    ) -> Result<EcoDelta, DeltaError> {
        let n = base_nl.num_cells();
        if mod_nl.num_cells() < n {
            return Err(DeltaError::IncompatibleBase {
                detail: format!(
                    "modified design has {} cells, baseline {}",
                    mod_nl.num_cells(),
                    n
                ),
            });
        }
        let mut delta = EcoDelta::default();
        for c in base_nl.cell_ids() {
            let b = base_nl.cell(c);
            let m = mod_nl.cell(c);
            if b.name != m.name || b.kind != m.kind {
                return Err(DeltaError::IncompatibleBase {
                    detail: format!(
                        "cell {} changed identity: {}/{:?} -> {}/{:?}",
                        c.index(),
                        b.name,
                        b.kind,
                        m.name,
                        m.kind
                    ),
                });
            }
            if b.width.to_bits() != m.width.to_bits() || b.height.to_bits() != m.height.to_bits() {
                delta.resized.push(CellResize {
                    cell: c.index() as u32,
                    width: m.width,
                    height: m.height,
                });
            }
            let (bp, mp) = (base_pl.get(c), mod_pl.get(c));
            if bp.x.to_bits() != mp.x.to_bits() || bp.y.to_bits() != mp.y.to_bits() {
                delta.moved.push(CellMove {
                    cell: c.index() as u32,
                    x: mp.x,
                    y: mp.y,
                });
            }
        }
        for c in mod_nl.cell_ids().skip(n) {
            let cell = mod_nl.cell(c);
            let pos = mod_pl.get(c);
            delta.added.push(NewCell {
                name: cell.name.clone(),
                width: cell.width,
                height: cell.height,
                kind: cell.kind,
                delay: cell.delay,
                x: pos.x,
                y: pos.y,
            });
        }
        Ok(delta)
    }
}

/// One incremental legalization request (wire v3): the job parameters
/// of a [`JobRequest`] plus a baseline content hash and the
/// [`EcoDelta`] to apply to it, instead of a full design.
#[derive(Debug, Clone)]
pub struct DeltaJobRequest {
    /// Client-chosen correlation id, echoed in every reply.
    pub id: u64,
    /// Deadline in milliseconds (see [`JobRequest::deadline_ms`]).
    pub deadline_ms: u32,
    /// Progress-frame stride (see [`JobRequest::progress_stride`]).
    pub progress_stride: u32,
    /// Which algorithm to run.
    pub kind: JobKind,
    /// Free-form design name for the request log.
    pub design: String,
    /// Tenant this request is admitted and accounted under.
    pub tenant: String,
    /// Diffusion parameters (solver kind travels as an explicit field —
    /// this frame kind is v3-only, so no trailing-byte dance).
    pub config: DiffusionConfig,
    /// Content hash ([`design_hash`](crate::wire::design_hash)) of the
    /// cached baseline design this delta applies to.
    pub baseline: u64,
    /// The edits.
    pub delta: EcoDelta,
    /// Optional distributed-trace context, riding as an optional
    /// trailing block: pre-tracing delta frames decode unchanged.
    pub trace: Option<TraceContext>,
}

impl DeltaJobRequest {
    /// Applies the delta to the cached baseline and assembles the
    /// equivalent full [`JobRequest`] for the execution path.
    ///
    /// # Errors
    ///
    /// Any [`DeltaError`] from [`EcoDelta::apply`].
    pub fn to_job_request(
        &self,
        base_nl: &Netlist,
        base_die: &Die,
        base_pl: &Placement,
    ) -> Result<JobRequest, DeltaError> {
        let (netlist, placement) = self.delta.apply(base_nl, base_pl)?;
        Ok(JobRequest {
            id: self.id,
            deadline_ms: self.deadline_ms,
            progress_stride: self.progress_stride,
            kind: self.kind,
            design: self.design.clone(),
            config: self.config.clone(),
            netlist,
            die: base_die.clone(),
            placement,
            vol: None,
            trace: self.trace,
        })
    }
}

/// Encodes a delta request into a frame payload.
pub fn encode_delta_request(req: &DeltaJobRequest) -> Vec<u8> {
    let mut buf = Vec::new();
    put_u64(&mut buf, req.id);
    put_u32(&mut buf, req.deadline_ms);
    put_u32(&mut buf, req.progress_stride);
    put_u8(&mut buf, matches!(req.kind, JobKind::Local) as u8);
    put_str(&mut buf, &req.design);
    put_str(&mut buf, &req.tenant);
    put_config(&mut buf, &req.config);
    put_u8(
        &mut buf,
        match req.config.solver {
            SolverKind::Ftcs => 0,
            SolverKind::Spectral => 1,
        },
    );
    put_u64(&mut buf, req.baseline);

    put_u32(&mut buf, req.delta.resized.len() as u32);
    for r in &req.delta.resized {
        put_u32(&mut buf, r.cell);
        put_f64(&mut buf, r.width);
        put_f64(&mut buf, r.height);
    }
    put_u32(&mut buf, req.delta.moved.len() as u32);
    for m in &req.delta.moved {
        put_u32(&mut buf, m.cell);
        put_f64(&mut buf, m.x);
        put_f64(&mut buf, m.y);
    }
    put_u32(&mut buf, req.delta.added.len() as u32);
    for a in &req.delta.added {
        put_str(&mut buf, &a.name);
        put_f64(&mut buf, a.width);
        put_f64(&mut buf, a.height);
        put_u8(&mut buf, cell_kind_to_u8(a.kind));
        put_f64(&mut buf, a.delay);
        put_f64(&mut buf, a.x);
        put_f64(&mut buf, a.y);
    }
    // Optional trailing trace extension: one flags byte (bit 0 = trace
    // context follows), then the 24-byte context. Untraced requests add
    // nothing, so pre-tracing frames stay byte-identical.
    if let Some(t) = &req.trace {
        put_u8(&mut buf, 1);
        put_trace(&mut buf, t);
    }
    buf
}

/// Decodes a delta-request frame payload.
///
/// # Errors
///
/// Returns [`WireError::Truncated`] / [`WireError::Malformed`] on
/// corrupt payloads; entry counts are validated against the remaining
/// payload length before allocation.
pub fn decode_delta_request(payload: &[u8]) -> Result<DeltaJobRequest, WireError> {
    let mut cur = Cur::new(payload);
    let id = cur.u64("delta.id")?;
    let deadline_ms = cur.u32("delta.deadline_ms")?;
    let progress_stride = cur.u32("delta.progress_stride")?;
    let kind = if cur.u8("delta.kind")? != 0 {
        JobKind::Local
    } else {
        JobKind::Global
    };
    let design = cur.str_("delta.design")?;
    let tenant = cur.str_("delta.tenant")?;
    let mut config = take_config(&mut cur)?;
    config.solver = solver_kind_from_u8(cur.u8("delta.solver")?)?;
    let baseline = cur.u64("delta.baseline")?;

    // Each resize entry is ≥ 20 bytes, each move ≥ 20, each add ≥ 37;
    // cap counts by what the payload could possibly hold so a corrupt
    // count cannot drive a giant allocation.
    let remaining = payload.len() - cur.pos;
    let n_resized = cur.u32("delta.resized.count")? as usize;
    if n_resized > remaining / 20 {
        return Err(malformed(
            "delta.resized.count",
            format!("{n_resized} entries cannot fit the payload"),
        ));
    }
    let mut resized = Vec::with_capacity(n_resized);
    for _ in 0..n_resized {
        resized.push(CellResize {
            cell: cur.u32("resize.cell")?,
            width: cur.f64("resize.width")?,
            height: cur.f64("resize.height")?,
        });
    }
    let remaining = payload.len() - cur.pos;
    let n_moved = cur.u32("delta.moved.count")? as usize;
    if n_moved > remaining / 20 {
        return Err(malformed(
            "delta.moved.count",
            format!("{n_moved} entries cannot fit the payload"),
        ));
    }
    let mut moved = Vec::with_capacity(n_moved);
    for _ in 0..n_moved {
        moved.push(CellMove {
            cell: cur.u32("move.cell")?,
            x: cur.f64("move.x")?,
            y: cur.f64("move.y")?,
        });
    }
    let remaining = payload.len() - cur.pos;
    let n_added = cur.u32("delta.added.count")? as usize;
    if n_added > remaining / 37 {
        return Err(malformed(
            "delta.added.count",
            format!("{n_added} entries cannot fit the payload"),
        ));
    }
    let mut added = Vec::with_capacity(n_added);
    for _ in 0..n_added {
        added.push(NewCell {
            name: cur.str_("add.name")?,
            width: cur.f64("add.width")?,
            height: cur.f64("add.height")?,
            kind: cell_kind_from_u8(cur.u8("add.kind")?)?,
            delay: cur.f64("add.delay")?,
            x: cur.f64("add.x")?,
            y: cur.f64("add.y")?,
        });
    }
    let trace = if cur.pos < cur.buf.len() {
        let flags = cur.u8("delta.ext.flags")?;
        if flags != 1 {
            return Err(malformed(
                "delta.ext.flags",
                format!("unknown flag bits {flags:#x}"),
            ));
        }
        Some(take_trace(&mut cur)?)
    } else {
        None
    };
    cur.finish("delta")?;
    Ok(DeltaJobRequest {
        id,
        deadline_ms,
        progress_stride,
        kind,
        design,
        tenant,
        config,
        baseline,
        delta: EcoDelta {
            resized,
            moved,
            added,
        },
        trace,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dpm_netlist::PinDir;

    fn base() -> (Netlist, Die, Placement) {
        let mut b = NetlistBuilder::new();
        let a = b.add_cell("a", 4.0, 12.0, CellKind::Movable);
        let c = b.add_cell("c", 6.0, 12.0, CellKind::Movable);
        let m = b.add_cell("m", 24.0, 24.0, CellKind::FixedMacro);
        let n = b.add_net("n1");
        b.connect(a, n, PinDir::Output, 2.0, 6.0);
        b.connect(c, n, PinDir::Input, 0.0, 6.0);
        let nl = b.build().expect("valid");
        let die = Die::new(96.0, 96.0, 12.0);
        let mut pl = Placement::new(nl.num_cells());
        pl.set(a, Point::new(10.5, 12.0));
        pl.set(c, Point::new(11.25, 12.0));
        pl.set(m, Point::new(48.0, 48.0));
        (nl, die, pl)
    }

    fn sample_delta() -> EcoDelta {
        EcoDelta {
            resized: vec![CellResize {
                cell: 0,
                width: 7.5,
                height: 12.0,
            }],
            moved: vec![CellMove {
                cell: 1,
                x: 30.0,
                y: 24.0,
            }],
            added: vec![NewCell {
                name: "buf0".into(),
                width: 2.0,
                height: 12.0,
                kind: CellKind::Movable,
                delay: 0.5,
                x: 60.0,
                y: 36.0,
            }],
        }
    }

    #[test]
    fn apply_then_diff_round_trips() {
        let (nl, _die, pl) = base();
        let delta = sample_delta();
        let (mod_nl, mod_pl) = delta.apply(&nl, &pl).expect("applies");
        assert_eq!(mod_nl.num_cells(), 4);
        assert_eq!(mod_nl.cell(dpm_netlist::CellId::new(0)).width, 7.5);
        assert_eq!(mod_pl.get(dpm_netlist::CellId::new(1)).x, 30.0);
        assert_eq!(mod_nl.cell(dpm_netlist::CellId::new(3)).name, "buf0");
        // Nets copied verbatim.
        assert_eq!(mod_nl.num_nets(), nl.num_nets());
        assert_eq!(mod_nl.num_pins(), nl.num_pins());

        let back = EcoDelta::diff(&nl, &pl, &mod_nl, &mod_pl).expect("diffs");
        assert_eq!(back, delta);
    }

    #[test]
    fn diff_of_identical_designs_is_empty() {
        let (nl, _die, pl) = base();
        let d = EcoDelta::diff(&nl, &pl, &nl, &pl).expect("diffs");
        assert!(d.is_empty());
    }

    #[test]
    fn diff_rejects_incompatible_prefix() {
        let (nl, _die, pl) = base();
        let mut b = NetlistBuilder::new();
        b.add_cell("renamed", 4.0, 12.0, CellKind::Movable);
        b.add_cell("c", 6.0, 12.0, CellKind::Movable);
        b.add_cell("m", 24.0, 24.0, CellKind::FixedMacro);
        let other = b.build().expect("valid");
        let opl = Placement::new(3);
        assert!(matches!(
            EcoDelta::diff(&nl, &pl, &other, &opl),
            Err(DeltaError::IncompatibleBase { .. })
        ));
        // Fewer cells than baseline is also incompatible.
        let mut b = NetlistBuilder::new();
        b.add_cell("a", 4.0, 12.0, CellKind::Movable);
        let small = b.build().expect("valid");
        assert!(matches!(
            EcoDelta::diff(&nl, &pl, &small, &Placement::new(1)),
            Err(DeltaError::IncompatibleBase { .. })
        ));
    }

    #[test]
    fn apply_rejects_bad_deltas() {
        let (nl, _die, pl) = base();
        let out_of_range = EcoDelta {
            moved: vec![CellMove {
                cell: 99,
                x: 0.0,
                y: 0.0,
            }],
            ..Default::default()
        };
        assert!(matches!(
            out_of_range.apply(&nl, &pl),
            Err(DeltaError::CellOutOfRange { cell: 99, .. })
        ));
        let bad_geom = EcoDelta {
            resized: vec![CellResize {
                cell: 0,
                width: f64::NAN,
                height: 12.0,
            }],
            ..Default::default()
        };
        assert!(matches!(
            bad_geom.apply(&nl, &pl),
            Err(DeltaError::BadGeometry { context: "resize" })
        ));
    }

    #[test]
    fn delta_request_wire_round_trip_is_exact() {
        let req = DeltaJobRequest {
            id: 31,
            deadline_ms: 500,
            progress_stride: 4,
            kind: JobKind::Global,
            design: "eco-7".into(),
            tenant: "acme".into(),
            config: {
                let mut c = DiffusionConfig::default().with_bin_size(24.0);
                c.solver = SolverKind::Spectral;
                c
            },
            baseline: 0x1234_5678_9abc_def0,
            delta: sample_delta(),
            trace: None,
        };
        let payload = encode_delta_request(&req);
        let back = decode_delta_request(&payload).expect("decodes");
        assert_eq!(back.id, 31);
        assert_eq!(back.deadline_ms, 500);
        assert_eq!(back.progress_stride, 4);
        assert_eq!(back.kind, JobKind::Global);
        assert_eq!(back.design, "eco-7");
        assert_eq!(back.tenant, "acme");
        assert_eq!(back.config.solver, SolverKind::Spectral);
        assert_eq!(back.baseline, req.baseline);
        assert_eq!(back.delta, req.delta);
        // Trailing garbage and truncation are typed errors.
        let mut longer = payload.clone();
        longer.push(0);
        assert!(decode_delta_request(&longer).is_err());
        assert!(decode_delta_request(&payload[..payload.len() - 3]).is_err());
    }

    #[test]
    fn traced_delta_request_is_a_pure_suffix_of_the_legacy_frame() {
        let mut req = DeltaJobRequest {
            id: 31,
            deadline_ms: 500,
            progress_stride: 4,
            kind: JobKind::Global,
            design: "eco-7".into(),
            tenant: "acme".into(),
            config: DiffusionConfig::default().with_bin_size(24.0),
            baseline: 0x1234_5678_9abc_def0,
            delta: sample_delta(),
            trace: None,
        };
        let legacy = encode_delta_request(&req);
        req.trace = Some(dpm_obs::TraceContext {
            trace_id: 0xAAAA,
            span_id: 0xBBBB,
            parent_id: 0,
        });
        let traced = encode_delta_request(&req);
        // Flags byte + 24-byte context, appended after everything a
        // pre-tracing decoder reads.
        assert_eq!(traced.len(), legacy.len() + 1 + 24);
        assert_eq!(&traced[..legacy.len()], &legacy[..]);
        assert_eq!(
            decode_delta_request(&traced).expect("decodes").trace,
            req.trace
        );
        assert_eq!(decode_delta_request(&legacy).expect("decodes").trace, None);

        // Unknown flag bits and truncated contexts are typed errors.
        let flags_off = legacy.len();
        let mut bad = traced.clone();
        bad[flags_off] = 3;
        assert!(matches!(
            decode_delta_request(&bad),
            Err(WireError::Malformed {
                context: "delta.ext.flags",
                ..
            })
        ));
        for cut in flags_off + 1..traced.len() {
            assert!(
                decode_delta_request(&traced[..cut]).is_err(),
                "truncated trace ext decoded at {cut}"
            );
        }
        // The all-zero context is malformed here too.
        let mut bad = traced.clone();
        bad[flags_off + 1..].fill(0);
        assert!(matches!(
            decode_delta_request(&bad),
            Err(WireError::Malformed {
                context: "trace",
                ..
            })
        ));
    }

    #[test]
    fn corrupt_entry_counts_do_not_allocate() {
        let req = DeltaJobRequest {
            id: 1,
            deadline_ms: 0,
            progress_stride: 0,
            kind: JobKind::Local,
            design: String::new(),
            tenant: String::new(),
            config: DiffusionConfig::default(),
            baseline: 0,
            delta: EcoDelta::default(),
            trace: None,
        };
        let payload = encode_delta_request(&req);
        // The resized count is the first u32 after the baseline hash;
        // find it from the end: counts are the last 12 bytes (3 × u32=0).
        let mut p = payload.clone();
        let off = p.len() - 12;
        p[off..off + 4].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            decode_delta_request(&p),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn to_job_request_carries_applied_design() {
        let (nl, die, pl) = base();
        let req = DeltaJobRequest {
            id: 8,
            deadline_ms: 100,
            progress_stride: 0,
            kind: JobKind::Global,
            design: "d".into(),
            tenant: "t".into(),
            config: DiffusionConfig::default().with_bin_size(24.0),
            baseline: 7,
            delta: sample_delta(),
            trace: None,
        };
        let job = req.to_job_request(&nl, &die, &pl).expect("applies");
        assert_eq!(job.id, 8);
        assert_eq!(job.netlist.num_cells(), 4);
        assert_eq!(job.die.outline().urx.to_bits(), die.outline().urx.to_bits());
        assert_eq!(job.placement.get(dpm_netlist::CellId::new(1)).x, 30.0);
    }
}
