//! Smoke tests of the benchmark-suite presets at tiny scale: every ckt
//! and ibm entry must generate, inflate to (near) its paper-mandated
//! target, and legalize with the diffusion legalizer.

use diffuplace::gen::suites::{ckt_suite, ibm_suite};
use diffuplace::gen::{InflationSpec, WorkloadStats};
use diffuplace::legalize::{run_legalizer, DiffusionLegalizer};
use diffuplace::place::check_legality;

#[test]
fn every_ckt_preset_is_reproducible_end_to_end() {
    for entry in ckt_suite(1.0 / 256.0) {
        let (mut bench, achieved) = entry.generate_inflated();
        assert!(
            achieved >= entry.inflation_pct * 0.85,
            "{}: achieved {achieved} vs target {}",
            entry.spec.name,
            entry.inflation_pct
        );
        let before = check_legality(&bench.netlist, &bench.die, &bench.placement, 0);
        assert!(
            !before.is_legal(),
            "{}: inflation created no overlap",
            entry.spec.name
        );
        let outcome = run_legalizer(
            &DiffusionLegalizer::local_default(),
            &bench.netlist,
            &bench.die,
            &mut bench.placement,
        );
        assert!(outcome.is_legal, "{}: {outcome}", entry.spec.name);
    }
}

#[test]
fn every_ibm_preset_matches_table_x_protocol() {
    for entry in ibm_suite(1.0 / 64.0).into_iter().step_by(4) {
        let mut bench = entry.spec.generate();
        bench.inflate(&InflationSpec::random_width(
            0.10,
            1.6,
            entry.spec.seed ^ 0x15bd,
        ));
        let stats = WorkloadStats::measure(&bench);
        // The paper's Table X reports ~5-7% overlap for this protocol;
        // synthetic circuits land in the same band (we accept 2-10%).
        assert!(
            (0.02..0.10).contains(&stats.overlap_fraction),
            "{}: overlap {:.3} outside the Table X band",
            entry.spec.name,
            stats.overlap_fraction
        );
    }
}

#[test]
fn suite_entries_are_deterministic() {
    let a = ckt_suite(1.0 / 256.0)[2].generate_inflated();
    let b = ckt_suite(1.0 / 256.0)[2].generate_inflated();
    assert_eq!(a.0.placement, b.0.placement);
    assert_eq!(a.1, b.1);
}
